//! The gateway-side strategy generator: bridges collector observations into
//! the core generation algorithms of `qce-strategy` (paper Section IV.B:
//! "an execution strategy generator retrieves the QoS of constituent
//! microservices from the collector, and outputs an execution strategy").

use std::sync::Arc;

use parking_lot::Mutex;
use qce_strategy::{
    BackendChoice, BackendSelector, EnvQos, Generated, Generator, PlanCache, PlanCacheConfig,
    PlanCacheStats, PlanSource, Requirements, Strategy, SynthesisReport, UtilityIndex,
};

/// Synthesis-engine knobs threaded from the gateway configuration into the
/// per-slot [`Generator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisSettings {
    /// Exhaustive/approximation switch-over `θ` (Algorithm 2 line 1).
    pub threshold: usize,
    /// Worker threads for the exhaustive search; `0` = one per core.
    pub parallelism: usize,
    /// Branch-and-bound pruning (never changes the chosen strategy).
    pub pruning: bool,
    /// Warm-start each slot's search with the previous slot's winner as
    /// the initial pruning bar (never changes the chosen strategy).
    pub warm_start: bool,
    /// Memoize winning plans in a per-service [`PlanCache`] keyed by the
    /// search inputs, so an unchanged environment skips the search.
    pub plan_cache: bool,
    /// Plan-cache capacity (entries) when `plan_cache` is on.
    pub plan_cache_capacity: usize,
    /// Plan-cache key quantization step for environment QoS attributes;
    /// `0.0` keys on exact bit patterns (cache hits are then guaranteed
    /// bit-identical to a fresh search), positive values trade exactness
    /// for more hits under small drift.
    pub plan_quantize: f64,
    /// Which search backend plans each slot: a fixed backend
    /// (`Exhaustive` / `Greedy` / `Beam(W)`), the paper's threshold rule
    /// (`Threshold`, the default), or a per-service UCB1 bandit over the
    /// backends (`Auto`).
    pub planner: BackendChoice,
    /// Re-plan at a slot boundary only when the collector's QoS table has
    /// drifted outside the active plan's quantization band (measured with
    /// [`env_drift`] at `plan_quantize` granularity); `false` re-plans at
    /// every boundary (the fixed-cadence baseline).
    pub replan_on_drift: bool,
}

impl Default for SynthesisSettings {
    fn default() -> Self {
        SynthesisSettings {
            threshold: qce_strategy::generate::DEFAULT_THRESHOLD,
            parallelism: 0,
            pruning: true,
            warm_start: false,
            plan_cache: false,
            plan_cache_capacity: 64,
            plan_quantize: 0.0,
            planner: BackendChoice::Threshold,
            replan_on_drift: false,
        }
    }
}

/// The fraction of (microservice, attribute) cells whose quantized value
/// differs between two QoS tables — the drift measure behind
/// `replan_on_drift`.
///
/// Quantization matches the plan cache's key derivation: with a positive
/// `quantum`, each attribute maps to `round(value / quantum)`; with
/// `quantum <= 0.0`, to its exact bit pattern. A microservice present in
/// only one table counts as fully drifted (all three attribute cells
/// differ). Returns `0.0` for two empty tables.
#[must_use]
pub fn env_drift(old: &EnvQos, new: &EnvQos, quantum: f64) -> f64 {
    fn cell(value: f64, quantum: f64) -> i64 {
        if quantum > 0.0 {
            #[allow(clippy::cast_possible_truncation)]
            {
                (value / quantum).round() as i64
            }
        } else {
            value.to_bits() as i64
        }
    }
    let mut ids: Vec<qce_strategy::MsId> = old.ids();
    for id in new.ids() {
        if !ids.contains(&id) {
            ids.push(id);
        }
    }
    if ids.is_empty() {
        return 0.0;
    }
    let mut differing = 0usize;
    for &id in &ids {
        match (old.get(id), new.get(id)) {
            (Some(a), Some(b)) => {
                for (x, y) in [
                    (a.cost, b.cost),
                    (a.latency, b.latency),
                    (a.reliability.value(), b.reliability.value()),
                ] {
                    if cell(x, quantum) != cell(y, quantum) {
                        differing += 1;
                    }
                }
            }
            _ => differing += 3,
        }
    }
    #[allow(clippy::cast_precision_loss)]
    {
        differing as f64 / (3 * ids.len()) as f64
    }
}

use crate::collector::Collector;
use crate::device::Provider;
use crate::message::RuntimeError;
use crate::script::ServiceScript;
use crate::telemetry::Telemetry;

/// How the active strategy for a slot was chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyOrigin {
    /// The bootstrap strategy of the first time slot, executed before the
    /// collector has observations: the script's developer default, or the
    /// system default (speculative parallel) if the script names none.
    Default,
    /// Synthesized by the generator from collector data.
    Generated(qce_strategy::Method),
}

impl std::fmt::Display for StrategyOrigin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyOrigin::Default => f.write_str("default"),
            StrategyOrigin::Generated(m) => write!(f, "generated({m})"),
        }
    }
}

/// A strategy chosen for one time slot, with its provenance and estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotPlan {
    /// The strategy to execute this slot.
    pub strategy: Strategy,
    /// How it was chosen.
    pub origin: StrategyOrigin,
    /// The per-microservice QoS table the decision was based on.
    pub assumed_env: EnvQos,
    /// The estimated QoS of the strategy under `assumed_env` (`None` only
    /// if estimation failed, which cannot happen for well-formed plans).
    pub estimated: Option<qce_strategy::Qos>,
    /// The generator's search report (`None` for the default strategy of
    /// slot 0, which is not searched).
    pub report: Option<SynthesisReport>,
    /// How the plan was obtained — cold search, warm-started search, or
    /// plan-cache hit (`None` for the unsearched default strategy).
    pub source: Option<PlanSource>,
}

/// Builds the QoS table the generator should assume for this script: for
/// each microservice, collector observations of its resolved provider when
/// available, the script prior (with the provider's advertised cost)
/// otherwise.
#[must_use]
pub fn assumed_env(
    script: &ServiceScript,
    providers: &[Arc<dyn Provider>],
    collector: &Collector,
) -> EnvQos {
    script
        .microservices
        .iter()
        .zip(providers)
        .map(|(spec, provider)| {
            // Advertised costs are self-reported; validate before
            // substituting so a NaN/∞ registration cannot leak into the
            // estimator or the plan-cache quantizer key.
            let prior = crate::collector::prior_with_advertised_cost(&spec.prior, provider.cost());
            collector.qos_or_prior(provider.id(), &prior)
        })
        .collect()
}

/// Plans the strategy for a time slot.
///
/// Slot 0 executes the default strategy (collecting initial observations);
/// later slots run the paper's Algorithm 2 (exhaustive below the threshold,
/// approximation above it) against the assumed QoS table. When `telemetry`
/// is provided, the generator's search effort (candidates seen/pruned,
/// elapsed time) is accumulated into the service's counters.
///
/// # Errors
///
/// Returns [`RuntimeError::InvalidScript`] for an unparsable default
/// strategy or penalty, or [`RuntimeError::Generation`] if generation
/// fails.
pub fn plan_slot(
    script: &ServiceScript,
    providers: &[Arc<dyn Provider>],
    collector: &Collector,
    slot: u64,
    settings: &SynthesisSettings,
    telemetry: Option<&Telemetry>,
) -> Result<SlotPlan, RuntimeError> {
    Planner::new(script, settings)?.plan_slot(script, providers, collector, slot, telemetry)
}

/// A persistent per-service planner: one [`Generator`] (and, when enabled,
/// one [`PlanCache`]) that lives across slot boundaries, so warm-start
/// incumbents and cached plans survive from one re-plan to the next.
///
/// The free-standing [`plan_slot`] builds a throwaway `Planner` per call
/// and therefore never benefits from either optimization; the gateway
/// keeps one `Planner` per service instead.
#[derive(Debug)]
pub struct Planner {
    generator: Generator,
    cache: Option<Arc<PlanCache>>,
    choice: BackendChoice,
    /// UCB1 selector over search backends, present only for
    /// [`BackendChoice::Auto`]: one per service, so arm statistics track
    /// that service's environment.
    selector: Option<Mutex<BackendSelector>>,
}

impl Planner {
    /// Builds the planner for `script` under `settings`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidScript`] if the script's utility
    /// penalty is invalid.
    pub fn new(script: &ServiceScript, settings: &SynthesisSettings) -> Result<Self, RuntimeError> {
        let cache = settings.plan_cache.then(|| {
            Arc::new(PlanCache::new(PlanCacheConfig {
                capacity: settings.plan_cache_capacity,
                quantum: settings.plan_quantize,
            }))
        });
        Planner::build(script, settings, cache)
    }

    /// Builds the planner for `script` under `settings`, memoizing plans in
    /// the provided (possibly [shared](PlanCache::share)) cache instead of
    /// a private one. This is how a gateway fleet lets a plan synthesized
    /// on one shard be served warm on another: every shard's planner holds
    /// a view of the same store, and `settings.plan_cache`,
    /// `plan_cache_capacity`, and `plan_quantize` are ignored in favor of
    /// the cache's own configuration.
    ///
    /// # Errors
    ///
    /// As [`Planner::new`].
    pub fn with_cache(
        script: &ServiceScript,
        settings: &SynthesisSettings,
        cache: Arc<PlanCache>,
    ) -> Result<Self, RuntimeError> {
        Planner::build(script, settings, Some(cache))
    }

    fn build(
        script: &ServiceScript,
        settings: &SynthesisSettings,
        cache: Option<Arc<PlanCache>>,
    ) -> Result<Self, RuntimeError> {
        let utility =
            UtilityIndex::new(script.penalty_k).map_err(|e| RuntimeError::InvalidScript {
                reason: e.to_string(),
            })?;
        let mut builder = Generator::builder()
            .utility(utility)
            .threshold(settings.threshold)
            .parallelism(settings.parallelism)
            .pruning(settings.pruning)
            .warm_start(settings.warm_start);
        if let Some(cache) = &cache {
            builder = builder.plan_cache(Arc::clone(cache));
        }
        let choice = settings.planner;
        let selector =
            (choice == BackendChoice::Auto).then(|| Mutex::new(BackendSelector::default()));
        Ok(Planner {
            generator: builder.build(),
            cache,
            choice,
            selector,
        })
    }

    /// Counter snapshot of the plan cache, if one is enabled.
    #[must_use]
    pub fn cache_stats(&self) -> Option<PlanCacheStats> {
        self.cache.as_ref().map(|cache| cache.stats())
    }

    /// Drops every cached plan (call when the service script is evicted or
    /// replaced — the cached winners were computed for the old script).
    /// Returns how many entries were dropped; `0` with no cache.
    ///
    /// Warm-start incumbents survive: the next search still prunes from
    /// the remembered winner's bar. Use [`Planner::invalidate_plans`] when
    /// even that seed must go.
    pub fn invalidate(&self) -> usize {
        self.cache.as_ref().map_or(0, |cache| cache.invalidate())
    }

    /// Drops every cached plan **and** every warm-start incumbent, so the
    /// next re-plan runs truly cold ([`PlanSource::Cold`]). The runtime
    /// calls this when a live override changes the effective planning
    /// requirement mid-slot: both the cached winners and the incumbent
    /// pruning bars were won under the old requirement, and neither may
    /// shape the first plan for the new one. Returns how many cache
    /// entries were dropped; `0` with no cache.
    pub fn invalidate_plans(&self) -> usize {
        let dropped = self.invalidate();
        self.generator.clear_incumbents();
        dropped
    }

    /// Plans the strategy for a time slot (see [`plan_slot`]).
    ///
    /// # Errors
    ///
    /// As [`plan_slot`].
    pub fn plan_slot(
        &self,
        script: &ServiceScript,
        providers: &[Arc<dyn Provider>],
        collector: &Collector,
        slot: u64,
        telemetry: Option<&Telemetry>,
    ) -> Result<SlotPlan, RuntimeError> {
        self.plan_slot_for(
            script,
            &script.requirements,
            providers,
            collector,
            slot,
            telemetry,
        )
    }

    /// Plans the strategy for a time slot against an explicit *effective*
    /// requirement instead of the script's own. The gateway resolves live
    /// per-service overrides (`qce ctl set-requirement` / `set-class`) into
    /// this value, so the synthesized plan — and the plan-cache key — track
    /// what the operator currently demands, not what the script was
    /// deployed with.
    ///
    /// # Errors
    ///
    /// As [`plan_slot`].
    pub fn plan_slot_for(
        &self,
        script: &ServiceScript,
        requirements: &Requirements,
        providers: &[Arc<dyn Provider>],
        collector: &Collector,
        slot: u64,
        telemetry: Option<&Telemetry>,
    ) -> Result<SlotPlan, RuntimeError> {
        let env = assumed_env(script, providers, collector);
        let ids = env.ids();
        let requirements: Requirements = *requirements;

        if slot == 0 {
            let strategy = match script.parsed_default_strategy()? {
                Some(s) => s,
                None => qce_strategy::enumerate::speculative_parallel(&ids).map_err(|e| {
                    RuntimeError::Generation {
                        reason: e.to_string(),
                    }
                })?,
            };
            let estimated = qce_strategy::estimate::estimate(&strategy, &env).ok();
            return Ok(SlotPlan {
                strategy,
                origin: StrategyOrigin::Default,
                assumed_env: env,
                estimated,
                report: None,
                source: None,
            });
        }

        let generated: Generated = if let Some(selector) = &self.selector {
            // `auto`: a deterministic UCB1 bandit picks the backend; the
            // realized utility-per-search-cost of each fresh plan feeds
            // the arm's statistics (cache hits cost nothing to produce
            // and would inflate every arm equally, so they don't count).
            let mut sel = selector.lock();
            let eligible = sel.eligibility(ids.len(), self.generator.threshold());
            let picked = sel.choose(&eligible);
            let choice = picked.map_or(BackendChoice::Threshold, |arm| sel.arms()[arm]);
            let generated = self
                .generator
                .generate_with(choice, &env, &ids, &requirements)
                .map_err(|e| RuntimeError::Generation {
                    reason: e.to_string(),
                })?;
            if let Some(arm) = picked {
                if generated.source != PlanSource::Cached {
                    sel.record(arm, generated.utility, generated.evaluated as u64);
                }
                if let Some(telemetry) = telemetry {
                    telemetry.record_backend_choice(
                        &script.service_id,
                        slot,
                        &choice.to_string(),
                        sel.pulls(arm),
                        sel.mean(arm),
                    );
                }
            }
            generated
        } else {
            self.generator
                .generate_with(self.choice, &env, &ids, &requirements)
                .map_err(|e| RuntimeError::Generation {
                    reason: e.to_string(),
                })?
        };
        if let Some(telemetry) = telemetry {
            telemetry.record_synthesis(&script.service_id, &generated.report);
            if let Some(stats) = self.cache_stats() {
                telemetry.record_plan_cache(&script.service_id, &stats);
            }
        }
        Ok(SlotPlan {
            strategy: generated.strategy,
            origin: StrategyOrigin::Generated(generated.method),
            assumed_env: env,
            estimated: Some(generated.qos),
            report: Some(generated.report),
            source: Some(generated.source),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::ExecutionRecord;
    use crate::device::SimulatedProvider;
    use crate::script::MsSpec;
    use qce_strategy::Qos;
    use std::time::Duration;

    fn script() -> ServiceScript {
        ServiceScript::new(
            "svc",
            vec![
                MsSpec {
                    name: "m0".into(),
                    capability: "c0".into(),
                    prior: Qos::new(50.0, 30.0, 0.7).unwrap(),
                },
                MsSpec {
                    name: "m1".into(),
                    capability: "c1".into(),
                    prior: Qos::new(50.0, 60.0, 0.7).unwrap(),
                },
                MsSpec {
                    name: "m2".into(),
                    capability: "c2".into(),
                    prior: Qos::new(50.0, 80.0, 0.7).unwrap(),
                },
            ],
            qce_strategy::Requirements::new(100.0, 100.0, 0.97).unwrap(),
        )
    }

    fn providers() -> Vec<Arc<dyn Provider>> {
        (0..3)
            .map(|i| {
                SimulatedProvider::builder(format!("d{i}/c{i}"), format!("c{i}"))
                    .cost(50.0)
                    .latency(Duration::from_millis(1))
                    .build() as Arc<dyn Provider>
            })
            .collect()
    }

    #[test]
    fn assumed_env_uses_priors_without_history() {
        let collector = Collector::new(10);
        let env = assumed_env(&script(), &providers(), &collector);
        assert_eq!(env.len(), 3);
        // Prior latency/reliability, provider-advertised cost.
        let q = env.get(qce_strategy::MsId(1)).unwrap();
        assert_eq!(q.latency, 60.0);
        assert_eq!(q.cost, 50.0);
        assert_eq!(q.reliability.value(), 0.7);
    }

    #[test]
    fn assumed_env_prefers_observations() {
        let collector = Collector::new(10);
        collector.record(
            "d0/c0",
            ExecutionRecord {
                success: true,
                latency: Duration::from_millis(123),
                cost: 9.0,
            },
        );
        let env = assumed_env(&script(), &providers(), &collector);
        let q = env.get(qce_strategy::MsId(0)).unwrap();
        assert!((q.latency - 123.0).abs() < 1.0);
        assert_eq!(q.cost, 9.0);
        assert_eq!(q.reliability.value(), 1.0);
    }

    #[test]
    fn assumed_env_rejects_non_finite_advertised_cost() {
        // Regression (scenario suite): the struct-update substitution
        // `Qos { cost: provider.cost(), .. }` bypassed validation, so a
        // provider registering a NaN cost put NaN into the assumed QoS
        // table — from there it reached `plan_slot` and, with quantization
        // enabled, collapsed onto quantized bucket 0 in the `PlanCache`
        // key (silent cache collisions). The prior's cost must win.
        let collector = Collector::new(10);
        let providers: Vec<Arc<dyn Provider>> = [f64::NAN, f64::INFINITY, -3.0]
            .iter()
            .enumerate()
            .map(|(i, &cost)| {
                SimulatedProvider::builder(format!("d{i}/c{i}"), format!("c{i}"))
                    .cost(cost)
                    .latency(Duration::from_millis(1))
                    .build() as Arc<dyn Provider>
            })
            .collect();
        let env = assumed_env(&script(), &providers, &collector);
        for id in 0..3 {
            let q = env.get(qce_strategy::MsId(id)).unwrap();
            assert_eq!(q.cost, 50.0, "prior cost substitutes for bad ms{id}");
        }
        // And planning over that table stays well-defined.
        let plan = plan_slot(
            &script(),
            &providers,
            &collector,
            1,
            &SynthesisSettings::default(),
            None,
        )
        .unwrap();
        let estimated = plan.estimated.expect("generated slots carry estimates");
        assert!(estimated.cost.is_finite());
        assert!(estimated.latency.is_finite());
    }

    #[test]
    fn slot_zero_runs_system_default_parallel() {
        let collector = Collector::new(10);
        let plan = plan_slot(
            &script(),
            &providers(),
            &collector,
            0,
            &SynthesisSettings::default(),
            None,
        )
        .unwrap();
        assert_eq!(plan.origin, StrategyOrigin::Default);
        assert!(plan.strategy.is_parallel());
        assert_eq!(plan.strategy.len(), 3);
        assert!(plan.estimated.is_some());
    }

    #[test]
    fn slot_zero_respects_script_default() {
        let mut s = script();
        s.default_strategy = Some("m0-m1-m2".to_string());
        let collector = Collector::new(10);
        let plan = plan_slot(
            &s,
            &providers(),
            &collector,
            0,
            &SynthesisSettings::default(),
            None,
        )
        .unwrap();
        assert!(plan.strategy.is_failover());
    }

    #[test]
    fn later_slots_generate() {
        let collector = Collector::new(10);
        let plan = plan_slot(
            &script(),
            &providers(),
            &collector,
            1,
            &SynthesisSettings::default(),
            None,
        )
        .unwrap();
        match plan.origin {
            StrategyOrigin::Generated(m) => {
                assert_eq!(m, qce_strategy::Method::Exhaustive, "3 ≤ θ = 6");
            }
            StrategyOrigin::Default => panic!("slot 1 must generate"),
        }
        assert_eq!(plan.strategy.len(), 3);
    }

    #[test]
    fn threshold_switches_to_approximation() {
        let collector = Collector::new(10);
        let settings = SynthesisSettings {
            threshold: 2,
            ..SynthesisSettings::default()
        };
        let plan = plan_slot(&script(), &providers(), &collector, 1, &settings, None).unwrap();
        assert_eq!(
            plan.origin,
            StrategyOrigin::Generated(qce_strategy::Method::Approximation)
        );
    }

    #[test]
    fn origin_display() {
        assert_eq!(StrategyOrigin::Default.to_string(), "default");
        assert_eq!(
            StrategyOrigin::Generated(qce_strategy::Method::Exhaustive).to_string(),
            "generated(exhaustive)"
        );
    }

    #[test]
    fn all_failure_window_flows_through_planning() {
        // A provider whose entire observation window failed has
        // success_rate (and so assumed reliability) exactly 0.0; that must
        // flow through ProviderStats::as_qos → plan_slot without panicking.
        let collector = Collector::new(10);
        for _ in 0..5 {
            collector.record(
                "d0/c0",
                ExecutionRecord {
                    success: false,
                    latency: Duration::from_millis(4),
                    cost: 50.0,
                },
            );
        }
        let stats = collector.stats("d0/c0").unwrap();
        assert_eq!(stats.success_rate, 0.0);
        assert_eq!(stats.as_qos().reliability.value(), 0.0);
        let plan = plan_slot(
            &script(),
            &providers(),
            &collector,
            1,
            &SynthesisSettings::default(),
            None,
        )
        .unwrap();
        assert!(matches!(plan.origin, StrategyOrigin::Generated(_)));
        assert_eq!(
            plan.assumed_env
                .get(qce_strategy::MsId(0))
                .unwrap()
                .reliability
                .value(),
            0.0
        );
    }

    #[test]
    fn zero_latency_window_flows_through_planning() {
        // On a virtual clock an invocation can complete in exactly zero
        // time. The resulting latency-0 QoS must not panic in as_qos and
        // must not trip the synth engine's non-positive-latency pruning
        // guard: pruned and unpruned searches still agree.
        let collector = Collector::new(10);
        for _ in 0..5 {
            collector.record(
                "d0/c0",
                ExecutionRecord {
                    success: true,
                    latency: Duration::ZERO,
                    cost: 50.0,
                },
            );
        }
        assert_eq!(collector.stats("d0/c0").unwrap().as_qos().latency, 0.0);
        let pruned = plan_slot(
            &script(),
            &providers(),
            &collector,
            1,
            &SynthesisSettings::default(),
            None,
        )
        .unwrap();
        assert!(pruned.estimated.is_some());
        let unpruned = plan_slot(
            &script(),
            &providers(),
            &collector,
            1,
            &SynthesisSettings {
                pruning: false,
                ..SynthesisSettings::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(
            pruned.strategy, unpruned.strategy,
            "pruning never changes the winner"
        );
    }

    #[test]
    fn all_failure_and_zero_latency_combined() {
        // The harshest corner: a window that is all failures *and* all
        // zero-latency (crash-style instant failures on a virtual clock).
        let collector = Collector::new(10);
        for _ in 0..3 {
            collector.record(
                "d0/c0",
                ExecutionRecord {
                    success: false,
                    latency: Duration::ZERO,
                    cost: 50.0,
                },
            );
        }
        let plan = plan_slot(
            &script(),
            &providers(),
            &collector,
            1,
            &SynthesisSettings::default(),
            None,
        )
        .unwrap();
        assert_eq!(plan.strategy.len(), 3);
    }

    #[test]
    fn plan_slot_records_synthesis_effort() {
        use crate::clock::VirtualClock;
        let telemetry = Telemetry::new(
            Arc::new(VirtualClock::new()) as Arc<dyn crate::clock::Clock>,
            8,
        );
        let collector = Collector::new(10);
        let plan = plan_slot(
            &script(),
            &providers(),
            &collector,
            1,
            &SynthesisSettings::default(),
            Some(&telemetry),
        )
        .unwrap();
        let report = plan.report.expect("generated slots carry a report");
        assert!(report.candidates_seen > 0);
        let snap = telemetry.snapshot();
        let svc = snap.service("svc").unwrap();
        assert_eq!(svc.candidates_seen, report.candidates_seen);
        assert_eq!(svc.candidates_pruned, report.candidates_pruned);
    }

    #[test]
    fn persistent_planner_caches_and_warm_starts() {
        use qce_strategy::PlanSource;
        let collector = Collector::new(10);
        let settings = SynthesisSettings {
            plan_cache: true,
            warm_start: true,
            ..SynthesisSettings::default()
        };
        let planner = Planner::new(&script(), &settings).unwrap();
        // No collector data: the assumed env is the (constant) priors, so
        // consecutive slots present identical search inputs.
        let first = planner
            .plan_slot(&script(), &providers(), &collector, 1, None)
            .unwrap();
        assert_eq!(first.source, Some(PlanSource::Cold));
        let second = planner
            .plan_slot(&script(), &providers(), &collector, 2, None)
            .unwrap();
        assert_eq!(second.source, Some(PlanSource::Cached));
        assert_eq!(second.strategy, first.strategy);
        let stats = planner.cache_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        // Invalidation (script eviction) drops the entries; the next plan
        // re-searches, warm-started by the remembered incumbent.
        assert_eq!(planner.invalidate(), stats.entries);
        let third = planner
            .plan_slot(&script(), &providers(), &collector, 3, None)
            .unwrap();
        assert_eq!(third.source, Some(PlanSource::WarmStart));
        assert_eq!(third.strategy, first.strategy);
    }

    #[test]
    fn invalidate_plans_forces_a_truly_cold_replan() {
        use qce_strategy::PlanSource;
        let collector = Collector::new(10);
        let settings = SynthesisSettings {
            plan_cache: true,
            warm_start: true,
            ..SynthesisSettings::default()
        };
        let planner = Planner::new(&script(), &settings).unwrap();
        let first = planner
            .plan_slot(&script(), &providers(), &collector, 1, None)
            .unwrap();
        assert_eq!(first.source, Some(PlanSource::Cold));
        // Unlike plain `invalidate` (which leaves the warm-start incumbent
        // seeded — see `persistent_planner_caches_and_warm_starts`),
        // `invalidate_plans` drops the incumbents too.
        assert_eq!(planner.invalidate_plans(), 1);
        let second = planner
            .plan_slot(&script(), &providers(), &collector, 2, None)
            .unwrap();
        assert_eq!(second.source, Some(PlanSource::Cold));
    }

    #[test]
    fn plan_slot_for_keys_the_cache_by_effective_requirement() {
        use qce_strategy::PlanSource;
        let collector = Collector::new(10);
        let settings = SynthesisSettings {
            plan_cache: true,
            ..SynthesisSettings::default()
        };
        let planner = Planner::new(&script(), &settings).unwrap();
        let base = planner
            .plan_slot(&script(), &providers(), &collector, 1, None)
            .unwrap();
        assert_eq!(base.source, Some(PlanSource::Cold));
        // A different effective requirement is a different search identity:
        // it must not be served the script-requirement plan.
        let strict = qce_strategy::Requirements::new(1000.0, 1000.0, 0.999).unwrap();
        let overridden = planner
            .plan_slot_for(&script(), &strict, &providers(), &collector, 2, None)
            .unwrap();
        assert_eq!(overridden.source, Some(PlanSource::Cold));
        // Re-planning under the same effective requirement hits.
        let again = planner
            .plan_slot_for(&script(), &strict, &providers(), &collector, 3, None)
            .unwrap();
        assert_eq!(again.source, Some(PlanSource::Cached));
        assert_eq!(again.strategy, overridden.strategy);
    }

    #[test]
    fn throwaway_plan_slot_never_caches() {
        let collector = Collector::new(10);
        let settings = SynthesisSettings {
            plan_cache: true,
            warm_start: true,
            ..SynthesisSettings::default()
        };
        for slot in [1, 2] {
            let plan =
                plan_slot(&script(), &providers(), &collector, slot, &settings, None).unwrap();
            assert_eq!(
                plan.source,
                Some(qce_strategy::PlanSource::Cold),
                "a fresh Planner per call has nothing to reuse"
            );
        }
    }

    #[test]
    fn env_drift_measures_quantized_cell_changes() {
        let old = EnvQos::from_triples(&[(50.0, 30.0, 0.7), (60.0, 40.0, 0.8)]).unwrap();
        // Identical tables never drift, at any quantum.
        assert_eq!(env_drift(&old, &old, 0.0), 0.0);
        assert_eq!(env_drift(&old, &old, 5.0), 0.0);
        // One of six cells changed: exact keying sees it…
        let new = EnvQos::from_triples(&[(50.0, 30.0, 0.7), (60.0, 41.0, 0.8)]).unwrap();
        assert!((env_drift(&old, &new, 0.0) - 1.0 / 6.0).abs() < 1e-12);
        // …while a coarse quantum absorbs it (40 and 41 round to the same
        // cell at quantum 5), matching the plan cache's hit behavior.
        assert_eq!(env_drift(&old, &new, 5.0), 0.0);
        // A microservice present in only one table is fully drifted.
        let shrunk = EnvQos::from_triples(&[(50.0, 30.0, 0.7)]).unwrap();
        assert_eq!(env_drift(&old, &shrunk, 0.0), 0.5);
        // Empty tables are trivially identical.
        let empty = EnvQos::from_triples(&[]).unwrap();
        assert_eq!(env_drift(&empty, &empty, 0.0), 0.0);
    }

    #[test]
    fn fixed_backend_settings_route_the_search() {
        let collector = Collector::new(10);
        for (choice, method) in [
            (BackendChoice::Greedy, qce_strategy::Method::Approximation),
            (BackendChoice::Beam(2), qce_strategy::Method::Beam),
            (BackendChoice::Exhaustive, qce_strategy::Method::Exhaustive),
        ] {
            let settings = SynthesisSettings {
                planner: choice,
                ..SynthesisSettings::default()
            };
            let planner = Planner::new(&script(), &settings).unwrap();
            let plan = planner
                .plan_slot(&script(), &providers(), &collector, 1, None)
                .unwrap();
            assert_eq!(
                plan.origin,
                StrategyOrigin::Generated(method),
                "planner={choice}"
            );
        }
    }

    #[test]
    fn auto_planner_pulls_every_arm_then_exploits() {
        use crate::clock::VirtualClock;
        let telemetry = Telemetry::new(
            Arc::new(VirtualClock::new()) as Arc<dyn crate::clock::Clock>,
            64,
        );
        let collector = Collector::new(10);
        let settings = SynthesisSettings {
            planner: BackendChoice::Auto,
            ..SynthesisSettings::default()
        };
        let planner = Planner::new(&script(), &settings).unwrap();
        for slot in 1..=5 {
            planner
                .plan_slot(&script(), &providers(), &collector, slot, Some(&telemetry))
                .unwrap();
        }
        let chosen: Vec<String> = telemetry
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                crate::telemetry::EventKind::BackendChosen { arm, .. } => Some(arm.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(chosen.len(), 5, "one choice event per generated slot");
        // UCB1 pulls each untried arm once, in arm order, before
        // exploiting the best mean.
        assert_eq!(&chosen[..3], &["exhaustive", "greedy", "beam:4"]);
        // Deterministic: a fresh planner replays the same choices.
        let replay = Planner::new(&script(), &settings).unwrap();
        let telemetry2 = Telemetry::new(
            Arc::new(VirtualClock::new()) as Arc<dyn crate::clock::Clock>,
            64,
        );
        for slot in 1..=5 {
            replay
                .plan_slot(&script(), &providers(), &collector, slot, Some(&telemetry2))
                .unwrap();
        }
        let chosen2: Vec<String> = telemetry2
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                crate::telemetry::EventKind::BackendChosen { arm, .. } => Some(arm.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(chosen, chosen2);
    }

    #[test]
    fn auto_planner_masks_exhaustive_beyond_threshold() {
        let collector = Collector::new(10);
        let settings = SynthesisSettings {
            planner: BackendChoice::Auto,
            threshold: 2,
            ..SynthesisSettings::default()
        };
        let planner = Planner::new(&script(), &settings).unwrap();
        for slot in 1..=6 {
            let plan = planner
                .plan_slot(&script(), &providers(), &collector, slot, None)
                .unwrap();
            assert_ne!(
                plan.origin,
                StrategyOrigin::Generated(qce_strategy::Method::Exhaustive),
                "m=3 > θ=2: the exhaustive arm is never eligible"
            );
        }
    }

    #[test]
    fn slot_zero_carries_no_report() {
        let collector = Collector::new(10);
        let plan = plan_slot(
            &script(),
            &providers(),
            &collector,
            0,
            &SynthesisSettings::default(),
            None,
        )
        .unwrap();
        assert!(plan.report.is_none());
    }
}

//! The gateway's microservice registry.
//!
//! Edge devices register the microservices they host (paper Section V.B:
//! "each edge device registers its available microservices and their usage
//! costs with the gateway"). When a service script is provisioned, the
//! registry resolves each required *capability* to the provider with the
//! best current QoS — the paper's Assumption 1: "although multiple devices
//! can provide a microservice in an edge environment, our system only
//! selects the one with the best QoS".

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use qce_strategy::{Qos, Requirements, UtilityIndex};

use crate::collector::Collector;
use crate::device::Provider;
use crate::message::RuntimeError;

/// Thread-safe capability → providers index.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use qce_runtime::{Registry, SimulatedProvider};
///
/// let registry = Registry::new();
/// registry.register(
///     SimulatedProvider::builder("pi/read-temp", "read-temp")
///         .latency(Duration::from_millis(1))
///         .build(),
/// );
/// assert_eq!(registry.providers_for("read-temp").len(), 1);
/// assert!(registry.providers_for("unknown").is_empty());
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    by_capability: RwLock<HashMap<String, Vec<Arc<dyn Provider>>>>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a provider under its capability. Re-registering the same
    /// provider id replaces the previous entry.
    pub fn register(&self, provider: Arc<dyn Provider>) {
        let mut map = self.by_capability.write();
        let entry = map.entry(provider.capability().to_string()).or_default();
        entry.retain(|p| p.id() != provider.id());
        entry.push(provider);
    }

    /// Removes a provider by id (e.g. the device left the environment).
    /// Returns `true` if something was removed.
    pub fn deregister(&self, provider_id: &str) -> bool {
        let mut map = self.by_capability.write();
        let mut removed = false;
        for entry in map.values_mut() {
            let before = entry.len();
            entry.retain(|p| p.id() != provider_id);
            removed |= entry.len() != before;
        }
        map.retain(|_, v| !v.is_empty());
        removed
    }

    /// All providers for `capability` (registration order).
    #[must_use]
    pub fn providers_for(&self, capability: &str) -> Vec<Arc<dyn Provider>> {
        self.by_capability
            .read()
            .get(capability)
            .cloned()
            .unwrap_or_default()
    }

    /// All registered capabilities, sorted.
    #[must_use]
    pub fn capabilities(&self) -> Vec<String> {
        let mut caps: Vec<String> = self.by_capability.read().keys().cloned().collect();
        caps.sort();
        caps
    }

    /// Selects the provider of `capability` with the best current QoS
    /// (Assumption 1), judged by the utility index against `requirements`
    /// using collector observations (falling back to `prior` for providers
    /// without history, with the provider's advertised cost substituted).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoProvider`] when no provider is registered
    /// for the capability.
    pub fn best_provider(
        &self,
        capability: &str,
        prior: &Qos,
        collector: &Collector,
        utility: UtilityIndex,
        requirements: &Requirements,
    ) -> Result<Arc<dyn Provider>, RuntimeError> {
        let candidates = self.providers_for(capability);
        candidates
            .into_iter()
            .map(|p| {
                // No (usable) history: use the script prior but the
                // provider's advertised cost (devices register their
                // costs). Both the advertised cost and the windowed
                // aggregates are validated before use — a provider
                // registering a NaN cost must not produce a NaN utility
                // and abort selection below.
                let assumed = collector
                    .stats(p.id())
                    .and_then(|s| s.checked_qos())
                    .unwrap_or_else(|| {
                        crate::collector::prior_with_advertised_cost(prior, p.cost())
                    });
                let score = utility.utility(&assumed, requirements);
                (p, score)
            })
            .max_by(|(pa, ua), (pb, ub)| {
                ua.partial_cmp(ub)
                    .expect("utilities are finite")
                    // Deterministic tie-break on id so selection is stable.
                    .then_with(|| pb.id().cmp(pa.id()))
            })
            .map(|(p, _)| p)
            .ok_or_else(|| RuntimeError::NoProvider {
                capability: capability.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::ExecutionRecord;
    use crate::device::SimulatedProvider;
    use std::time::Duration;

    fn provider(id: &str, capability: &str, cost: f64) -> Arc<SimulatedProvider> {
        SimulatedProvider::builder(id, capability)
            .cost(cost)
            .latency(Duration::from_millis(1))
            .build()
    }

    fn requirements() -> Requirements {
        Requirements::new(100.0, 100.0, 0.9).unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let registry = Registry::new();
        registry.register(provider("d1/x", "x", 1.0));
        registry.register(provider("d2/x", "x", 2.0));
        registry.register(provider("d1/y", "y", 1.0));
        assert_eq!(registry.providers_for("x").len(), 2);
        assert_eq!(registry.providers_for("y").len(), 1);
        assert_eq!(
            registry.capabilities(),
            vec!["x".to_string(), "y".to_string()]
        );
    }

    #[test]
    fn reregistration_replaces() {
        let registry = Registry::new();
        registry.register(provider("d1/x", "x", 1.0));
        registry.register(provider("d1/x", "x", 5.0));
        let providers = registry.providers_for("x");
        assert_eq!(providers.len(), 1);
        assert_eq!(providers[0].cost(), 5.0);
    }

    #[test]
    fn deregister_removes() {
        let registry = Registry::new();
        registry.register(provider("d1/x", "x", 1.0));
        assert!(registry.deregister("d1/x"));
        assert!(!registry.deregister("d1/x"));
        assert!(registry.providers_for("x").is_empty());
        assert!(registry.capabilities().is_empty());
    }

    #[test]
    fn best_provider_errors_when_none() {
        let registry = Registry::new();
        let collector = Collector::new(10);
        let prior = Qos::new(50.0, 50.0, 0.7).unwrap();
        assert!(matches!(
            registry.best_provider(
                "x",
                &prior,
                &collector,
                UtilityIndex::default(),
                &requirements()
            ),
            Err(RuntimeError::NoProvider { .. })
        ));
    }

    #[test]
    fn best_provider_prefers_cheaper_without_history() {
        let registry = Registry::new();
        registry.register(provider("d1/x", "x", 80.0));
        registry.register(provider("d2/x", "x", 20.0));
        let collector = Collector::new(10);
        let prior = Qos::new(50.0, 50.0, 0.7).unwrap();
        let best = registry
            .best_provider(
                "x",
                &prior,
                &collector,
                UtilityIndex::default(),
                &requirements(),
            )
            .unwrap();
        assert_eq!(best.id(), "d2/x", "lower advertised cost wins");
    }

    #[test]
    fn best_provider_uses_collector_history() {
        let registry = Registry::new();
        registry.register(provider("slow/x", "x", 10.0));
        registry.register(provider("fast/x", "x", 10.0));
        let collector = Collector::new(10);
        // History says "slow/x" is terrible and "fast/x" is great.
        for _ in 0..5 {
            collector.record(
                "slow/x",
                ExecutionRecord {
                    success: false,
                    latency: Duration::from_millis(900),
                    cost: 10.0,
                },
            );
            collector.record(
                "fast/x",
                ExecutionRecord {
                    success: true,
                    latency: Duration::from_millis(5),
                    cost: 10.0,
                },
            );
        }
        let prior = Qos::new(50.0, 50.0, 0.7).unwrap();
        let best = registry
            .best_provider(
                "x",
                &prior,
                &collector,
                UtilityIndex::default(),
                &requirements(),
            )
            .unwrap();
        assert_eq!(best.id(), "fast/x");
    }

    #[test]
    fn nan_advertised_cost_does_not_poison_selection() {
        // Regression (scenario suite): without history the prior
        // substitution used struct-update (`Qos { cost: p.cost(), .. }`),
        // bypassing `Qos::new` validation. A provider registering a NaN
        // cost then produced a NaN utility and `best_provider` panicked on
        // `partial_cmp().expect("utilities are finite")` — exactly when a
        // blackout storm had emptied the collector window.
        let registry = Registry::new();
        registry.register(provider("evil/x", "x", f64::NAN));
        registry.register(provider("good/x", "x", 10.0));
        let collector = Collector::new(10);
        let prior = Qos::new(50.0, 50.0, 0.7).unwrap();
        let best = registry
            .best_provider(
                "x",
                &prior,
                &collector,
                UtilityIndex::default(),
                &requirements(),
            )
            .unwrap();
        assert_eq!(best.id(), "good/x", "finite advertised cost wins");
    }

    #[test]
    fn poisoned_window_falls_back_to_prior_in_selection() {
        // A NaN cost that made it into the window (recorded from a
        // poisoned invocation) must be treated as "no history", not crash
        // the gateway's planning path.
        let registry = Registry::new();
        registry.register(provider("p1/x", "x", 10.0));
        let collector = Collector::new(10);
        collector.record(
            "p1/x",
            ExecutionRecord {
                success: true,
                latency: Duration::from_millis(5),
                cost: f64::NAN,
            },
        );
        let prior = Qos::new(50.0, 50.0, 0.7).unwrap();
        let best = registry
            .best_provider(
                "x",
                &prior,
                &collector,
                UtilityIndex::default(),
                &requirements(),
            )
            .unwrap();
        assert_eq!(best.id(), "p1/x");
    }

    #[test]
    fn tie_break_is_deterministic() {
        let registry = Registry::new();
        registry.register(provider("b/x", "x", 10.0));
        registry.register(provider("a/x", "x", 10.0));
        let collector = Collector::new(10);
        let prior = Qos::new(50.0, 50.0, 0.7).unwrap();
        let best = registry
            .best_provider(
                "x",
                &prior,
                &collector,
                UtilityIndex::default(),
                &requirements(),
            )
            .unwrap();
        assert_eq!(best.id(), "a/x", "lexicographically smaller id wins ties");
    }
}

//! Seeded fault injection for simulated devices.
//!
//! The paper's premise is that edge resources are *unreliable and
//! dynamic*: devices crash and recover, network paths degrade, and
//! (Section VII) compromised devices may return fabricated results. A
//! [`FaultPlan`] captures one concrete misfortune schedule — a list of
//! [`FaultEvent`]s keyed on clock time — and a [`FaultyProvider`] applies
//! it on top of any [`SimulatedProvider`]. Plans are either hand-written
//! (`FaultPlan::new`) or drawn reproducibly from a seed
//! (`FaultPlan::seeded`): the same seed always produces the same schedule,
//! so a failing test names its misfortune exactly.
//!
//! On a shared [`VirtualClock`](crate::VirtualClock), fault windows are hit
//! deterministically: clock time only moves when the simulation moves it.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::clock::Clock;
use crate::device::{Provider, SimulatedProvider};
use crate::message::{Invocation, InvokeError};
use crate::telemetry::Telemetry;

/// What goes wrong (or right again) at a scheduled instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The device crashes: invocations fail instantly with
    /// [`InvokeError::DeviceUnavailable`].
    Crash,
    /// The device recovers from a crash.
    Recover,
    /// Every invocation pays this much extra latency (a degraded link).
    AddLatency(Duration),
    /// The link heals: added latency is cleared.
    ClearLatency,
    /// The device turns byzantine: successful invocations return this
    /// payload instead of the true result.
    Byzantine(Vec<u8>),
    /// The device stops lying.
    Honest,
}

/// One scheduled fault transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Clock time at which the transition takes effect.
    pub at: Duration,
    /// The transition.
    pub kind: FaultKind,
}

/// Tunables for [`FaultPlan::seeded`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultProfile {
    /// Mean healthy time between fault onsets.
    pub mean_time_between_faults: Duration,
    /// Mean duration of one fault window.
    pub mean_fault_duration: Duration,
    /// Relative weight of crash faults.
    pub crash_weight: u32,
    /// Relative weight of latency-spike faults.
    pub latency_weight: u32,
    /// Relative weight of byzantine faults.
    pub byzantine_weight: u32,
    /// Extra latency applied during a latency spike.
    pub latency_spike: Duration,
    /// Payload returned while byzantine.
    pub byzantine_payload: Vec<u8>,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            mean_time_between_faults: Duration::from_millis(200),
            mean_fault_duration: Duration::from_millis(50),
            crash_weight: 2,
            latency_weight: 1,
            byzantine_weight: 1,
            latency_spike: Duration::from_millis(30),
            byzantine_payload: vec![0xBD],
        }
    }
}

/// A time-ordered schedule of fault transitions for one device.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates a plan from explicit events (sorted by time; order among
    /// same-instant events is preserved).
    #[must_use]
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// A plan with no faults.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Draws a reproducible schedule of non-overlapping fault windows over
    /// `[0, horizon)`: healthy gaps and fault durations are uniform around
    /// the profile's means, fault kinds are picked by weight. The same
    /// `(seed, horizon, profile)` always yields the same plan.
    ///
    /// # Panics
    ///
    /// Panics if every weight in `profile` is zero.
    #[must_use]
    pub fn seeded(seed: u64, horizon: Duration, profile: &FaultProfile) -> Self {
        let total_weight = profile.crash_weight + profile.latency_weight + profile.byzantine_weight;
        assert!(
            total_weight > 0,
            "fault profile must have a non-zero weight"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Uniform in [0.5, 1.5) of `mean`.
        fn around(rng: &mut ChaCha8Rng, mean: Duration) -> Duration {
            mean.mul_f64(rng.gen_range(0.5..1.5))
        }

        let mut events = Vec::new();
        let mut t = around(&mut rng, profile.mean_time_between_faults);
        while t < horizon {
            let (onset, clear) = match pick_weighted(
                &mut rng,
                &[
                    profile.crash_weight,
                    profile.latency_weight,
                    profile.byzantine_weight,
                ],
            ) {
                0 => (FaultKind::Crash, FaultKind::Recover),
                1 => (
                    FaultKind::AddLatency(profile.latency_spike),
                    FaultKind::ClearLatency,
                ),
                _ => (
                    FaultKind::Byzantine(profile.byzantine_payload.clone()),
                    FaultKind::Honest,
                ),
            };
            let duration = around(&mut rng, profile.mean_fault_duration);
            events.push(FaultEvent { at: t, kind: onset });
            events.push(FaultEvent {
                at: t + duration,
                kind: clear,
            });
            t += duration + around(&mut rng, profile.mean_time_between_faults);
        }
        FaultPlan { events }
    }

    /// The schedule, sorted by time.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

fn pick_weighted(rng: &mut ChaCha8Rng, weights: &[u32]) -> usize {
    let total: u32 = weights.iter().sum();
    let mut draw = rng.gen_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        if draw < w {
            return i;
        }
        draw -= w;
    }
    unreachable!("draw is below the total weight")
}

/// The fault condition in force at some instant.
#[derive(Debug, Default)]
struct FaultCondition {
    /// Index of the next unapplied event.
    cursor: usize,
    crashed: bool,
    added_latency: Duration,
    byzantine: Option<Vec<u8>>,
}

/// A [`Provider`] decorator that subjects a [`SimulatedProvider`] to a
/// [`FaultPlan`] on a shared [`Clock`].
///
/// Each invocation first applies every event scheduled at or before the
/// current clock time, then behaves accordingly: crashed devices fail
/// instantly, degraded links sleep the added latency before the real
/// invocation, and byzantine devices replace a successful payload with the
/// planted one (failures stay failures — a crashed-but-byzantine device
/// returns nothing at all).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use qce_runtime::{
///     Clock, FaultEvent, FaultKind, FaultPlan, FaultyProvider, Invocation,
///     Provider, SimulatedProvider, VirtualClock,
/// };
///
/// let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
/// let inner = SimulatedProvider::builder("pi/read-temp", "read-temp")
///     .latency(Duration::from_millis(2))
///     .clock(Arc::clone(&clock) as Arc<dyn Clock>)
///     .build();
/// let plan = FaultPlan::new(vec![
///     FaultEvent { at: Duration::from_millis(10), kind: FaultKind::Crash },
///     FaultEvent { at: Duration::from_millis(20), kind: FaultKind::Recover },
/// ]);
/// let faulty = FaultyProvider::new(inner, Arc::clone(&clock) as Arc<dyn Clock>, plan);
///
/// assert!(faulty.invoke(&Invocation::new(1, "read-temp", vec![])).is_ok());
/// clock.advance(Duration::from_millis(10)); // into the crash window
/// assert!(faulty.invoke(&Invocation::new(2, "read-temp", vec![])).is_err());
/// clock.advance(Duration::from_millis(10)); // past the recovery
/// assert!(faulty.invoke(&Invocation::new(3, "read-temp", vec![])).is_ok());
/// ```
pub struct FaultyProvider {
    inner: Arc<SimulatedProvider>,
    clock: Arc<dyn Clock>,
    plan: FaultPlan,
    condition: Mutex<FaultCondition>,
    telemetry: Option<Arc<Telemetry>>,
}

impl fmt::Debug for FaultyProvider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyProvider")
            .field("inner", &self.inner)
            .field("events", &self.plan.events().len())
            .finish_non_exhaustive()
    }
}

impl FaultyProvider {
    /// Wraps `inner`, applying `plan` against `clock` (which should be the
    /// same clock the inner provider sleeps on).
    #[must_use]
    pub fn new(inner: Arc<SimulatedProvider>, clock: Arc<dyn Clock>, plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultyProvider {
            inner,
            clock,
            plan,
            condition: Mutex::new(FaultCondition::default()),
            telemetry: None,
        })
    }

    /// Like [`FaultyProvider::new`], but every invocation that lands inside
    /// an active fault window is also counted as a
    /// [fault-window hit](crate::telemetry::EventKind::FaultWindowHit) on
    /// `telemetry`.
    #[must_use]
    pub fn with_telemetry(
        inner: Arc<SimulatedProvider>,
        clock: Arc<dyn Clock>,
        plan: FaultPlan,
        telemetry: Arc<Telemetry>,
    ) -> Arc<Self> {
        Arc::new(FaultyProvider {
            inner,
            clock,
            plan,
            condition: Mutex::new(FaultCondition::default()),
            telemetry: Some(telemetry),
        })
    }

    /// The wrapped provider (for reading counters or turning knobs).
    #[must_use]
    pub fn inner(&self) -> &Arc<SimulatedProvider> {
        &self.inner
    }

    /// Applies every event due at `now` and returns the resulting
    /// condition.
    fn condition_at(&self, now: Duration) -> (bool, Duration, Option<Vec<u8>>) {
        let mut cond = self.condition.lock();
        while let Some(event) = self.plan.events.get(cond.cursor) {
            if event.at > now {
                break;
            }
            match &event.kind {
                FaultKind::Crash => cond.crashed = true,
                FaultKind::Recover => cond.crashed = false,
                FaultKind::AddLatency(extra) => cond.added_latency = *extra,
                FaultKind::ClearLatency => cond.added_latency = Duration::ZERO,
                FaultKind::Byzantine(payload) => cond.byzantine = Some(payload.clone()),
                FaultKind::Honest => cond.byzantine = None,
            }
            cond.cursor += 1;
        }
        (cond.crashed, cond.added_latency, cond.byzantine.clone())
    }
}

impl Provider for FaultyProvider {
    fn id(&self) -> &str {
        self.inner.id()
    }

    fn capability(&self) -> &str {
        self.inner.capability()
    }

    fn cost(&self) -> f64 {
        self.inner.cost()
    }

    fn invoke(&self, request: &Invocation) -> Result<Vec<u8>, InvokeError> {
        let (crashed, added_latency, byzantine) = self.condition_at(self.clock.now());
        if let Some(telemetry) = &self.telemetry {
            if crashed {
                telemetry.record_fault_window(self.id(), "crash");
            }
            if !added_latency.is_zero() {
                telemetry.record_fault_window(self.id(), "latency");
            }
            if byzantine.is_some() {
                telemetry.record_fault_window(self.id(), "byzantine");
            }
        }
        if crashed {
            return Err(InvokeError::DeviceUnavailable);
        }
        if !added_latency.is_zero() {
            self.clock.sleep(added_latency);
        }
        let payload = self.inner.invoke(request)?;
        Ok(byzantine.unwrap_or(payload))
    }

    fn try_timed_invoke(
        &self,
        _request: &Invocation,
        clock: &dyn Clock,
    ) -> Option<(Duration, Result<Vec<u8>, InvokeError>)> {
        // Eligibility first, before any side effect: a declined probe must
        // leave the fault cursor, telemetry, and the inner provider's
        // counters untouched, because a blocking `invoke` follows and
        // applies them itself.
        if !self.inner.timed_eligible(clock) || !crate::clock::same_clock(&*self.clock, clock) {
            return None;
        }
        let (crashed, added_latency, byzantine) = self.condition_at(self.clock.now());
        if let Some(telemetry) = &self.telemetry {
            if crashed {
                telemetry.record_fault_window(self.id(), "crash");
            }
            if !added_latency.is_zero() {
                telemetry.record_fault_window(self.id(), "latency");
            }
            if byzantine.is_some() {
                telemetry.record_fault_window(self.id(), "byzantine");
            }
        }
        if crashed {
            // A crashed device fails before reaching the inner provider,
            // so the inner invocation counter must not move.
            return Some((Duration::ZERO, Err(InvokeError::DeviceUnavailable)));
        }
        let (latency, result) = self.inner.timed_sample();
        let result = match result {
            Ok(payload) => Ok(byzantine.unwrap_or(payload)),
            err => err,
        };
        Some((added_latency.saturating_add(latency), result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn at(ms: u64, kind: FaultKind) -> FaultEvent {
        FaultEvent {
            at: Duration::from_millis(ms),
            kind,
        }
    }

    fn rig(plan: FaultPlan) -> (Arc<VirtualClock>, Arc<FaultyProvider>) {
        let clock = Arc::new(VirtualClock::new());
        let inner = SimulatedProvider::builder("d/cap", "cap")
            .latency(Duration::from_millis(2))
            .response(vec![42])
            .clock(Arc::clone(&clock) as Arc<dyn Clock>)
            .build();
        let faulty = FaultyProvider::new(inner, Arc::clone(&clock) as Arc<dyn Clock>, plan);
        (clock, faulty)
    }

    #[test]
    fn plan_sorts_events_by_time() {
        let plan = FaultPlan::new(vec![at(30, FaultKind::Recover), at(10, FaultKind::Crash)]);
        assert_eq!(plan.events()[0].at, Duration::from_millis(10));
        assert_eq!(plan.events()[1].at, Duration::from_millis(30));
    }

    #[test]
    fn crash_window_fails_then_recovers() {
        let (clock, p) = rig(FaultPlan::new(vec![
            at(10, FaultKind::Crash),
            at(30, FaultKind::Recover),
        ]));
        let req = Invocation::new(0, "cap", vec![]);
        assert!(p.invoke(&req).is_ok());
        clock.advance(Duration::from_millis(10)); // now 12 ms: crashed
        let before = clock.now();
        assert_eq!(p.invoke(&req).unwrap_err(), InvokeError::DeviceUnavailable);
        assert_eq!(clock.now(), before, "crash failure is instant");
        clock.advance(Duration::from_millis(20)); // past recovery
        assert_eq!(p.invoke(&req).unwrap(), vec![42]);
    }

    #[test]
    fn latency_fault_adds_exactly_the_spike() {
        let (clock, p) = rig(FaultPlan::new(vec![at(
            0,
            FaultKind::AddLatency(Duration::from_millis(20)),
        )]));
        let t0 = clock.now();
        p.invoke(&Invocation::new(0, "cap", vec![])).unwrap();
        assert_eq!(clock.now() - t0, Duration::from_millis(22));
    }

    #[test]
    fn byzantine_window_replaces_payload() {
        let (clock, p) = rig(FaultPlan::new(vec![
            at(5, FaultKind::Byzantine(vec![99])),
            at(15, FaultKind::Honest),
        ]));
        let req = Invocation::new(0, "cap", vec![]);
        assert_eq!(p.invoke(&req).unwrap(), vec![42], "honest before onset");
        clock.advance(Duration::from_millis(5)); // now 7 ms: lying
        assert_eq!(p.invoke(&req).unwrap(), vec![99]);
        clock.advance(Duration::from_millis(10)); // past honesty
        assert_eq!(p.invoke(&req).unwrap(), vec![42]);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_ordered() {
        let profile = FaultProfile::default();
        let horizon = Duration::from_secs(5);
        let a = FaultPlan::seeded(7, horizon, &profile);
        let b = FaultPlan::seeded(7, horizon, &profile);
        assert_eq!(a, b);
        assert!(!a.events().is_empty());
        assert!(a.events().windows(2).all(|pair| pair[0].at <= pair[1].at));
        let c = FaultPlan::seeded(8, horizon, &profile);
        assert_ne!(a, c, "different seeds draw different misfortunes");
    }

    #[test]
    fn fault_window_hits_are_counted() {
        use crate::telemetry::EventKind;
        let clock = Arc::new(VirtualClock::new());
        let telemetry = Telemetry::new(Arc::clone(&clock) as Arc<dyn Clock>, 8);
        let inner = SimulatedProvider::builder("d/cap", "cap")
            .latency(Duration::from_millis(2))
            .response(vec![42])
            .clock(Arc::clone(&clock) as Arc<dyn Clock>)
            .build();
        let p = FaultyProvider::with_telemetry(
            inner,
            Arc::clone(&clock) as Arc<dyn Clock>,
            FaultPlan::new(vec![at(10, FaultKind::Crash), at(30, FaultKind::Recover)]),
            Arc::clone(&telemetry),
        );
        let req = Invocation::new(0, "cap", vec![]);
        assert!(p.invoke(&req).is_ok(), "healthy invocation records no hit");
        clock.advance(Duration::from_millis(10));
        assert!(p.invoke(&req).is_err());
        let snap = telemetry.snapshot();
        assert_eq!(snap.provider("d/cap").unwrap().fault_window_hits, 1);
        assert!(telemetry.events().iter().any(|e| matches!(
            &e.kind,
            EventKind::FaultWindowHit { provider, fault }
                if provider == "d/cap" && fault == "crash"
        )));
    }

    #[test]
    fn timed_invoke_matches_blocking_across_fault_windows() {
        let plan = FaultPlan::new(vec![
            at(10, FaultKind::AddLatency(Duration::from_millis(20))),
            at(40, FaultKind::ClearLatency),
            at(50, FaultKind::Byzantine(vec![99])),
            at(70, FaultKind::Honest),
            at(80, FaultKind::Crash),
        ]);
        let (timed_clock, timed) = rig(plan.clone());
        let (block_clock, blocking) = rig(plan);
        let req = Invocation::new(0, "cap", vec![]);
        for step in 0..10u64 {
            let (latency, result) = timed
                .try_timed_invoke(&req, &*timed_clock)
                .expect("same clock and no capacity limit: timed-eligible");
            let t0 = block_clock.now();
            let blocked = blocking.invoke(&req);
            assert_eq!(block_clock.now() - t0, latency, "step {step}");
            assert_eq!(blocked, result, "step {step}");
            // Timed sampling never advances its clock; step both clocks
            // through the fault windows in lockstep by hand.
            let catch_up = block_clock.now() - timed_clock.now();
            timed_clock.advance(catch_up + Duration::from_millis(9));
            block_clock.advance(Duration::from_millis(9));
        }
        assert_eq!(timed.inner().invocations(), blocking.inner().invocations());
    }

    #[test]
    fn timed_probe_on_foreign_clock_has_no_side_effects() {
        let (_clock, p) = rig(FaultPlan::new(vec![at(0, FaultKind::Crash)]));
        let other = VirtualClock::new();
        let req = Invocation::new(0, "cap", vec![]);
        assert!(p.try_timed_invoke(&req, &other).is_none());
        assert_eq!(
            p.inner().invocations(),
            0,
            "declined probe must not touch the inner provider"
        );
    }

    #[test]
    fn seeded_plan_pairs_onset_with_clearance() {
        let plan = FaultPlan::seeded(3, Duration::from_secs(10), &FaultProfile::default());
        let onsets = plan
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    FaultKind::Crash | FaultKind::AddLatency(_) | FaultKind::Byzantine(_)
                )
            })
            .count();
        assert_eq!(onsets * 2, plan.events().len());
    }
}

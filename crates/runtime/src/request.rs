//! Typed per-request invocation API: traffic classes and the [`Request`]
//! builder.
//!
//! The paper's QoS-consistency goal is *per request*, but a gateway that
//! treats all traffic as one class sheds blindly under overload: a bulk
//! scraper can starve a latency-critical alarm. [`QosClass`] splits
//! traffic into four tiers — modelled on DSCP's EF/AF/BE ladder — and the
//! gateway's admission control serves them with weighted shares
//! (see `DESIGN.md` §14). [`Request`] carries the class (plus optional
//! per-request deadline, requirement override, and payload) through the
//! single invocation path, [`Gateway::submit`](crate::Gateway::submit).

use std::fmt;
use std::str::FromStr;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use qce_strategy::Requirements;

/// Number of traffic classes (the length of [`QosClass::ALL`]).
pub const CLASS_COUNT: usize = 4;

/// Traffic class of a service request, highest priority first.
///
/// Classes shape *admission*, not execution: once admitted, every request
/// runs the slot's strategy identically. Under overload the per-service
/// admission queue dequeues classes by weighted share
/// ([`QosClass::weight`]), arriving [`Scavenger`](QosClass::Scavenger)
/// requests are shed first, and [`Critical`](QosClass::Critical) arrivals
/// preempt lower-class queue slots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosClass {
    /// Latency-critical traffic (alarms, control loops). Never shed while
    /// a lower class occupies a queue slot; preempts those slots instead.
    Critical,
    /// Normal interactive traffic. The default for requests that do not
    /// state a class, so the pre-class API behaves exactly as before.
    #[default]
    Interactive,
    /// Throughput-oriented background work (batch jobs, prefetching).
    Bulk,
    /// Opportunistic traffic that only runs on spare capacity and is the
    /// first to be shed under overload (scrapers, speculative warming).
    Scavenger,
}

impl QosClass {
    /// Every class, highest priority first. Indexes agree with
    /// [`QosClass::index`].
    pub const ALL: [QosClass; CLASS_COUNT] = [
        QosClass::Critical,
        QosClass::Interactive,
        QosClass::Bulk,
        QosClass::Scavenger,
    ];

    /// Dense index of the class (0 = Critical … 3 = Scavenger), used for
    /// per-class counters and queues.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The class with dense index `index` (inverse of [`QosClass::index`]).
    #[must_use]
    pub fn from_index(index: usize) -> Option<QosClass> {
        QosClass::ALL.get(index).copied()
    }

    /// Weighted-share dequeue weight: out of every 15 admissions granted
    /// to a fully backlogged queue, Critical gets 8, Interactive 4, Bulk
    /// 2, and Scavenger 1 — strict enough to protect Critical, non-zero
    /// everywhere so no nonempty class is starved.
    #[must_use]
    pub fn weight(self) -> u32 {
        match self {
            QosClass::Critical => 8,
            QosClass::Interactive => 4,
            QosClass::Bulk => 2,
            QosClass::Scavenger => 1,
        }
    }

    /// Per-class default deadline, applied when neither the request nor
    /// the gateway configuration sets one. Only Critical carries a default
    /// (a Critical answer that arrives late is worthless); the other
    /// classes inherit the pre-class behaviour of no deadline.
    #[must_use]
    pub fn default_deadline(self) -> Option<Duration> {
        match self {
            QosClass::Critical => Some(Duration::from_millis(250)),
            _ => None,
        }
    }

    /// Per-class default utility requirement: the script's requirements
    /// with the reliability floor pulled toward the class's expectation.
    /// Critical tightens reliability to at least 99%; Bulk and Scavenger
    /// loosen it (to at most 90% / 50%) so background traffic does not
    /// trigger advisories meant for interactive clients; Interactive is
    /// the identity, preserving pre-class behaviour.
    #[must_use]
    pub fn default_requirement(self, base: &Requirements) -> Requirements {
        let reliability = base.reliability.percent() / 100.0;
        let adjusted = match self {
            QosClass::Critical => reliability.max(0.99),
            QosClass::Interactive => reliability,
            QosClass::Bulk => reliability.min(0.9),
            QosClass::Scavenger => reliability.min(0.5),
        };
        Requirements::new(base.cost, base.latency, adjusted)
            .unwrap_or_else(|_| unreachable!("clamped reliability stays in [0, 1]"))
    }
}

impl Serialize for QosClass {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl<'de> Deserialize<'de> for QosClass {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        String::deserialize(deserializer)?
            .parse()
            .map_err(serde::de::Error::custom)
    }
}

impl fmt::Display for QosClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            QosClass::Critical => "critical",
            QosClass::Interactive => "interactive",
            QosClass::Bulk => "bulk",
            QosClass::Scavenger => "scavenger",
        };
        f.write_str(name)
    }
}

impl FromStr for QosClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "critical" => Ok(QosClass::Critical),
            "interactive" => Ok(QosClass::Interactive),
            "bulk" => Ok(QosClass::Bulk),
            "scavenger" => Ok(QosClass::Scavenger),
            other => Err(format!(
                "unknown QoS class {other:?} (expected critical, interactive, bulk or scavenger)"
            )),
        }
    }
}

/// A typed service request, built fluently and submitted through
/// [`Gateway::submit`](crate::Gateway::submit).
///
/// Every field except the service id is optional; unset fields fall back
/// to the service's live overrides (see
/// [`Gateway::control`](crate::Gateway::control)), then to the gateway
/// configuration, then to the class defaults.
///
/// # Examples
///
/// ```
/// use qce_runtime::{QosClass, Request};
///
/// let request = Request::new("temp")
///     .class(QosClass::Critical)
///     .deadline_ms(50)
///     .payload(vec![1, 2, 3]);
/// assert_eq!(request.service(), "temp");
/// assert_eq!(request.explicit_class(), Some(QosClass::Critical));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    service: String,
    class: Option<QosClass>,
    deadline: Option<Duration>,
    requirement: Option<Requirements>,
    payload: Vec<u8>,
}

impl Request {
    /// Starts a request for `service` with no class, deadline,
    /// requirement override, or payload.
    #[must_use]
    pub fn new(service: impl Into<String>) -> Self {
        Request {
            service: service.into(),
            class: None,
            deadline: None,
            requirement: None,
            payload: Vec::new(),
        }
    }

    /// Sets the traffic class.
    #[must_use]
    pub fn class(mut self, class: QosClass) -> Self {
        self.class = Some(class);
        self
    }

    /// Sets a per-request deadline in milliseconds, measured from
    /// admission. Overrides the service's live deadline override and the
    /// gateway-wide [`request_deadline`](crate::GatewayConfig::request_deadline).
    #[must_use]
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Duration::from_millis(ms));
        self
    }

    /// As [`Request::deadline_ms`], with a [`Duration`].
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Overrides the QoS requirement this request is judged against (the
    /// advisory in the response reports violations of *this* requirement
    /// instead of the script's).
    #[must_use]
    pub fn requirement(mut self, requirement: Requirements) -> Self {
        self.requirement = Some(requirement);
        self
    }

    /// Sets the opaque request payload.
    #[must_use]
    pub fn payload(mut self, payload: Vec<u8>) -> Self {
        self.payload = payload;
        self
    }

    /// The target service id.
    #[must_use]
    pub fn service(&self) -> &str {
        &self.service
    }

    /// The class explicitly set on this request, if any (`None` defers to
    /// the service override, then [`QosClass::default`]).
    #[must_use]
    pub fn explicit_class(&self) -> Option<QosClass> {
        self.class
    }

    /// The deadline explicitly set on this request, if any.
    #[must_use]
    pub fn explicit_deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The requirement override explicitly set on this request, if any.
    #[must_use]
    pub fn explicit_requirement(&self) -> Option<&Requirements> {
        self.requirement.as_ref()
    }

    /// Consumes the request into its parts
    /// `(service, class, deadline, requirement, payload)`.
    #[must_use]
    pub fn into_parts(
        self,
    ) -> (
        String,
        Option<QosClass>,
        Option<Duration>,
        Option<Requirements>,
        Vec<u8>,
    ) {
        (
            self.service,
            self.class,
            self.deadline,
            self.requirement,
            self.payload,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_order_and_indexing_agree() {
        for (i, class) in QosClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
            assert_eq!(QosClass::from_index(i), Some(*class));
        }
        assert_eq!(QosClass::from_index(CLASS_COUNT), None);
        assert!(QosClass::Critical < QosClass::Scavenger, "priority order");
    }

    #[test]
    fn weights_are_monotone_in_priority() {
        let weights: Vec<u32> = QosClass::ALL.iter().map(|c| c.weight()).collect();
        assert!(weights.windows(2).all(|w| w[0] > w[1]), "{weights:?}");
        assert!(weights.iter().all(|&w| w > 0), "no class is starved");
    }

    #[test]
    fn display_and_parse_round_trip() {
        for class in QosClass::ALL {
            assert_eq!(class.to_string().parse::<QosClass>().unwrap(), class);
        }
        assert_eq!("CRITICAL".parse::<QosClass>().unwrap(), QosClass::Critical);
        assert!("gold".parse::<QosClass>().is_err());
    }

    #[test]
    fn serde_uses_lowercase_names() {
        let json = serde_json::to_string(&QosClass::Scavenger).unwrap();
        assert_eq!(json, "\"scavenger\"");
        let back: QosClass = serde_json::from_str("\"critical\"").unwrap();
        assert_eq!(back, QosClass::Critical);
    }

    #[test]
    fn interactive_is_the_default_and_identity() {
        assert_eq!(QosClass::default(), QosClass::Interactive);
        let base = Requirements::new(100.0, 50.0, 0.7).unwrap();
        assert_eq!(QosClass::Interactive.default_requirement(&base), base);
        assert_eq!(QosClass::Interactive.default_deadline(), None);
    }

    #[test]
    fn class_requirements_pull_reliability_toward_the_tier() {
        let base = Requirements::new(100.0, 50.0, 0.7).unwrap();
        let critical = QosClass::Critical.default_requirement(&base);
        assert!((critical.reliability.percent() - 99.0).abs() < 1e-9);
        let bulk = QosClass::Bulk.default_requirement(&base);
        assert!(
            (bulk.reliability.percent() - 70.0).abs() < 1e-9,
            "under cap"
        );
        let scavenger = QosClass::Scavenger.default_requirement(&base);
        assert!((scavenger.reliability.percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn builder_accumulates_fields() {
        let req = Requirements::new(10.0, 10.0, 0.9).unwrap();
        let request = Request::new("svc")
            .class(QosClass::Bulk)
            .deadline_ms(75)
            .requirement(req)
            .payload(vec![7]);
        let (service, class, deadline, requirement, payload) = request.into_parts();
        assert_eq!(service, "svc");
        assert_eq!(class, Some(QosClass::Bulk));
        assert_eq!(deadline, Some(Duration::from_millis(75)));
        assert_eq!(requirement, Some(req));
        assert_eq!(payload, vec![7]);
    }

    #[test]
    fn bare_request_defers_everything() {
        let request = Request::new("svc");
        assert_eq!(request.explicit_class(), None);
        assert_eq!(request.explicit_deadline(), None);
        assert!(request.explicit_requirement().is_none());
    }
}

//! Multi-stage service pipelines — the "dataflow of constituent
//! microservices" that service scripts describe (paper Section IV.A).
//!
//! A pipeline chains already-published services: each stage is a full
//! equivalent-microservice service (with its own feedback loop, strategy,
//! and time slots), and the winning payload of stage `i` becomes the
//! request payload of stage `i + 1`. The pipeline aborts at the first
//! stage whose strategy fails entirely.
//!
//! End-to-end QoS composes per
//! [`qce_strategy::compose`]: reliability multiplies, expected cost and
//! latency accumulate weighted by the probability of reaching each stage.

use std::sync::Arc;
use std::time::Duration;

use crate::gateway::{Gateway, ServiceResponse};
use crate::message::RuntimeError;
use crate::request::Request;

/// The outcome of one pipeline invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineResponse {
    /// Whether every stage succeeded.
    pub success: bool,
    /// Final payload (the last stage's winning result) when successful.
    pub payload: Option<Vec<u8>>,
    /// Total cost charged across all executed stages.
    pub cost: f64,
    /// Total wall-clock latency across all executed stages.
    pub latency: Duration,
    /// Per-stage responses, in order; shorter than the stage list when the
    /// pipeline aborted early.
    pub stages: Vec<ServiceResponse>,
}

impl PipelineResponse {
    /// Index of the stage that failed, if any.
    #[must_use]
    pub fn failed_stage(&self) -> Option<usize> {
        if self.success {
            None
        } else {
            Some(self.stages.len().saturating_sub(1))
        }
    }
}

/// Invokes `service_ids` as a sequential pipeline on `gateway`, feeding
/// `payload` into the first stage and each stage's winning payload into
/// the next.
///
/// Every stage goes through the gateway's full machinery — script cache,
/// provider resolution, per-slot strategy generation, QoS collection — so
/// repeated pipeline invocations adapt stage strategies independently.
///
/// # Errors
///
/// Returns [`RuntimeError::InvalidScript`] for an empty stage list, or any
/// gateway error from a stage (unknown service, missing provider, …).
/// A stage whose strategy *fails* is not an error: the pipeline returns
/// `success = false` with the partial stage responses.
pub fn invoke_pipeline(
    gateway: &Arc<Gateway>,
    service_ids: &[&str],
    payload: Vec<u8>,
) -> Result<PipelineResponse, RuntimeError> {
    if service_ids.is_empty() {
        return Err(RuntimeError::InvalidScript {
            reason: "pipeline needs at least one stage".to_string(),
        });
    }
    let mut stages = Vec::with_capacity(service_ids.len());
    let mut current = payload;
    let mut cost = 0.0;
    let mut latency = Duration::ZERO;
    for (i, service_id) in service_ids.iter().enumerate() {
        let response = gateway.submit(Request::new(*service_id).payload(current.clone()))?;
        cost += response.cost;
        latency += response.latency;
        let succeeded = response.success;
        let next = response.payload.clone();
        stages.push(response);
        if !succeeded {
            return Ok(PipelineResponse {
                success: false,
                payload: None,
                cost,
                latency,
                stages,
            });
        }
        current = next.unwrap_or_default();
        let _ = i;
    }
    Ok(PipelineResponse {
        success: true,
        payload: Some(current),
        cost,
        latency,
        stages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FnProvider;
    use crate::gateway::GatewayConfig;
    use crate::market::InMemoryMarket;
    use crate::message::InvokeError;
    use crate::script::{MsSpec, ServiceScript};
    use qce_strategy::{Qos, Requirements};

    /// Publishes a single-microservice service whose provider applies `f`
    /// to the request payload.
    fn stage_service(
        market: &InMemoryMarket,
        gateway: &Gateway,
        id: &str,
        f: impl Fn(&[u8]) -> Result<Vec<u8>, InvokeError> + Send + Sync + 'static,
    ) {
        let script = ServiceScript::new(
            id,
            vec![MsSpec {
                name: "only".into(),
                capability: format!("cap-{id}"),
                prior: Qos::new(10.0, 5.0, 0.9).unwrap(),
            }],
            Requirements::new(100.0, 100.0, 0.5).unwrap(),
        );
        market.publish(script).unwrap();
        gateway.registry().register(FnProvider::new(
            format!("dev/{id}"),
            format!("cap-{id}"),
            10.0,
            move |req| f(&req.payload),
        ));
    }

    fn setup() -> (Arc<Gateway>, Arc<InMemoryMarket>) {
        let market = Arc::new(InMemoryMarket::new());
        let market_handle = Arc::clone(&market);
        struct Shared(Arc<InMemoryMarket>);
        impl crate::market::Market for Shared {
            fn fetch(&self, id: &str) -> Result<ServiceScript, RuntimeError> {
                self.0.fetch(id)
            }
            fn service_ids(&self) -> Vec<String> {
                self.0.service_ids()
            }
        }
        let gateway = Arc::new(Gateway::new(
            Box::new(Shared(market_handle)),
            GatewayConfig::default(),
        ));
        (gateway, market)
    }

    #[test]
    fn empty_pipeline_rejected() {
        let (gateway, _market) = setup();
        assert!(matches!(
            invoke_pipeline(&gateway, &[], vec![]),
            Err(RuntimeError::InvalidScript { .. })
        ));
    }

    #[test]
    fn payload_flows_through_stages() {
        let (gateway, market) = setup();
        stage_service(&market, &gateway, "double", |p| {
            Ok(p.iter().map(|b| b * 2).collect())
        });
        stage_service(&market, &gateway, "inc", |p| {
            Ok(p.iter().map(|b| b + 1).collect())
        });
        let out = invoke_pipeline(&gateway, &["double", "inc"], vec![3, 5]).unwrap();
        assert!(out.success);
        assert_eq!(out.payload, Some(vec![7, 11])); // (3·2)+1, (5·2)+1
        assert_eq!(out.stages.len(), 2);
        assert_eq!(out.cost, 20.0);
        assert!(out.failed_stage().is_none());
    }

    #[test]
    fn pipeline_aborts_on_stage_failure() {
        let (gateway, market) = setup();
        stage_service(&market, &gateway, "ok", |p| Ok(p.to_vec()));
        stage_service(&market, &gateway, "broken", |_| {
            Err(InvokeError::ExecutionFailed {
                reason: "boom".to_string(),
            })
        });
        stage_service(&market, &gateway, "never", |p| Ok(p.to_vec()));
        let out = invoke_pipeline(&gateway, &["ok", "broken", "never"], vec![1]).unwrap();
        assert!(!out.success);
        assert_eq!(out.stages.len(), 2, "third stage never runs");
        assert_eq!(out.failed_stage(), Some(1));
        assert_eq!(out.cost, 20.0, "only executed stages are charged");
        assert!(out.payload.is_none());
    }

    #[test]
    fn unknown_stage_service_is_an_error() {
        let (gateway, market) = setup();
        stage_service(&market, &gateway, "ok", |p| Ok(p.to_vec()));
        assert!(matches!(
            invoke_pipeline(&gateway, &["ok", "missing"], vec![]),
            Err(RuntimeError::UnknownService { .. })
        ));
    }

    #[test]
    fn composed_qos_matches_compose_module() {
        // Pipeline of two perfectly reliable stages: measured cost equals
        // the composed expectation.
        let (gateway, market) = setup();
        stage_service(&market, &gateway, "s1", |p| Ok(p.to_vec()));
        stage_service(&market, &gateway, "s2", |p| Ok(p.to_vec()));
        let out = invoke_pipeline(&gateway, &["s1", "s2"], vec![]).unwrap();
        let stage_qos = Qos::new(10.0, 1.0, 1.0).unwrap();
        let composed = qce_strategy::compose::pipeline_qos(&[stage_qos, stage_qos]).unwrap();
        assert_eq!(out.cost, composed.cost);
    }

    #[test]
    fn stages_adapt_independently() {
        // Each stage is a real gateway service with its own slots.
        let (gateway, market) = setup();
        stage_service(&market, &gateway, "s1", |p| Ok(p.to_vec()));
        stage_service(&market, &gateway, "s2", |p| Ok(p.to_vec()));
        for _ in 0..3 {
            invoke_pipeline(&gateway, &["s1", "s2"], vec![]).unwrap();
        }
        assert_eq!(gateway.slot_history("s1").len(), 1);
        assert_eq!(gateway.slot_history("s2").len(), 1);
        gateway.end_slot("s1");
        invoke_pipeline(&gateway, &["s1", "s2"], vec![]).unwrap();
        assert_eq!(gateway.slot_history("s1").len(), 2, "s1 re-planned");
        assert_eq!(gateway.slot_history("s2").len(), 1, "s2 untouched");
    }
}

//! Self-describing service scripts (paper Section IV.A).
//!
//! A service script tells the gateway everything it needs to provision an
//! edge service: which equivalent microservices can fulfil it (by
//! *capability*), their developer-supplied prior QoS, the service's QoS
//! requirements, the utility penalty `k`, and optionally a developer
//! default strategy (MOLE-style). Scripts live in the cloud service market
//! and are cached at the gateway after first download.

use serde::{Deserialize, Serialize};

use qce_strategy::{Qos, Requirements, Strategy};

use crate::message::RuntimeError;

/// One equivalent microservice entry in a service script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MsSpec {
    /// Human-readable microservice name (e.g. `"readTempSensor"`). Used in
    /// strategy expressions.
    pub name: String,
    /// The capability providers must implement (e.g. `"read-temp-sensor"`).
    pub capability: String,
    /// Developer-supplied prior QoS, used until the collector has real
    /// observations.
    pub prior: Qos,
}

/// A self-describing service script.
///
/// # Examples
///
/// ```
/// use qce_runtime::{MsSpec, ServiceScript};
/// use qce_strategy::{Qos, Requirements};
///
/// let script = ServiceScript::new(
///     "detect-temperature",
///     vec![
///         MsSpec {
///             name: "readTempSensor".into(),
///             capability: "read-temp-sensor".into(),
///             prior: Qos::new(50.0, 30.0, 0.7)?,
///         },
///         MsSpec {
///             name: "estTemp".into(),
///             capability: "est-temp".into(),
///             prior: Qos::new(50.0, 60.0, 0.7)?,
///         },
///     ],
///     Requirements::new(100.0, 100.0, 0.97)?,
/// );
/// assert_eq!(script.microservices.len(), 2);
/// script.validate()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceScript {
    /// Unique service id (the client-facing `ServiceID`).
    pub service_id: String,
    /// The equivalent microservices, in developer priority order. Their
    /// position is their [`MsId`](qce_strategy::MsId) in strategies.
    pub microservices: Vec<MsSpec>,
    /// QoS requirements imposed on the service.
    pub requirements: Requirements,
    /// Utility penalty factor `k` (> 1) for the generator.
    pub penalty_k: f64,
    /// Strategy to execute before the collector has data. `None` means the
    /// system default (speculative parallel, as in the paper's testbed
    /// experiments).
    pub default_strategy: Option<String>,
    /// Invocations per time slot: the generator re-runs at each slot
    /// boundary (the paper simulates 100 invocations per slot).
    pub slot_size: u32,
    /// Require this many *agreeing* results per request instead of the
    /// first success — the paper's §VII protection against malicious
    /// devices. `None` (the default) keeps first-success semantics.
    #[serde(default)]
    pub quorum: Option<usize>,
}

impl ServiceScript {
    /// Creates a script with the default penalty (`k = 2`), no developer
    /// default strategy, and the paper's 100-invocation slots.
    #[must_use]
    pub fn new(
        service_id: impl Into<String>,
        microservices: Vec<MsSpec>,
        requirements: Requirements,
    ) -> Self {
        ServiceScript {
            service_id: service_id.into(),
            microservices,
            requirements,
            penalty_k: qce_strategy::utility::DEFAULT_PENALTY,
            default_strategy: None,
            slot_size: 100,
            quorum: None,
        }
    }

    /// Names of the microservices, in [`MsId`](qce_strategy::MsId) order —
    /// the name table for parsing strategy expressions.
    #[must_use]
    pub fn ms_names(&self) -> Vec<&str> {
        self.microservices.iter().map(|m| m.name.as_str()).collect()
    }

    /// Parses the developer default strategy, if any.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidScript`] if the expression does not
    /// parse against this script's microservice names.
    pub fn parsed_default_strategy(&self) -> Result<Option<Strategy>, RuntimeError> {
        match &self.default_strategy {
            None => Ok(None),
            Some(text) => Strategy::parse_with_names(text, &self.ms_names())
                .map(Some)
                .map_err(|e| RuntimeError::InvalidScript {
                    reason: format!("default strategy {text:?}: {e}"),
                }),
        }
    }

    /// Validates the script's internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidScript`] when the script has no
    /// microservices, duplicate names, an unparsable default strategy, an
    /// invalid penalty, or a zero slot size.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        if self.microservices.is_empty() {
            return Err(RuntimeError::InvalidScript {
                reason: "script lists no microservices".to_string(),
            });
        }
        let mut names: Vec<&str> = self.ms_names();
        names.sort_unstable();
        names.dedup();
        if names.len() != self.microservices.len() {
            return Err(RuntimeError::InvalidScript {
                reason: "duplicate microservice names".to_string(),
            });
        }
        if !(self.penalty_k.is_finite() && self.penalty_k > 1.0) {
            return Err(RuntimeError::InvalidScript {
                reason: format!("penalty k must be > 1, got {}", self.penalty_k),
            });
        }
        if self.slot_size == 0 {
            return Err(RuntimeError::InvalidScript {
                reason: "slot size must be positive".to_string(),
            });
        }
        if let Some(q) = self.quorum {
            if q == 0 || q > self.microservices.len() {
                return Err(RuntimeError::InvalidScript {
                    reason: format!(
                        "quorum {q} must be between 1 and the number of microservices ({})",
                        self.microservices.len()
                    ),
                });
            }
        }
        self.parsed_default_strategy()?;
        Ok(())
    }

    /// Serializes the script to pretty JSON — the wire format of the
    /// service market.
    ///
    /// # Panics
    ///
    /// Never panics: every field of a `ServiceScript` is serializable.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scripts always serialize")
    }

    /// Parses a script from market JSON.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidScript`] on malformed JSON or an
    /// internally inconsistent script.
    pub fn from_json(json: &str) -> Result<Self, RuntimeError> {
        let script: ServiceScript =
            serde_json::from_str(json).map_err(|e| RuntimeError::InvalidScript {
                reason: e.to_string(),
            })?;
        script.validate()?;
        Ok(script)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str) -> MsSpec {
        MsSpec {
            name: name.to_string(),
            capability: format!("cap-{name}"),
            prior: Qos::new(50.0, 50.0, 0.7).unwrap(),
        }
    }

    fn script() -> ServiceScript {
        ServiceScript::new(
            "svc",
            vec![spec("alpha"), spec("beta"), spec("gamma")],
            Requirements::new(100.0, 100.0, 0.97).unwrap(),
        )
    }

    #[test]
    fn defaults_are_sane() {
        let s = script();
        assert_eq!(s.penalty_k, 2.0);
        assert_eq!(s.slot_size, 100);
        assert!(s.default_strategy.is_none());
        assert!(s.validate().is_ok());
        assert!(s.parsed_default_strategy().unwrap().is_none());
    }

    #[test]
    fn names_in_order() {
        assert_eq!(script().ms_names(), vec!["alpha", "beta", "gamma"]);
    }

    #[test]
    fn default_strategy_parses_against_names() {
        let mut s = script();
        s.default_strategy = Some("alpha-beta*gamma".to_string());
        let parsed = s.parsed_default_strategy().unwrap().unwrap();
        assert_eq!(parsed.len(), 3);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn unknown_name_in_default_strategy_rejected() {
        let mut s = script();
        s.default_strategy = Some("alpha-delta".to_string());
        assert!(matches!(
            s.validate(),
            Err(RuntimeError::InvalidScript { .. })
        ));
    }

    #[test]
    fn empty_script_rejected() {
        let s = ServiceScript::new("svc", vec![], Requirements::new(1.0, 1.0, 0.5).unwrap());
        assert!(s.validate().is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let s = ServiceScript::new(
            "svc",
            vec![spec("alpha"), spec("alpha")],
            Requirements::new(1.0, 1.0, 0.5).unwrap(),
        );
        assert!(s.validate().is_err());
    }

    #[test]
    fn bad_penalty_rejected() {
        let mut s = script();
        s.penalty_k = 1.0;
        assert!(s.validate().is_err());
        s.penalty_k = f64::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    fn zero_slot_rejected() {
        let mut s = script();
        s.slot_size = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn quorum_validation() {
        let mut s = script();
        s.quorum = Some(2);
        assert!(s.validate().is_ok());
        s.quorum = Some(0);
        assert!(s.validate().is_err());
        s.quorum = Some(4); // only 3 microservices
        assert!(s.validate().is_err());
    }

    #[test]
    fn quorum_defaults_to_none_in_old_json() {
        // Scripts published before the quorum field still parse.
        let mut s = script();
        s.quorum = None;
        let mut value: serde_json::Value = serde_json::from_str(&s.to_json()).unwrap();
        value.as_object_mut().unwrap().remove("quorum");
        let back = ServiceScript::from_json(&value.to_string()).unwrap();
        assert_eq!(back.quorum, None);
    }

    #[test]
    fn json_round_trip() {
        let mut s = script();
        s.default_strategy = Some("alpha*beta-gamma".to_string());
        let json = s.to_json();
        let back = ServiceScript::from_json(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(ServiceScript::from_json("{not json").is_err());
        assert!(ServiceScript::from_json("{}").is_err());
    }

    #[test]
    fn from_json_validates() {
        let mut s = script();
        s.slot_size = 0;
        let json = serde_json::to_string(&s).unwrap();
        assert!(ServiceScript::from_json(&json).is_err());
    }
}

//! Runtime telemetry: lock-cheap counters, latency/cost histograms, and a
//! bounded ring of structured events.
//!
//! The paper's feedback loop (Section IV.B) is only trustworthy if its
//! adaptation is *observable*: which strategy served each slot, what the
//! generator searched, which providers failed, where the time went. The
//! [`Telemetry`] subsystem answers those questions without slowing the hot
//! path down:
//!
//! * **Counters and histograms** are plain atomics, updated with relaxed
//!   stores on every request/invocation — no lock is held while a provider
//!   executes.
//! * **Events** ([`TelemetryEvent`]) are rare (slot boundaries, failures)
//!   and go through a short mutex into a bounded ring; when the ring is
//!   full the oldest event is dropped and counted, never blocking the
//!   emitter.
//! * **Snapshots** ([`Telemetry::snapshot`]) copy everything into a plain
//!   serde-serializable [`MetricsSnapshot`] — sorted `Vec`s, not maps — so
//!   dumps are deterministic and diffable.
//!
//! All timestamps come from the shared [`Clock`], so a virtual-time test
//! can assert *exact* telemetry values.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use qce_strategy::{PlanCacheStats, PlanSource, SynthesisReport};

use crate::clock::Clock;
use crate::message::RuntimeError;
use crate::request::{QosClass, CLASS_COUNT};

/// Upper bucket edges of the latency histograms, in microseconds
/// (1 ms … 1 s; slower invocations land in the overflow bucket).
const LATENCY_EDGES_US: [u64; 10] = [
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000,
];

/// Upper bucket edges of the cost histograms, in milli-cost-units
/// (cost 10 … 2000).
const COST_EDGES_MILLI: [u64; 8] = [
    10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000, 2_000_000,
];

/// A fixed-bucket histogram over `u64` raw units (microseconds or
/// milli-cost), updated with relaxed atomics.
struct Histogram {
    edges: &'static [u64],
    buckets: Box<[AtomicU64]>,
    overflow: AtomicU64,
    count: AtomicU64,
    /// Sum of raw units (microseconds / milli-cost).
    sum: AtomicU64,
}

impl Histogram {
    fn new(edges: &'static [u64]) -> Self {
        Histogram {
            edges,
            buckets: edges.iter().map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, raw: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate, don't wrap: `micros` clamps out-of-range durations to
        // `u64::MAX`, and a single such observation through `fetch_add`
        // would wrap the running sum around to garbage. The sample itself
        // still lands in the overflow bucket below.
        self.sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |sum| {
                Some(sum.saturating_add(raw))
            })
            .ok();
        match self.edges.iter().position(|&edge| raw <= edge) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Snapshot with raw units divided by `unit` (e.g. 1000.0 to render
    /// microseconds as milliseconds).
    fn snapshot(&self, unit: f64) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: to_f64(self.sum.load(Ordering::Relaxed)) / unit,
            overflow: self.overflow.load(Ordering::Relaxed),
            buckets: self
                .edges
                .iter()
                .zip(self.buckets.iter())
                .map(|(&edge, bucket)| HistogramBucket {
                    le: to_f64(edge) / unit,
                    count: bucket.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Lossless for every value a histogram can realistically accumulate
/// (below 2^53 raw units).
#[allow(clippy::cast_precision_loss)]
fn to_f64(raw: u64) -> f64 {
    raw as f64
}

fn micros(duration: Duration) -> u64 {
    u64::try_from(duration.as_micros()).unwrap_or(u64::MAX)
}

fn milli_cost(cost: f64) -> u64 {
    if cost.is_finite() && cost > 0.0 {
        // In-range by the guard; fractional milli-cost rounds down.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            (cost * 1000.0).min(to_f64(u64::MAX)) as u64
        }
    } else {
        0
    }
}

/// Per-class counters of one service (all relaxed atomics): the
/// shed/queue-depth/latency breakout behind [`ClassSnapshot`].
struct ClassMetrics {
    requests: AtomicU64,
    successes: AtomicU64,
    shed: AtomicU64,
    /// Gauge: requests of this class waiting in the admission queue.
    queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    queue_peak: AtomicU64,
    latency: Histogram,
}

impl ClassMetrics {
    fn new() -> Self {
        ClassMetrics {
            requests: AtomicU64::new(0),
            successes: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            latency: Histogram::new(&LATENCY_EDGES_US),
        }
    }
}

/// Per-service counters (all relaxed atomics).
struct ServiceMetrics {
    invocations: AtomicU64,
    successes: AtomicU64,
    advisories: AtomicU64,
    quorum_votes_cast: AtomicU64,
    quorum_votes_agreed: AtomicU64,
    replans: AtomicU64,
    plans_cold: AtomicU64,
    plans_warm_start: AtomicU64,
    plans_cached: AtomicU64,
    /// Plan-cache gauges: absolute values of the service planner's
    /// [`PlanCacheStats`], stored (not accumulated) on every re-plan.
    plan_cache_hits: AtomicU64,
    plan_cache_remote_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    plan_cache_stale: AtomicU64,
    strategy_switches: AtomicU64,
    /// Slot boundaries that re-planned because the observed QoS drifted
    /// outside the active plan's quantization band (drift mode only).
    drift_replans: AtomicU64,
    /// Slot boundaries that kept the active plan because the observed
    /// QoS stayed within its quantization band (drift mode only).
    drift_holds: AtomicU64,
    plan_failures: AtomicU64,
    history_evicted: AtomicU64,
    requests_shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    /// Gauge: requests waiting in the admission queue right now.
    admission_queue_depth: AtomicU64,
    /// High-water mark of `admission_queue_depth`.
    admission_queue_peak: AtomicU64,
    candidates_seen: AtomicU64,
    candidates_pruned: AtomicU64,
    synthesis_micros: AtomicU64,
    /// Live-override applications via the gateway's control handle.
    overrides: AtomicU64,
    latency: Histogram,
    cost: Histogram,
    /// Per-class breakout, indexed by [`QosClass::index`].
    classes: [ClassMetrics; CLASS_COUNT],
    /// Strategy text of the last planned slot, for switch detection.
    last_strategy: Mutex<Option<String>>,
}

impl ServiceMetrics {
    fn new() -> Self {
        ServiceMetrics {
            invocations: AtomicU64::new(0),
            successes: AtomicU64::new(0),
            advisories: AtomicU64::new(0),
            quorum_votes_cast: AtomicU64::new(0),
            quorum_votes_agreed: AtomicU64::new(0),
            replans: AtomicU64::new(0),
            plans_cold: AtomicU64::new(0),
            plans_warm_start: AtomicU64::new(0),
            plans_cached: AtomicU64::new(0),
            plan_cache_hits: AtomicU64::new(0),
            plan_cache_remote_hits: AtomicU64::new(0),
            plan_cache_misses: AtomicU64::new(0),
            plan_cache_stale: AtomicU64::new(0),
            strategy_switches: AtomicU64::new(0),
            drift_replans: AtomicU64::new(0),
            drift_holds: AtomicU64::new(0),
            plan_failures: AtomicU64::new(0),
            history_evicted: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            admission_queue_depth: AtomicU64::new(0),
            admission_queue_peak: AtomicU64::new(0),
            candidates_seen: AtomicU64::new(0),
            candidates_pruned: AtomicU64::new(0),
            synthesis_micros: AtomicU64::new(0),
            overrides: AtomicU64::new(0),
            latency: Histogram::new(&LATENCY_EDGES_US),
            cost: Histogram::new(&COST_EDGES_MILLI),
            classes: std::array::from_fn(|_| ClassMetrics::new()),
            last_strategy: Mutex::new(None),
        }
    }

    fn class(&self, class: QosClass) -> &ClassMetrics {
        &self.classes[class.index()]
    }
}

/// Per-provider counters (all relaxed atomics).
struct ProviderMetrics {
    invocations: AtomicU64,
    successes: AtomicU64,
    fault_window_hits: AtomicU64,
    departures: AtomicU64,
    rejoins: AtomicU64,
    latency: Histogram,
    cost: Histogram,
}

impl ProviderMetrics {
    fn new() -> Self {
        ProviderMetrics {
            invocations: AtomicU64::new(0),
            successes: AtomicU64::new(0),
            fault_window_hits: AtomicU64::new(0),
            departures: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            latency: Histogram::new(&LATENCY_EDGES_US),
            cost: Histogram::new(&COST_EDGES_MILLI),
        }
    }
}

/// A structured, timestamped telemetry event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryEvent {
    /// Monotonic sequence number (counts every emitted event, including
    /// ones since evicted from the ring).
    pub seq: u64,
    /// Clock time of emission.
    pub at: Duration,
    /// What happened.
    pub kind: EventKind,
}

/// The event payloads recorded by the runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A slot boundary re-planned a service's strategy. The synthesis
    /// counters come from the generator's [`SynthesisReport`] and are zero
    /// for the default (slot 0) strategy, which is not searched.
    SlotReplanned {
        /// Service id.
        service: String,
        /// Zero-based slot the plan serves.
        slot: u64,
        /// How the strategy was chosen (`default` / `generated(..)`).
        origin: String,
        /// The strategy, rendered with script microservice names.
        strategy: String,
        /// Candidates whose QoS the generator estimated.
        candidates_seen: u64,
        /// Candidates skipped by branch-and-bound pruning.
        candidates_pruned: u64,
        /// Time the generation call took.
        elapsed: Duration,
        /// How the plan was obtained (cold search, warm-started search, or
        /// plan-cache hit); `None` for the unsearched default strategy.
        #[serde(default)]
        source: Option<PlanSource>,
    },
    /// A drift-triggered re-plan fired: at a slot boundary with
    /// `replan_on_drift` enabled, the collector's QoS table left the
    /// quantization band of the active plan's assumed table, so the
    /// gateway re-planned instead of holding the plan.
    ReplanTriggered {
        /// Service id.
        service: String,
        /// Slot the re-plan will serve.
        slot: u64,
        /// Fraction of (microservice, attribute) quantized cells that
        /// differ between the active plan's assumed QoS table and the
        /// current one (`(0, 1]` — zero-drift boundaries hold the plan
        /// and emit no event).
        drift: f64,
    },
    /// The `auto` planner's bandit selected a search backend for a
    /// re-plan. `pulls` and `mean` reflect the arm's statistics *after*
    /// the pull is recorded.
    BackendChosen {
        /// Service id.
        service: String,
        /// Slot the plan serves.
        slot: u64,
        /// The chosen arm, rendered (`exhaustive` / `greedy` / `beam:W`).
        arm: String,
        /// Times this arm has been pulled for this service.
        pulls: u64,
        /// The arm's mean reward (utility per log-damped search cost).
        mean: f64,
    },
    /// A re-plan chose a different strategy than the previous slot's.
    StrategySwitched {
        /// Service id.
        service: String,
        /// Slot of the new strategy.
        slot: u64,
        /// The previous slot's strategy text.
        from: String,
        /// The new strategy text.
        to: String,
    },
    /// Planning a slot failed (the slot stays unplanned and the next
    /// invocation retries).
    PlanFailed {
        /// Service id.
        service: String,
        /// Slot that could not be planned.
        slot: u64,
        /// The error, rendered.
        reason: String,
    },
    /// Planning failed because a capability has no registered provider.
    ProviderResolutionFailed {
        /// Service id.
        service: String,
        /// Slot that could not be planned.
        slot: u64,
        /// The capability with no provider.
        capability: String,
    },
    /// An invocation landed inside an active fault window of a
    /// [`FaultyProvider`](crate::FaultyProvider).
    FaultWindowHit {
        /// Provider id.
        provider: String,
        /// The fault in force (`crash` / `latency` / `byzantine`).
        fault: String,
    },
    /// The gateway's admission layer shed a request: the service was at
    /// its in-flight limit and the admission queue was full (or a higher
    /// class preempted the request's queue slot).
    RequestShed {
        /// Service id.
        service: String,
        /// Traffic class of the shed request (pre-class events
        /// deserialize as [`QosClass::Interactive`]).
        #[serde(default)]
        class: QosClass,
        /// Requests executing when the shed happened.
        in_flight: u64,
        /// Requests waiting in the admission queue when the shed happened.
        queued: u64,
    },
    /// A request's deadline expired mid-execution; its remaining legs were
    /// pruned (in-flight legs ran to completion per Assumption 2).
    DeadlineExceeded {
        /// Service id.
        service: String,
        /// The request whose deadline expired.
        request_id: u64,
        /// Traffic class of the request (pre-class events deserialize as
        /// [`QosClass::Interactive`]).
        #[serde(default)]
        class: QosClass,
    },
    /// A live override was applied through the gateway's control handle
    /// ([`Gateway::control`](crate::Gateway::control)): exactly one event
    /// per applied override.
    OverrideApplied {
        /// Service the override retunes.
        service: String,
        /// Which knob was overridden (`class` / `deadline` /
        /// `requirement`).
        field: String,
        /// The new value, rendered (`"none"` for a cleared override).
        value: String,
    },
    /// A correlated-failure storm began: every provider in the named
    /// failure domain crashed at once (scenario replay marker).
    StormOnset {
        /// Failure-domain name (e.g. the shared radio link).
        storm: String,
        /// Providers taken down together.
        providers: Vec<String>,
    },
    /// A correlated-failure storm ended; its providers are reachable
    /// again. Adaptation lag is measured from this marker.
    StormRecovered {
        /// Failure-domain name.
        storm: String,
        /// Providers restored together.
        providers: Vec<String>,
    },
    /// A provider left the environment mid-run (device churn): it was
    /// deregistered and its collector window was reset.
    ProviderLeft {
        /// Provider id.
        provider: String,
    },
    /// A previously-seen provider re-joined the environment (device
    /// churn). Its collector history starts fresh.
    ProviderRejoined {
        /// Provider id.
        provider: String,
    },
}

/// Snapshot of one latency or cost histogram. Bucket counts are
/// per-bucket (not cumulative); `le` edges and `sum` are in display units
/// (milliseconds for latency, cost units for cost).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations, in display units.
    pub sum: f64,
    /// Observations above the largest bucket edge.
    pub overflow: u64,
    /// Per-bucket observation counts.
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramSnapshot {
    /// Upper-edge estimate of the `q`-quantile (`0.0 < q <= 1.0`): the
    /// smallest bucket edge at or below which at least `ceil(q * count)`
    /// observations fall, or `None` when the histogram is empty or the
    /// quantile lands in the overflow bucket. Conservative (never
    /// under-reports), which is the right bias for latency SLO checks.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) || q == 0.0 {
            return None;
        }
        let rank = (q * to_f64(self.count)).ceil().max(1.0);
        let mut seen = 0.0;
        for bucket in &self.buckets {
            seen += to_f64(bucket.count);
            if seen >= rank {
                return Some(bucket.le);
            }
        }
        None
    }
}

/// One histogram bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Upper (inclusive) edge of the bucket, in display units.
    pub le: f64,
    /// Observations in `(previous edge, le]`.
    pub count: u64,
}

/// Per-class breakout of one service's counters: requests, sheds, queue
/// occupancy, and the latency histogram (from which per-class p99 is
/// read via [`HistogramSnapshot::quantile`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSnapshot {
    /// The traffic class.
    pub class: QosClass,
    /// Requests of this class served (success or failure).
    pub requests: u64,
    /// Requests of this class that succeeded.
    pub successes: u64,
    /// Requests of this class shed by the admission layer.
    pub shed: u64,
    /// Requests of this class waiting in the admission queue (gauge).
    pub queue_depth: u64,
    /// High-water mark of this class's queue depth.
    pub queue_peak: u64,
    /// Latency histogram of this class's served requests (milliseconds).
    pub latency_ms: HistogramSnapshot,
}

/// Snapshot of one service's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    /// Service id.
    pub service: String,
    /// Service requests served (success or failure).
    pub invocations: u64,
    /// Requests that succeeded (under quorum: that reached agreement).
    pub successes: u64,
    /// Requests served under an active QoS advisory.
    pub advisories: u64,
    /// Quorum votes cast (successful invocations) across all requests.
    pub quorum_votes_cast: u64,
    /// Quorum votes received by each request's winning payload, summed.
    pub quorum_votes_agreed: u64,
    /// Slot re-plans performed.
    pub replans: u64,
    /// Re-plans served by a full cold synthesis run.
    #[serde(default)]
    pub plans_cold: u64,
    /// Re-plans served by a warm-started (incumbent-seeded) search.
    #[serde(default)]
    pub plans_warm_start: u64,
    /// Re-plans served straight from the plan cache.
    #[serde(default)]
    pub plans_cached: u64,
    /// Plan-cache lookups that hit (absolute gauge from the planner's
    /// cache, captured at the last re-plan).
    #[serde(default)]
    pub plan_cache_hits: u64,
    /// Plan-cache hits served from an entry another sharing view stored —
    /// e.g. a plan synthesized on a different gateway shard (absolute
    /// gauge; subset of `plan_cache_hits`).
    #[serde(default)]
    pub plan_cache_remote_hits: u64,
    /// Plan-cache lookups that missed (absolute gauge).
    #[serde(default)]
    pub plan_cache_misses: u64,
    /// Plan-cache entries dropped before reuse — capacity evictions plus
    /// invalidations on script eviction (absolute gauge).
    #[serde(default)]
    pub plan_cache_stale: u64,
    /// Re-plans that chose a different strategy than the previous slot.
    pub strategy_switches: u64,
    /// Slot boundaries that re-planned because the observed QoS drifted
    /// outside the active plan's quantization band (drift mode only).
    #[serde(default)]
    pub drift_replans: u64,
    /// Slot boundaries that held the active plan because the observed QoS
    /// stayed inside its quantization band (drift mode only).
    #[serde(default)]
    pub drift_holds: u64,
    /// Slot-planning failures.
    pub plan_failures: u64,
    /// Slot records evicted from the bounded history ring.
    pub history_evicted: u64,
    /// Requests shed by the admission layer (in-flight limit reached and
    /// queue full).
    #[serde(default)]
    pub requests_shed: u64,
    /// Requests whose deadline expired mid-execution.
    #[serde(default)]
    pub deadline_exceeded: u64,
    /// Requests waiting in the admission queue at snapshot time (gauge).
    #[serde(default)]
    pub admission_queue_depth: u64,
    /// High-water mark of the admission queue depth.
    #[serde(default)]
    pub admission_queue_peak: u64,
    /// Synthesis candidates estimated across all re-plans.
    pub candidates_seen: u64,
    /// Synthesis candidates pruned across all re-plans.
    pub candidates_pruned: u64,
    /// Total time spent in strategy generation.
    pub synthesis_elapsed: Duration,
    /// Live overrides applied via the gateway's control handle.
    #[serde(default)]
    pub overrides: u64,
    /// Request latency histogram (milliseconds).
    pub latency_ms: HistogramSnapshot,
    /// Request cost histogram (cost units).
    pub cost: HistogramSnapshot,
    /// Per-class breakout (one entry per [`QosClass`], priority order).
    /// Empty when deserializing pre-class snapshots.
    #[serde(default)]
    pub classes: Vec<ClassSnapshot>,
}

impl ServiceSnapshot {
    /// The per-class breakout for `class` (`None` on pre-class
    /// snapshots).
    #[must_use]
    pub fn class(&self, class: QosClass) -> Option<&ClassSnapshot> {
        self.classes.iter().find(|c| c.class == class)
    }
}

/// Snapshot of one provider's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderSnapshot {
    /// Provider id.
    pub provider: String,
    /// Microservice invocations executed on the provider.
    pub invocations: u64,
    /// Invocations that succeeded.
    pub successes: u64,
    /// Invocations that landed inside an active fault window.
    pub fault_window_hits: u64,
    /// Times the provider left the environment (device churn).
    #[serde(default)]
    pub departures: u64,
    /// Times the provider re-joined after leaving (device churn).
    #[serde(default)]
    pub rejoins: u64,
    /// Invocation latency histogram (milliseconds).
    pub latency_ms: HistogramSnapshot,
    /// Invocation cost histogram (cost units).
    pub cost: HistogramSnapshot,
}

/// Snapshot of market interactions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketSnapshot {
    /// Successful script fetches.
    pub fetches: u64,
    /// Failed script fetches (unknown service, I/O error).
    pub fetch_failures: u64,
    /// Total time spent fetching scripts.
    pub fetch_elapsed: Duration,
}

/// Snapshot of correlated-failure storm markers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StormSnapshot {
    /// Storms that began ([`EventKind::StormOnset`] markers).
    pub onsets: u64,
    /// Storms that ended ([`EventKind::StormRecovered`] markers).
    pub recoveries: u64,
}

/// Snapshot of the event ring's accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRingSnapshot {
    /// Events emitted since startup (including evicted ones).
    pub emitted: u64,
    /// Events evicted from the full ring.
    pub dropped: u64,
    /// Ring capacity.
    pub capacity: u64,
}

/// Gauges of the event-driven execution core: how many requests are in
/// flight and how much frame memory their walks are holding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Requests currently inside the engine.
    pub in_flight: u64,
    /// Live `Seq`/`Par` continuation frames across all in-flight requests.
    pub frames: u64,
    /// High-water mark of `frames` since startup.
    pub frames_peak: u64,
}

/// A serializable copy of every counter, histogram, and buffered event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Clock time the snapshot was taken.
    pub at: Duration,
    /// Per-service counters, sorted by service id.
    pub services: Vec<ServiceSnapshot>,
    /// Per-provider counters, sorted by provider id.
    pub providers: Vec<ProviderSnapshot>,
    /// Market interaction counters.
    pub market: MarketSnapshot,
    /// Correlated-failure storm markers.
    #[serde(default)]
    pub storms: StormSnapshot,
    /// Execution-core occupancy gauges.
    #[serde(default)]
    pub engine: EngineSnapshot,
    /// Event ring accounting.
    pub events: EventRingSnapshot,
    /// The events still buffered in the ring, oldest first.
    pub recent_events: Vec<TelemetryEvent>,
}

impl MetricsSnapshot {
    /// The snapshot of `service`, if it has been observed.
    #[must_use]
    pub fn service(&self, service: &str) -> Option<&ServiceSnapshot> {
        self.services.iter().find(|s| s.service == service)
    }

    /// The snapshot of `provider`, if it has been observed.
    #[must_use]
    pub fn provider(&self, provider: &str) -> Option<&ProviderSnapshot> {
        self.providers.iter().find(|p| p.provider == provider)
    }
}

type EventSink = Box<dyn Fn(&TelemetryEvent) + Send + Sync>;

/// The runtime's telemetry hub. One instance per [`Gateway`](crate::Gateway)
/// (shared via `Arc` with the executor, quorum executor, generator, and
/// fault-injection layers).
pub struct Telemetry {
    clock: Arc<dyn Clock>,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    events: Mutex<VecDeque<TelemetryEvent>>,
    services: RwLock<HashMap<String, Arc<ServiceMetrics>>>,
    providers: RwLock<HashMap<String, Arc<ProviderMetrics>>>,
    market_fetches: AtomicU64,
    market_fetch_failures: AtomicU64,
    market_fetch_micros: AtomicU64,
    storm_onsets: AtomicU64,
    storm_recoveries: AtomicU64,
    engine_in_flight: AtomicU64,
    engine_frames: AtomicU64,
    engine_frames_peak: AtomicU64,
    sink: RwLock<Option<EventSink>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("capacity", &self.capacity)
            .field("emitted", &self.seq.load(Ordering::Relaxed))
            .field("services", &self.services.read().len())
            .field("providers", &self.providers.read().len())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Creates a telemetry hub timing on `clock`, buffering up to
    /// `event_capacity` events.
    #[must_use]
    pub fn new(clock: Arc<dyn Clock>, event_capacity: usize) -> Arc<Self> {
        Arc::new(Telemetry {
            clock,
            capacity: event_capacity,
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            events: Mutex::new(VecDeque::new()),
            services: RwLock::new(HashMap::new()),
            providers: RwLock::new(HashMap::new()),
            market_fetches: AtomicU64::new(0),
            market_fetch_failures: AtomicU64::new(0),
            market_fetch_micros: AtomicU64::new(0),
            storm_onsets: AtomicU64::new(0),
            storm_recoveries: AtomicU64::new(0),
            engine_in_flight: AtomicU64::new(0),
            engine_frames: AtomicU64::new(0),
            engine_frames_peak: AtomicU64::new(0),
            sink: RwLock::new(None),
        })
    }

    fn service(&self, name: &str) -> Arc<ServiceMetrics> {
        if let Some(metrics) = self.services.read().get(name) {
            return Arc::clone(metrics);
        }
        let mut map = self.services.write();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(ServiceMetrics::new())),
        )
    }

    fn provider(&self, name: &str) -> Arc<ProviderMetrics> {
        if let Some(metrics) = self.providers.read().get(name) {
            return Arc::clone(metrics);
        }
        let mut map = self.providers.write();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(ProviderMetrics::new())),
        )
    }

    fn emit(&self, kind: EventKind) {
        let event = TelemetryEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            at: self.clock.now(),
            kind,
        };
        if let Some(sink) = self.sink.read().as_ref() {
            sink(&event);
        }
        if self.capacity == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut ring = self.events.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Installs a streaming event sink, called synchronously (before ring
    /// insertion) for every event — e.g. `qce run --trace` printing JSON
    /// lines. Replaces any previous sink.
    pub fn set_sink(&self, sink: impl Fn(&TelemetryEvent) + Send + Sync + 'static) {
        *self.sink.write() = Some(Box::new(sink));
    }

    /// Removes the streaming event sink, if any.
    pub fn clear_sink(&self) {
        *self.sink.write() = None;
    }

    /// Records a completed service request (gateway level), attributed to
    /// the request's traffic class.
    #[allow(clippy::too_many_arguments)]
    pub fn record_request(
        &self,
        service: &str,
        class: QosClass,
        success: bool,
        latency: Duration,
        cost: f64,
        advisory: bool,
        votes: Option<(usize, usize)>,
    ) {
        let metrics = self.service(service);
        metrics.invocations.fetch_add(1, Ordering::Relaxed);
        if success {
            metrics.successes.fetch_add(1, Ordering::Relaxed);
        }
        if advisory {
            metrics.advisories.fetch_add(1, Ordering::Relaxed);
        }
        if let Some((agreed, cast)) = votes {
            metrics
                .quorum_votes_agreed
                .fetch_add(agreed as u64, Ordering::Relaxed);
            metrics
                .quorum_votes_cast
                .fetch_add(cast as u64, Ordering::Relaxed);
        }
        metrics.latency.record(micros(latency));
        metrics.cost.record(milli_cost(cost));
        let per_class = metrics.class(class);
        per_class.requests.fetch_add(1, Ordering::Relaxed);
        if success {
            per_class.successes.fetch_add(1, Ordering::Relaxed);
        }
        per_class.latency.record(micros(latency));
    }

    /// Records one microservice invocation on a provider (executor level).
    pub fn record_invocation(&self, provider: &str, success: bool, latency: Duration, cost: f64) {
        let metrics = self.provider(provider);
        metrics.invocations.fetch_add(1, Ordering::Relaxed);
        if success {
            metrics.successes.fetch_add(1, Ordering::Relaxed);
        }
        metrics.latency.record(micros(latency));
        metrics.cost.record(milli_cost(cost));
    }

    /// A request entered the execution core.
    pub fn record_engine_request_start(&self) {
        self.engine_in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// A request left the execution core (resolved or shut down).
    pub fn record_engine_request_end(&self) {
        self.engine_in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// The core allocated one `Seq`/`Par` continuation frame.
    pub fn record_engine_frame(&self) {
        let frames = self.engine_frames.fetch_add(1, Ordering::Relaxed) + 1;
        self.engine_frames_peak.fetch_max(frames, Ordering::Relaxed);
    }

    /// A resolved request released its `frames` continuation frames.
    pub fn record_engine_frames_done(&self, frames: usize) {
        self.engine_frames
            .fetch_sub(frames as u64, Ordering::Relaxed);
    }

    /// Records the generator's search effort for one re-plan of `service`
    /// (called by [`plan_slot`](crate::plan_slot)).
    pub fn record_synthesis(&self, service: &str, report: &SynthesisReport) {
        let metrics = self.service(service);
        metrics
            .candidates_seen
            .fetch_add(report.candidates_seen, Ordering::Relaxed);
        metrics
            .candidates_pruned
            .fetch_add(report.candidates_pruned, Ordering::Relaxed);
        metrics
            .synthesis_micros
            .fetch_add(micros(report.elapsed), Ordering::Relaxed);
    }

    /// Records a successful slot re-plan, emitting a
    /// [`EventKind::SlotReplanned`] event (and a
    /// [`EventKind::StrategySwitched`] event when the strategy text changed
    /// from the previous slot's).
    pub fn record_replan(
        &self,
        service: &str,
        slot: u64,
        origin: &str,
        strategy_text: &str,
        report: Option<&SynthesisReport>,
        source: Option<PlanSource>,
    ) {
        let metrics = self.service(service);
        metrics.replans.fetch_add(1, Ordering::Relaxed);
        match source {
            Some(PlanSource::Cold) => metrics.plans_cold.fetch_add(1, Ordering::Relaxed),
            Some(PlanSource::WarmStart) => metrics.plans_warm_start.fetch_add(1, Ordering::Relaxed),
            Some(PlanSource::Cached) => metrics.plans_cached.fetch_add(1, Ordering::Relaxed),
            None => 0,
        };
        let previous = {
            let mut last = metrics.last_strategy.lock();
            last.replace(strategy_text.to_string())
        };
        let default = SynthesisReport::default();
        let report = report.copied().unwrap_or(default);
        self.emit(EventKind::SlotReplanned {
            service: service.to_string(),
            slot,
            origin: origin.to_string(),
            strategy: strategy_text.to_string(),
            candidates_seen: report.candidates_seen,
            candidates_pruned: report.candidates_pruned,
            elapsed: report.elapsed,
            source,
        });
        if let Some(previous) = previous {
            if previous != strategy_text {
                metrics.strategy_switches.fetch_add(1, Ordering::Relaxed);
                self.emit(EventKind::StrategySwitched {
                    service: service.to_string(),
                    slot,
                    from: previous,
                    to: strategy_text.to_string(),
                });
            }
        }
    }

    /// Records a drift-triggered re-plan decision at a slot boundary,
    /// emitting an [`EventKind::ReplanTriggered`] event (counter first,
    /// so accounting stays gap-free under ring overflow).
    pub fn record_drift_trigger(&self, service: &str, slot: u64, drift: f64) {
        self.service(service)
            .drift_replans
            .fetch_add(1, Ordering::Relaxed);
        self.emit(EventKind::ReplanTriggered {
            service: service.to_string(),
            slot,
            drift,
        });
    }

    /// Records a slot boundary that held its plan because the observed
    /// QoS stayed inside the active plan's quantization band.
    pub fn record_drift_hold(&self, service: &str) {
        self.service(service)
            .drift_holds
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records the `auto` planner's bandit choosing a search backend for
    /// one re-plan, emitting an [`EventKind::BackendChosen`] event.
    pub fn record_backend_choice(
        &self,
        service: &str,
        slot: u64,
        arm: &str,
        pulls: u64,
        mean: f64,
    ) {
        self.emit(EventKind::BackendChosen {
            service: service.to_string(),
            slot,
            arm: arm.to_string(),
            pulls,
            mean,
        });
    }

    /// Records a failed slot plan, emitting
    /// [`EventKind::ProviderResolutionFailed`] for missing providers and
    /// [`EventKind::PlanFailed`] for everything else.
    pub fn record_plan_failure(&self, service: &str, slot: u64, error: &RuntimeError) {
        self.service(service)
            .plan_failures
            .fetch_add(1, Ordering::Relaxed);
        match error {
            RuntimeError::NoProvider { capability } => {
                self.emit(EventKind::ProviderResolutionFailed {
                    service: service.to_string(),
                    slot,
                    capability: capability.clone(),
                });
            }
            other => self.emit(EventKind::PlanFailed {
                service: service.to_string(),
                slot,
                reason: other.to_string(),
            }),
        }
    }

    /// Records the current state of a service planner's plan cache. The
    /// values are absolute gauges (the cache owns the authoritative
    /// counters), so this *stores* rather than accumulates.
    pub fn record_plan_cache(&self, service: &str, stats: &PlanCacheStats) {
        let metrics = self.service(service);
        metrics.plan_cache_hits.store(stats.hits, Ordering::Relaxed);
        metrics
            .plan_cache_remote_hits
            .store(stats.remote_hits, Ordering::Relaxed);
        metrics
            .plan_cache_misses
            .store(stats.misses, Ordering::Relaxed);
        metrics
            .plan_cache_stale
            .store(stats.stale, Ordering::Relaxed);
    }

    /// Records slot records evicted from a service's bounded history.
    pub fn record_history_evicted(&self, service: &str, evicted: u64) {
        self.service(service)
            .history_evicted
            .fetch_add(evicted, Ordering::Relaxed);
    }

    /// Records a shed request (admission queue full), emitting an
    /// [`EventKind::RequestShed`] event. The counter is incremented before
    /// the event enters the ring, so shed accounting stays gap-free even
    /// when ring overflow drops the event itself.
    pub fn record_shed(&self, service: &str, class: QosClass, in_flight: u64, queued: u64) {
        let metrics = self.service(service);
        metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
        metrics.class(class).shed.fetch_add(1, Ordering::Relaxed);
        self.emit(EventKind::RequestShed {
            service: service.to_string(),
            class,
            in_flight,
            queued,
        });
    }

    /// Records a request whose deadline expired mid-execution, emitting an
    /// [`EventKind::DeadlineExceeded`] event (counter first, same gap-free
    /// guarantee as [`record_shed`](Self::record_shed)).
    pub fn record_deadline_exceeded(&self, service: &str, request_id: u64, class: QosClass) {
        self.service(service)
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
        self.emit(EventKind::DeadlineExceeded {
            service: service.to_string(),
            request_id,
            class,
        });
    }

    /// Records the admission queue depth of `service` (absolute gauge),
    /// tracking the high-water mark.
    pub fn record_admission_queue(&self, service: &str, depth: u64) {
        let metrics = self.service(service);
        metrics
            .admission_queue_depth
            .store(depth, Ordering::Relaxed);
        metrics
            .admission_queue_peak
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// Records one class's admission queue depth for `service` (absolute
    /// gauge), tracking the per-class high-water mark.
    pub fn record_class_queue_depth(&self, service: &str, class: QosClass, depth: u64) {
        let metrics = self.service(service);
        let per_class = metrics.class(class);
        per_class.queue_depth.store(depth, Ordering::Relaxed);
        per_class.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a live override applied through the gateway's control
    /// handle, emitting exactly one [`EventKind::OverrideApplied`] event
    /// (counter first, same gap-free guarantee as
    /// [`record_shed`](Self::record_shed)).
    pub fn record_override(&self, service: &str, field: &str, value: &str) {
        self.service(service)
            .overrides
            .fetch_add(1, Ordering::Relaxed);
        self.emit(EventKind::OverrideApplied {
            service: service.to_string(),
            field: field.to_string(),
            value: value.to_string(),
        });
    }

    /// Records a market script fetch.
    pub fn record_market_fetch(&self, elapsed: Duration, success: bool) {
        if success {
            self.market_fetches.fetch_add(1, Ordering::Relaxed);
        } else {
            self.market_fetch_failures.fetch_add(1, Ordering::Relaxed);
        }
        self.market_fetch_micros
            .fetch_add(micros(elapsed), Ordering::Relaxed);
    }

    /// Records an invocation landing inside a provider's active fault
    /// window, emitting an [`EventKind::FaultWindowHit`] event.
    pub fn record_fault_window(&self, provider: &str, fault: &str) {
        self.provider(provider)
            .fault_window_hits
            .fetch_add(1, Ordering::Relaxed);
        self.emit(EventKind::FaultWindowHit {
            provider: provider.to_string(),
            fault: fault.to_string(),
        });
    }

    /// Records the onset of a correlated-failure storm, emitting an
    /// [`EventKind::StormOnset`] event (counter first, same gap-free
    /// guarantee as [`record_shed`](Self::record_shed)).
    pub fn record_storm_onset(&self, storm: &str, providers: &[String]) {
        self.storm_onsets.fetch_add(1, Ordering::Relaxed);
        self.emit(EventKind::StormOnset {
            storm: storm.to_string(),
            providers: providers.to_vec(),
        });
    }

    /// Records the end of a correlated-failure storm, emitting an
    /// [`EventKind::StormRecovered`] event. Adaptation lag is measured
    /// from this marker.
    pub fn record_storm_recovered(&self, storm: &str, providers: &[String]) {
        self.storm_recoveries.fetch_add(1, Ordering::Relaxed);
        self.emit(EventKind::StormRecovered {
            storm: storm.to_string(),
            providers: providers.to_vec(),
        });
    }

    /// Records a provider leaving the environment (device churn), emitting
    /// an [`EventKind::ProviderLeft`] event.
    pub fn record_provider_left(&self, provider: &str) {
        self.provider(provider)
            .departures
            .fetch_add(1, Ordering::Relaxed);
        self.emit(EventKind::ProviderLeft {
            provider: provider.to_string(),
        });
    }

    /// Records a provider re-joining the environment (device churn),
    /// emitting an [`EventKind::ProviderRejoined`] event.
    pub fn record_provider_rejoined(&self, provider: &str) {
        self.provider(provider)
            .rejoins
            .fetch_add(1, Ordering::Relaxed);
        self.emit(EventKind::ProviderRejoined {
            provider: provider.to_string(),
        });
    }

    /// The events currently buffered in the ring, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events.lock().iter().cloned().collect()
    }

    /// Copies every counter, histogram, and buffered event into a
    /// serializable [`MetricsSnapshot`]. Services and providers are sorted
    /// by id, so snapshots are deterministic.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut services: Vec<ServiceSnapshot> = self
            .services
            .read()
            .iter()
            .map(|(name, m)| ServiceSnapshot {
                service: name.clone(),
                invocations: m.invocations.load(Ordering::Relaxed),
                successes: m.successes.load(Ordering::Relaxed),
                advisories: m.advisories.load(Ordering::Relaxed),
                quorum_votes_cast: m.quorum_votes_cast.load(Ordering::Relaxed),
                quorum_votes_agreed: m.quorum_votes_agreed.load(Ordering::Relaxed),
                replans: m.replans.load(Ordering::Relaxed),
                plans_cold: m.plans_cold.load(Ordering::Relaxed),
                plans_warm_start: m.plans_warm_start.load(Ordering::Relaxed),
                plans_cached: m.plans_cached.load(Ordering::Relaxed),
                plan_cache_hits: m.plan_cache_hits.load(Ordering::Relaxed),
                plan_cache_remote_hits: m.plan_cache_remote_hits.load(Ordering::Relaxed),
                plan_cache_misses: m.plan_cache_misses.load(Ordering::Relaxed),
                plan_cache_stale: m.plan_cache_stale.load(Ordering::Relaxed),
                strategy_switches: m.strategy_switches.load(Ordering::Relaxed),
                drift_replans: m.drift_replans.load(Ordering::Relaxed),
                drift_holds: m.drift_holds.load(Ordering::Relaxed),
                plan_failures: m.plan_failures.load(Ordering::Relaxed),
                history_evicted: m.history_evicted.load(Ordering::Relaxed),
                requests_shed: m.requests_shed.load(Ordering::Relaxed),
                deadline_exceeded: m.deadline_exceeded.load(Ordering::Relaxed),
                admission_queue_depth: m.admission_queue_depth.load(Ordering::Relaxed),
                admission_queue_peak: m.admission_queue_peak.load(Ordering::Relaxed),
                candidates_seen: m.candidates_seen.load(Ordering::Relaxed),
                candidates_pruned: m.candidates_pruned.load(Ordering::Relaxed),
                synthesis_elapsed: Duration::from_micros(
                    m.synthesis_micros.load(Ordering::Relaxed),
                ),
                overrides: m.overrides.load(Ordering::Relaxed),
                latency_ms: m.latency.snapshot(1000.0),
                cost: m.cost.snapshot(1000.0),
                classes: QosClass::ALL
                    .iter()
                    .map(|&class| {
                        let c = m.class(class);
                        ClassSnapshot {
                            class,
                            requests: c.requests.load(Ordering::Relaxed),
                            successes: c.successes.load(Ordering::Relaxed),
                            shed: c.shed.load(Ordering::Relaxed),
                            queue_depth: c.queue_depth.load(Ordering::Relaxed),
                            queue_peak: c.queue_peak.load(Ordering::Relaxed),
                            latency_ms: c.latency.snapshot(1000.0),
                        }
                    })
                    .collect(),
            })
            .collect();
        services.sort_by(|a, b| a.service.cmp(&b.service));

        let mut providers: Vec<ProviderSnapshot> = self
            .providers
            .read()
            .iter()
            .map(|(name, m)| ProviderSnapshot {
                provider: name.clone(),
                invocations: m.invocations.load(Ordering::Relaxed),
                successes: m.successes.load(Ordering::Relaxed),
                fault_window_hits: m.fault_window_hits.load(Ordering::Relaxed),
                departures: m.departures.load(Ordering::Relaxed),
                rejoins: m.rejoins.load(Ordering::Relaxed),
                latency_ms: m.latency.snapshot(1000.0),
                cost: m.cost.snapshot(1000.0),
            })
            .collect();
        providers.sort_by(|a, b| a.provider.cmp(&b.provider));

        MetricsSnapshot {
            at: self.clock.now(),
            services,
            providers,
            market: MarketSnapshot {
                fetches: self.market_fetches.load(Ordering::Relaxed),
                fetch_failures: self.market_fetch_failures.load(Ordering::Relaxed),
                fetch_elapsed: Duration::from_micros(
                    self.market_fetch_micros.load(Ordering::Relaxed),
                ),
            },
            storms: StormSnapshot {
                onsets: self.storm_onsets.load(Ordering::Relaxed),
                recoveries: self.storm_recoveries.load(Ordering::Relaxed),
            },
            engine: EngineSnapshot {
                in_flight: self.engine_in_flight.load(Ordering::Relaxed),
                frames: self.engine_frames.load(Ordering::Relaxed),
                frames_peak: self.engine_frames_peak.load(Ordering::Relaxed),
            },
            events: EventRingSnapshot {
                emitted: self.seq.load(Ordering::Relaxed),
                dropped: self.dropped.load(Ordering::Relaxed),
                capacity: self.capacity as u64,
            },
            recent_events: self.events(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{VirtualClock, WallClock};

    fn telemetry(capacity: usize) -> (Arc<VirtualClock>, Arc<Telemetry>) {
        let clock = Arc::new(VirtualClock::new());
        let t = Telemetry::new(Arc::clone(&clock) as Arc<dyn Clock>, capacity);
        (clock, t)
    }

    #[test]
    fn request_counters_accumulate() {
        let (_, t) = telemetry(8);
        t.record_request(
            "svc",
            QosClass::Interactive,
            true,
            Duration::from_millis(3),
            50.0,
            false,
            None,
        );
        t.record_request(
            "svc",
            QosClass::Bulk,
            false,
            Duration::from_millis(7),
            150.0,
            true,
            Some((2, 3)),
        );
        let snap = t.snapshot();
        let svc = snap.service("svc").unwrap();
        assert_eq!(svc.invocations, 2);
        assert_eq!(svc.successes, 1);
        assert_eq!(svc.advisories, 1);
        assert_eq!(svc.quorum_votes_agreed, 2);
        assert_eq!(svc.quorum_votes_cast, 3);
        assert_eq!(svc.latency_ms.count, 2);
        assert!((svc.latency_ms.sum - 10.0).abs() < 1e-9);
        assert!((svc.cost.sum - 200.0).abs() < 1e-9);
        let interactive = svc.class(QosClass::Interactive).unwrap();
        assert_eq!(interactive.requests, 1);
        assert_eq!(interactive.successes, 1);
        let bulk = svc.class(QosClass::Bulk).unwrap();
        assert_eq!(bulk.requests, 1);
        assert_eq!(bulk.successes, 0);
        assert_eq!(svc.class(QosClass::Critical).unwrap().requests, 0);
    }

    #[test]
    fn shed_and_deadline_counters_survive_ring_overflow() {
        // Ring of 2 slots, 10 + 5 events: 13 events evicted, but the
        // per-service counters must stay gap-free because the counter is
        // incremented before the event enters the ring.
        let (_, t) = telemetry(2);
        for i in 0..10 {
            t.record_shed("svc", QosClass::Scavenger, 4, i);
        }
        for i in 0..5 {
            t.record_deadline_exceeded("svc", i, QosClass::Interactive);
        }
        let snap = t.snapshot();
        let svc = snap.service("svc").unwrap();
        assert_eq!(svc.requests_shed, 10);
        assert_eq!(svc.deadline_exceeded, 5);
        assert_eq!(svc.class(QosClass::Scavenger).unwrap().shed, 10);
        assert_eq!(svc.class(QosClass::Critical).unwrap().shed, 0);
        assert_eq!(snap.events.emitted, 15);
        assert_eq!(snap.events.dropped, 13);
        assert_eq!(snap.recent_events.len(), 2);
    }

    #[test]
    fn admission_queue_gauge_tracks_peak() {
        let (_, t) = telemetry(4);
        t.record_admission_queue("svc", 3);
        t.record_admission_queue("svc", 7);
        t.record_admission_queue("svc", 1);
        let snap = t.snapshot();
        let svc = snap.service("svc").unwrap();
        assert_eq!(svc.admission_queue_depth, 1, "gauge holds the last value");
        assert_eq!(svc.admission_queue_peak, 7, "peak is the high-water mark");
    }

    #[test]
    fn invocation_counters_accumulate_per_provider() {
        let (_, t) = telemetry(8);
        t.record_invocation("d1/x", true, Duration::from_millis(2), 10.0);
        t.record_invocation("d1/x", false, Duration::from_millis(4), 10.0);
        t.record_invocation("d2/y", true, Duration::from_millis(1), 5.0);
        let snap = t.snapshot();
        assert_eq!(snap.providers.len(), 2);
        // Sorted by id.
        assert_eq!(snap.providers[0].provider, "d1/x");
        assert_eq!(snap.providers[0].invocations, 2);
        assert_eq!(snap.providers[0].successes, 1);
        assert_eq!(snap.provider("d2/y").unwrap().invocations, 1);
    }

    #[test]
    fn histogram_buckets_by_latency() {
        let h = Histogram::new(&LATENCY_EDGES_US);
        h.record(500); // ≤ 1 ms
        h.record(1_500); // ≤ 2 ms
        h.record(2_000_000); // overflow (> 1 s)
        let snap = h.snapshot(1000.0);
        assert_eq!(snap.count, 3);
        assert_eq!(snap.buckets[0].count, 1);
        assert_eq!(snap.buckets[1].count, 1);
        assert_eq!(snap.overflow, 1);
        assert!((snap.buckets[0].le - 1.0).abs() < 1e-9, "edges in ms");
    }

    /// Regression test: a saturated raw observation (`micros` clamps
    /// out-of-range durations to `u64::MAX`) must not wrap the running sum
    /// — pre-fix, `fetch_add` left `sum` at `raw − 1` after one more
    /// sample, silently losing every accumulated count.
    #[test]
    fn saturated_observation_does_not_wrap_the_sum() {
        let h = Histogram::new(&LATENCY_EDGES_US);
        h.record(1_000);
        h.record(u64::MAX); // e.g. a Duration beyond u64 microseconds
        h.record(1_000);
        let snap = h.snapshot(1000.0);
        assert_eq!(snap.count, 3, "every sample is counted");
        assert_eq!(snap.overflow, 1, "the saturated sample lands in overflow");
        assert!(
            snap.sum >= to_f64(u64::MAX) / 1000.0,
            "sum must saturate, not wrap: {}",
            snap.sum
        );
    }

    /// An out-of-range sample must survive a snapshot serde round-trip
    /// intact: counted, summed (saturating), and in the overflow bucket.
    #[test]
    fn out_of_range_sample_round_trips_through_snapshot() {
        let (_, t) = telemetry(4);
        // 1 hour ≫ the 1 s top latency edge; cost 5000 ≫ the 2000 top edge.
        t.record_request(
            "svc",
            QosClass::Interactive,
            true,
            Duration::from_secs(3600),
            5_000.0,
            false,
            None,
        );
        let snap = t.snapshot();
        let svc = snap.service("svc").unwrap();
        assert_eq!(svc.latency_ms.count, 1);
        assert_eq!(svc.latency_ms.overflow, 1);
        assert!(svc.latency_ms.buckets.iter().all(|b| b.count == 0));
        assert_eq!(svc.cost.overflow, 1);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let back_svc = back.service("svc").unwrap();
        assert_eq!(back_svc.latency_ms.overflow, 1);
        assert!((back_svc.latency_ms.sum - 3_600_000.0).abs() < 1e-6);
    }

    /// Plan provenance counters accumulate per source, and the cache
    /// gauges store absolute values.
    #[test]
    fn plan_source_counters_and_cache_gauges() {
        let (_, t) = telemetry(8);
        t.record_replan("svc", 0, "default", "a*b", None, None);
        t.record_replan("svc", 1, "generated", "a-b", None, Some(PlanSource::Cold));
        t.record_replan(
            "svc",
            2,
            "generated",
            "a-b",
            None,
            Some(PlanSource::WarmStart),
        );
        t.record_replan("svc", 3, "generated", "a-b", None, Some(PlanSource::Cached));
        t.record_replan("svc", 4, "generated", "a-b", None, Some(PlanSource::Cached));
        let stats = PlanCacheStats {
            hits: 2,
            remote_hits: 1,
            misses: 3,
            stale: 1,
            entries: 3,
        };
        t.record_plan_cache("svc", &stats);
        t.record_plan_cache("svc", &stats); // stores, must not double
        let snap = t.snapshot();
        let svc = snap.service("svc").unwrap();
        assert_eq!(svc.replans, 5);
        assert_eq!(svc.plans_cold, 1);
        assert_eq!(svc.plans_warm_start, 1);
        assert_eq!(svc.plans_cached, 2);
        assert_eq!(svc.plan_cache_hits, 2);
        assert_eq!(svc.plan_cache_remote_hits, 1);
        assert_eq!(svc.plan_cache_misses, 3);
        assert_eq!(svc.plan_cache_stale, 1);
        // The event stream carries the provenance too.
        let sources: Vec<_> = snap
            .recent_events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::SlotReplanned { source, .. } => Some(*source),
                _ => None,
            })
            .collect();
        assert_eq!(
            sources,
            vec![
                None,
                Some(PlanSource::Cold),
                Some(PlanSource::WarmStart),
                Some(PlanSource::Cached),
                Some(PlanSource::Cached),
            ]
        );
    }

    #[test]
    fn replan_detects_strategy_switches() {
        let (_, t) = telemetry(8);
        t.record_replan("svc", 0, "default", "a*b", None, None);
        let report = SynthesisReport {
            candidates_seen: 10,
            candidates_pruned: 3,
            elapsed: Duration::from_micros(250),
        };
        t.record_replan(
            "svc",
            1,
            "generated(exhaustive)",
            "a-b",
            Some(&report),
            Some(PlanSource::Cold),
        );
        t.record_replan(
            "svc",
            2,
            "generated(exhaustive)",
            "a-b",
            Some(&report),
            Some(PlanSource::WarmStart),
        );
        let snap = t.snapshot();
        let svc = snap.service("svc").unwrap();
        assert_eq!(svc.replans, 3);
        assert_eq!(svc.strategy_switches, 1, "a*b → a-b, then unchanged");
        let switches: Vec<_> = snap
            .recent_events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::StrategySwitched { .. }))
            .collect();
        assert_eq!(switches.len(), 1);
        match &switches[0].kind {
            EventKind::StrategySwitched { from, to, slot, .. } => {
                assert_eq!(from, "a*b");
                assert_eq!(to, "a-b");
                assert_eq!(*slot, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn replan_event_carries_synthesis_report() {
        let (_, t) = telemetry(8);
        let report = SynthesisReport {
            candidates_seen: 42,
            candidates_pruned: 7,
            elapsed: Duration::from_micros(99),
        };
        t.record_replan(
            "svc",
            1,
            "generated(exhaustive)",
            "a-b",
            Some(&report),
            Some(PlanSource::Cold),
        );
        match &t.events()[0].kind {
            EventKind::SlotReplanned {
                candidates_seen,
                candidates_pruned,
                elapsed,
                ..
            } => {
                assert_eq!(*candidates_seen, 42);
                assert_eq!(*candidates_pruned, 7);
                assert_eq!(*elapsed, Duration::from_micros(99));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn plan_failure_distinguishes_missing_provider() {
        let (_, t) = telemetry(8);
        t.record_plan_failure(
            "svc",
            3,
            &RuntimeError::NoProvider {
                capability: "read-temp".into(),
            },
        );
        t.record_plan_failure(
            "svc",
            4,
            &RuntimeError::Generation {
                reason: "boom".into(),
            },
        );
        let events = t.events();
        assert!(matches!(
            &events[0].kind,
            EventKind::ProviderResolutionFailed { capability, .. } if capability == "read-temp"
        ));
        assert!(matches!(
            &events[1].kind,
            EventKind::PlanFailed { reason, .. } if reason.contains("boom")
        ));
        assert_eq!(t.snapshot().service("svc").unwrap().plan_failures, 2);
    }

    #[test]
    fn event_ring_is_bounded_and_counts_drops() {
        let (_, t) = telemetry(2);
        for i in 0..5 {
            t.record_fault_window(&format!("d{i}"), "crash");
        }
        let snap = t.snapshot();
        assert_eq!(snap.recent_events.len(), 2);
        assert_eq!(snap.events.emitted, 5);
        assert_eq!(snap.events.dropped, 3);
        assert_eq!(snap.events.capacity, 2);
        // The ring keeps the newest events.
        assert_eq!(snap.recent_events[0].seq, 3);
        assert_eq!(snap.recent_events[1].seq, 4);
    }

    #[test]
    fn events_are_stamped_with_clock_time() {
        let (clock, t) = telemetry(8);
        clock.advance(Duration::from_millis(25));
        t.record_fault_window("d", "latency");
        assert_eq!(t.events()[0].at, Duration::from_millis(25));
    }

    #[test]
    fn sink_sees_every_event_even_when_ring_drops() {
        use std::sync::atomic::AtomicUsize;
        let (_, t) = telemetry(1);
        let seen = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&seen);
        t.set_sink(move |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        for _ in 0..4 {
            t.record_fault_window("d", "crash");
        }
        assert_eq!(seen.load(Ordering::Relaxed), 4);
        t.clear_sink();
        t.record_fault_window("d", "crash");
        assert_eq!(seen.load(Ordering::Relaxed), 4, "sink removed");
    }

    #[test]
    fn snapshot_serializes_and_round_trips() {
        let (_, t) = telemetry(4);
        t.record_request(
            "svc",
            QosClass::Critical,
            true,
            Duration::from_millis(3),
            50.0,
            false,
            None,
        );
        t.record_invocation("d/x", true, Duration::from_millis(2), 25.0);
        t.record_replan("svc", 0, "default", "a*b", None, None);
        t.record_market_fetch(Duration::from_millis(1), true);
        let snap = t.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"svc\""));
        assert!(json.contains("SlotReplanned"));
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn storm_and_churn_markers_accumulate_and_round_trip() {
        let (_, t) = telemetry(8);
        let group = vec!["d0/c0".to_string(), "d1/c1".to_string()];
        t.record_storm_onset("radio", &group);
        t.record_provider_left("d0/c0");
        t.record_provider_rejoined("d0/c0");
        t.record_storm_recovered("radio", &group);
        let snap = t.snapshot();
        assert_eq!(snap.storms.onsets, 1);
        assert_eq!(snap.storms.recoveries, 1);
        let p = snap.provider("d0/c0").unwrap();
        assert_eq!(p.departures, 1);
        assert_eq!(p.rejoins, 1);
        assert!(matches!(
            snap.recent_events[0].kind,
            EventKind::StormOnset { ref storm, ref providers }
                if storm == "radio" && providers.len() == 2
        ));
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn zero_capacity_ring_still_counts() {
        let (_, t) = telemetry(0);
        t.record_fault_window("d", "crash");
        let snap = t.snapshot();
        assert!(snap.recent_events.is_empty());
        assert_eq!(snap.events.emitted, 1);
        assert_eq!(snap.events.dropped, 1);
    }

    #[test]
    fn market_counters_accumulate() {
        let (_, t) = telemetry(4);
        t.record_market_fetch(Duration::from_millis(2), true);
        t.record_market_fetch(Duration::from_millis(3), false);
        let market = t.snapshot().market;
        assert_eq!(market.fetches, 1);
        assert_eq!(market.fetch_failures, 1);
        assert_eq!(market.fetch_elapsed, Duration::from_millis(5));
    }

    #[test]
    fn works_on_wall_clock_too() {
        let t = Telemetry::new(Arc::new(WallClock::new()), 4);
        t.record_request(
            "svc",
            QosClass::Interactive,
            true,
            Duration::from_millis(1),
            1.0,
            false,
            None,
        );
        assert_eq!(t.snapshot().service("svc").unwrap().invocations, 1);
    }

    #[test]
    fn class_queue_gauges_and_overrides_accumulate() {
        let (_, t) = telemetry(4);
        t.record_class_queue_depth("svc", QosClass::Bulk, 2);
        t.record_class_queue_depth("svc", QosClass::Bulk, 5);
        t.record_class_queue_depth("svc", QosClass::Bulk, 1);
        t.record_override("svc", "class", "critical");
        let snap = t.snapshot();
        let svc = snap.service("svc").unwrap();
        let bulk = svc.class(QosClass::Bulk).unwrap();
        assert_eq!(bulk.queue_depth, 1, "gauge holds the last value");
        assert_eq!(bulk.queue_peak, 5, "peak is the high-water mark");
        assert_eq!(svc.overrides, 1);
        assert!(matches!(
            &snap.recent_events[0].kind,
            EventKind::OverrideApplied { service, field, value }
                if service == "svc" && field == "class" && value == "critical"
        ));
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn histogram_quantile_reads_upper_edges() {
        let h = Histogram::new(&LATENCY_EDGES_US);
        for _ in 0..99 {
            h.record(900); // ≤ 1 ms
        }
        h.record(40_000); // ≤ 50 ms
        let snap = h.snapshot(1000.0);
        assert_eq!(snap.quantile(0.5), Some(1.0), "median in the 1 ms bucket");
        assert_eq!(snap.quantile(0.99), Some(1.0));
        assert_eq!(snap.quantile(1.0), Some(50.0), "max in the 50 ms bucket");
        assert_eq!(snap.quantile(0.0), None);
        let empty = Histogram::new(&LATENCY_EDGES_US).snapshot(1000.0);
        assert_eq!(empty.quantile(0.99), None);
    }

    /// Pre-class events (no `class` field) must still deserialize, with
    /// the class defaulting to Interactive.
    #[test]
    fn pre_class_shed_event_deserializes_with_default_class() {
        let json = r#"{"seq":0,"at":{"secs":0,"nanos":0},
            "kind":{"RequestShed":{"service":"svc","in_flight":1,"queued":0}}}"#;
        let event: TelemetryEvent = serde_json::from_str(json).unwrap();
        assert!(matches!(
            event.kind,
            EventKind::RequestShed {
                class: QosClass::Interactive,
                ..
            }
        ));
    }
}

//! One gateway shard of a [`GatewayFleet`](super::GatewayFleet).

use std::sync::Arc;

use crate::engine::EngineStats;
use crate::gateway::Gateway;
use crate::market::{MarketCacheStats, TtlMarket};

/// A fleet member: one [`Gateway`] plus the TTL script-cache front it
/// reads the shared market through. Obtained from
/// [`GatewayFleet::shard`](super::GatewayFleet::shard); hold it to reach
/// the shard's registry, telemetry, or control plane directly.
#[derive(Debug)]
pub struct GatewayShard {
    pub(super) id: u32,
    pub(super) gateway: Arc<Gateway>,
    pub(super) market: Arc<TtlMarket>,
}

/// Counter snapshot of one shard, from [`GatewayShard::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ShardStats {
    /// The shard's fleet-assigned id.
    pub id: u32,
    /// Requests currently in flight on the shard's event core.
    pub in_flight: usize,
    /// Live continuation frames on the shard's event core.
    pub frames_live: usize,
    /// The shard's script-cache counters.
    pub market: MarketCacheStats,
}

impl GatewayShard {
    /// The shard's fleet-assigned id (stable across membership changes —
    /// ids are never reused while the fleet lives).
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The shard's gateway.
    #[must_use]
    pub fn gateway(&self) -> &Arc<Gateway> {
        &self.gateway
    }

    /// The shard's TTL script-cache front over the fleet's shared market.
    #[must_use]
    pub fn market(&self) -> &Arc<TtlMarket> {
        &self.market
    }

    /// Engine occupancy of the shard's event core.
    #[must_use]
    pub fn engine_stats(&self) -> EngineStats {
        self.gateway.engine_stats()
    }

    /// Counter snapshot of the shard: engine occupancy plus script-cache
    /// hit economics.
    #[must_use]
    pub fn stats(&self) -> ShardStats {
        let engine = self.gateway.engine_stats();
        ShardStats {
            id: self.id,
            in_flight: engine.in_flight,
            frames_live: engine.frames_live,
            market: self.market.cache_stats(),
        }
    }
}

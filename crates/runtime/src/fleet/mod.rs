//! A sharded gateway fleet behind a consistent-hash service router.
//!
//! One gateway scales to one edge site; a *fleet* is how the paper's
//! design scales past it without giving up QoS consistency. The fleet
//! owns `N` [`Gateway`] shards and routes every request by its service id
//! over a stable hash ring ([`ServiceRouter`]): each service is planned
//! and slot-accounted on exactly one shard (the feedback loop stays
//! coherent), membership changes move only `~1/N` of the services, and
//! three cross-shard amortization channels keep the shards from paying
//! `N×` for shared state:
//!
//! * **scripts** — every shard fronts the one cloud market with its own
//!   read-through [`TtlMarket`] cache, so script updates propagate within
//!   one TTL and repeat fetches stay local;
//! * **plans** — all shards' planners share one [`PlanCacheHub`] store,
//!   so a strategy synthesized on shard A is a warm
//!   [`PlanSource::Cached`](qce_strategy::PlanSource) hit on shard B when
//!   B sees the same quantized environment (attributed as a *remote* hit
//!   in telemetry, so the cross-shard economics are measurable);
//! * **providers** — registrations replay onto every shard, so routing a
//!   service elsewhere never strands its devices.
//!
//! ```
//! use std::sync::Arc;
//! use qce_runtime::fleet::{FleetConfig, GatewayFleet};
//! use qce_runtime::{InMemoryMarket, Market};
//!
//! let backend: Arc<dyn Market> = Arc::new(InMemoryMarket::new());
//! let fleet = GatewayFleet::new(backend, FleetConfig::default());
//! assert_eq!(fleet.stats().shards, 4);
//! ```

mod router;
mod shard;

pub use router::ServiceRouter;
pub use shard::{GatewayShard, ShardStats};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use qce_strategy::{PlanCacheConfig, PlanCacheHub, PlanCacheStats};

use crate::clock::{Clock, WallClock};
use crate::device::Provider;
use crate::gateway::{Gateway, GatewayConfig, RequestHandle, ServiceResponse};
use crate::market::{Market, MarketCacheStats, TtlMarket};
use crate::message::RuntimeError;
use crate::request::Request;

/// Fleet-level configuration. Construct with `FleetConfig::default()` and
/// override fields; per-shard behaviour is the embedded [`GatewayConfig`].
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct FleetConfig {
    /// Shards spawned at construction.
    pub shards: usize,
    /// Virtual nodes each shard contributes to the hash ring.
    pub vnodes: usize,
    /// Time-to-live of each shard's script cache (`ZERO` = never expire).
    pub script_ttl: Duration,
    /// Share one plan-cache store across all shards (requires
    /// [`GatewayConfig::plan_cache`]; `false` keeps per-shard caches).
    pub share_plans: bool,
    /// Capacity of the shared plan store — global across every shard and
    /// service, so it should be sized well above one gateway's
    /// [`GatewayConfig::plan_cache_capacity`].
    pub plan_capacity: usize,
    /// Configuration applied to every shard's gateway.
    pub gateway: GatewayConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            vnodes: 64,
            script_ttl: Duration::from_secs(60),
            share_plans: true,
            plan_capacity: 4096,
            gateway: GatewayConfig::default(),
        }
    }
}

/// Generates fluent setters: the struct is `#[non_exhaustive]`, so
/// out-of-crate callers build one as
/// `FleetConfig::default().shards(8).share_plans(false)`.
macro_rules! fleet_config_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),* $(,)?) => {
        impl FleetConfig {
            $(
                $(#[$doc])*
                #[must_use]
                pub fn $field(mut self, $field: $ty) -> Self {
                    self.$field = $field;
                    self
                }
            )*
        }
    };
}

fleet_config_setters! {
    /// Sets the number of shards spawned at construction.
    shards: usize,
    /// Sets the virtual nodes each shard contributes to the hash ring.
    vnodes: usize,
    /// Sets the time-to-live of each shard's script cache.
    script_ttl: Duration,
    /// Enables/disables the fleet-shared plan-cache store.
    share_plans: bool,
    /// Sets the capacity of the shared plan store.
    plan_capacity: usize,
    /// Sets the configuration applied to every shard's gateway.
    gateway: GatewayConfig,
}

/// Aggregate counter snapshot of a fleet, from [`GatewayFleet::stats`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct FleetStats {
    /// Current member shards.
    pub shards: usize,
    /// Shared plan-store totals (hits/remote hits/misses across every
    /// shard); all-zero when plan sharing is off.
    pub plan_cache: PlanCacheStats,
    /// Script-cache counters summed over the member shards.
    pub market: MarketCacheStats,
    /// Per-shard breakdown, ascending by shard id.
    pub per_shard: Vec<ShardStats>,
}

/// `N` gateway shards behind a consistent-hash service router, sharing
/// one market backend and (optionally) one plan-cache store. See the
/// [module docs](self) for the design.
pub struct GatewayFleet {
    config: FleetConfig,
    clock: Arc<dyn Clock>,
    backend: Arc<dyn Market>,
    hub: Option<Arc<PlanCacheHub>>,
    router: RwLock<ServiceRouter>,
    shards: RwLock<BTreeMap<u32, Arc<GatewayShard>>>,
    next_shard: AtomicU32,
    /// Every provider ever registered, replayed onto shards that join
    /// later so rebalanced services find their devices.
    providers: Mutex<Vec<Arc<dyn Provider>>>,
}

impl std::fmt::Debug for GatewayFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayFleet")
            .field("config", &self.config)
            .field("shards", &self.shard_ids())
            .finish_non_exhaustive()
    }
}

impl GatewayFleet {
    /// Creates a fleet of [`FleetConfig::shards`] gateways over `backend`,
    /// running on real time.
    #[must_use]
    pub fn new(backend: Arc<dyn Market>, config: FleetConfig) -> Self {
        GatewayFleet::with_clock(backend, config, Arc::new(WallClock::new()))
    }

    /// As [`GatewayFleet::new`], but every shard, script cache, and
    /// provider latency runs on `clock` — pass a shared
    /// [`VirtualClock`](crate::VirtualClock) for deterministic tests and
    /// benches.
    #[must_use]
    pub fn with_clock(
        backend: Arc<dyn Market>,
        config: FleetConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let hub = (config.share_plans && config.gateway.plan_cache).then(|| {
            Arc::new(PlanCacheHub::new(PlanCacheConfig {
                capacity: config.plan_capacity,
                quantum: config.gateway.plan_quantize,
            }))
        });
        let fleet = GatewayFleet {
            config,
            clock,
            backend,
            hub,
            router: RwLock::new(ServiceRouter::new(config.vnodes)),
            shards: RwLock::new(BTreeMap::new()),
            next_shard: AtomicU32::new(0),
            providers: Mutex::new(Vec::new()),
        };
        for _ in 0..config.shards {
            fleet.add_shard();
        }
        fleet
    }

    /// Spawns one more shard, replays every known provider onto it, and
    /// adds it to the ring (moving `~1/N` of the services to it). Returns
    /// the new shard's id. Services moving here re-fetch their script
    /// through this shard's cache and re-plan — warm from the shared plan
    /// store when sharing is on.
    pub fn add_shard(&self) -> u32 {
        let id = self.next_shard.fetch_add(1, Ordering::Relaxed);
        let market = Arc::new(TtlMarket::new(
            Arc::clone(&self.backend),
            self.config.script_ttl,
            Arc::clone(&self.clock),
        ));
        let gateway = Arc::new(Gateway::with_clock(
            Box::new(Arc::clone(&market)),
            self.config.gateway,
            Arc::clone(&self.clock),
        ));
        if let Some(hub) = &self.hub {
            gateway.set_plan_hub(Arc::clone(hub));
        }
        for provider in self.providers.lock().iter() {
            gateway.registry().register(Arc::clone(provider));
        }
        let shard = Arc::new(GatewayShard {
            id,
            gateway,
            market,
        });
        // Insert the shard before publishing it on the ring so a racing
        // `submit` never routes to an id it cannot resolve.
        self.shards.write().insert(id, shard);
        self.router.write().add_shard(id);
        id
    }

    /// Evicts a shard: removes it from the ring (its services
    /// redistribute over the survivors) and drops the fleet's handle to
    /// its gateway. In-flight requests on the evicted shard resolve
    /// normally — the gateway shuts down only once the last outstanding
    /// handle lets go of it. Returns `false` if `id` is not a member.
    pub fn remove_shard(&self, id: u32) -> bool {
        // Unpublish from the ring first: a racing `submit` must not route
        // a fresh request to a shard mid-teardown.
        let routed = self.router.write().remove_shard(id);
        let shard = self.shards.write().remove(&id);
        routed && shard.is_some()
    }

    /// Registers a provider on every current shard and remembers it for
    /// shards that join later.
    pub fn register(&self, provider: Arc<dyn Provider>) {
        self.providers.lock().push(Arc::clone(&provider));
        for shard in self.shards.read().values() {
            shard.gateway.registry().register(Arc::clone(&provider));
        }
    }

    /// The shard currently owning `service_id`, or `None` on an empty
    /// fleet.
    #[must_use]
    pub fn route(&self, service_id: &str) -> Option<u32> {
        self.router.read().route(service_id)
    }

    /// The shard with this id, if it is a member.
    #[must_use]
    pub fn shard(&self, id: u32) -> Option<Arc<GatewayShard>> {
        self.shards.read().get(&id).cloned()
    }

    /// Member shard ids, ascending.
    #[must_use]
    pub fn shard_ids(&self) -> Vec<u32> {
        self.shards.read().keys().copied().collect()
    }

    /// Member shards, ascending by id.
    #[must_use]
    pub fn shards(&self) -> Vec<Arc<GatewayShard>> {
        self.shards.read().values().cloned().collect()
    }

    /// The fleet's shared clock.
    #[must_use]
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Routes `request` to its service's shard and submits it, blocking
    /// until the response.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Market`] when the fleet has no shards; otherwise as
    /// [`Gateway::submit`].
    pub fn submit(&self, request: Request) -> Result<ServiceResponse, RuntimeError> {
        self.owner(request.service())?.gateway.submit(request)
    }

    /// Routes `request` to its service's shard and submits it
    /// asynchronously.
    ///
    /// # Errors
    ///
    /// As [`GatewayFleet::submit`].
    pub fn submit_async(&self, request: Request) -> Result<RequestHandle, RuntimeError> {
        self.owner(request.service())?.gateway.submit_async(request)
    }

    /// Force-closes the service's current time slot on its owning shard
    /// (no-op on an empty fleet or an unknown service).
    pub fn end_slot(&self, service_id: &str) {
        if let Ok(shard) = self.owner(service_id) {
            shard.gateway.end_slot(service_id);
        }
    }

    /// Aggregate counters: shared plan-store totals, summed script-cache
    /// economics, and the per-shard breakdown.
    #[must_use]
    pub fn stats(&self) -> FleetStats {
        let per_shard: Vec<ShardStats> = self
            .shards
            .read()
            .values()
            .map(|shard| shard.stats())
            .collect();
        let market = per_shard
            .iter()
            .fold(MarketCacheStats::default(), |sum, s| MarketCacheStats {
                hits: sum.hits + s.market.hits,
                misses: sum.misses + s.market.misses,
                expired: sum.expired + s.market.expired,
            });
        FleetStats {
            shards: per_shard.len(),
            plan_cache: self.hub.as_ref().map(|hub| hub.stats()).unwrap_or_default(),
            market,
            per_shard,
        }
    }

    fn owner(&self, service_id: &str) -> Result<Arc<GatewayShard>, RuntimeError> {
        let id = self
            .router
            .read()
            .route(service_id)
            .ok_or_else(|| RuntimeError::Market {
                reason: "fleet has no shards".to_string(),
            })?;
        self.shard(id).ok_or_else(|| RuntimeError::Market {
            reason: format!("shard {id} left the fleet mid-route"),
        })
    }
}

//! Consistent-hash service routing for a gateway fleet.
//!
//! Each shard contributes a configurable number of *virtual nodes* to a
//! hash ring; a service id is owned by the shard whose first virtual node
//! follows the id's hash clockwise. The placement is a pure function of
//! the shard ids and the virtual-node count — no RNG, no insertion-order
//! dependence — so two routers built from the same membership route
//! identically (the replay-determinism property the fleet bench gates
//! on), and adding or removing one of `N` shards moves only `~K/N` of `K`
//! services.

/// 64-bit FNV-1a with a murmur3 finalizer: tiny, dependency-free, and
/// stable across platforms and releases — ring placement is part of the
/// fleet's replay contract, so `std`'s randomized `DefaultHasher` is
/// unusable here. The finalizer matters: raw FNV-1a leaves the high bits
/// of similar short keys (`svc-0`, `svc-1`, …) clustered, which skews the
/// ring badly; the avalanche pass spreads them uniformly.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^ (hash >> 33)
}

/// A consistent-hash ring mapping service ids to shard ids.
///
/// # Examples
///
/// ```
/// use qce_runtime::fleet::ServiceRouter;
///
/// let mut router = ServiceRouter::new(64);
/// router.add_shard(0);
/// router.add_shard(1);
/// let owner = router.route("read-temp").unwrap();
/// assert_eq!(router.route("read-temp"), Some(owner), "routing is stable");
/// ```
#[derive(Debug, Clone)]
pub struct ServiceRouter {
    vnodes: usize,
    /// `(ring point, shard id)`, sorted by point. Point collisions between
    /// shards resolve to the smaller shard id (the sort's second key), so
    /// even that corner is membership-deterministic.
    ring: Vec<(u64, u32)>,
    shards: Vec<u32>,
}

impl ServiceRouter {
    /// Creates an empty ring where every shard contributes `vnodes`
    /// virtual nodes (`0` is treated as `1`). More virtual nodes smooth
    /// the load split between shards at the cost of a larger ring.
    #[must_use]
    pub fn new(vnodes: usize) -> Self {
        ServiceRouter {
            vnodes: vnodes.max(1),
            ring: Vec::new(),
            shards: Vec::new(),
        }
    }

    /// The configured virtual nodes per shard.
    #[must_use]
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Member shard ids, ascending.
    #[must_use]
    pub fn shards(&self) -> &[u32] {
        &self.shards
    }

    /// Number of member shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` when no shard is a member.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Adds `shard` to the ring; returns `false` (and changes nothing) if
    /// it is already a member. Only services whose arc the new shard's
    /// virtual nodes split move to it — everything else keeps its owner.
    pub fn add_shard(&mut self, shard: u32) -> bool {
        if self.shards.contains(&shard) {
            return false;
        }
        self.shards.push(shard);
        self.shards.sort_unstable();
        self.ring.extend(Self::points(shard, self.vnodes));
        self.ring.sort_unstable();
        true
    }

    /// Removes `shard` from the ring; returns `false` if it was not a
    /// member. Its services redistribute to the shards owning the next
    /// points clockwise; nothing else moves.
    pub fn remove_shard(&mut self, shard: u32) -> bool {
        if !self.shards.contains(&shard) {
            return false;
        }
        self.shards.retain(|&s| s != shard);
        self.ring.retain(|&(_, s)| s != shard);
        true
    }

    /// The shard owning `service_id`, or `None` on an empty ring.
    #[must_use]
    pub fn route(&self, service_id: &str) -> Option<u32> {
        if self.ring.is_empty() {
            return None;
        }
        let point = fnv1a(service_id.as_bytes());
        // First virtual node at or after the service's point, wrapping
        // past the top of the ring to the first node.
        let at = self.ring.partition_point(|&(p, _)| p < point);
        let (_, shard) = self.ring[at % self.ring.len()];
        Some(shard)
    }

    fn points(shard: u32, vnodes: usize) -> impl Iterator<Item = (u64, u32)> {
        (0..vnodes).map(move |v| (fnv1a(format!("shard-{shard}#vnode-{v}").as_bytes()), shard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("service-{i}")).collect()
    }

    fn assignment(router: &ServiceRouter, keys: &[String]) -> HashMap<String, u32> {
        keys.iter()
            .map(|k| (k.clone(), router.route(k).unwrap()))
            .collect()
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let router = ServiceRouter::new(16);
        assert!(router.is_empty());
        assert_eq!(router.route("svc"), None);
    }

    #[test]
    fn single_shard_owns_everything() {
        let mut router = ServiceRouter::new(16);
        assert!(router.add_shard(7));
        assert!(!router.add_shard(7), "re-adding is a no-op");
        for key in keys(100) {
            assert_eq!(router.route(&key), Some(7));
        }
    }

    #[test]
    fn removing_the_last_shard_empties_the_ring() {
        let mut router = ServiceRouter::new(16);
        router.add_shard(0);
        assert!(router.remove_shard(0));
        assert!(!router.remove_shard(0));
        assert_eq!(router.route("svc"), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Two routers built from the same membership — in any insertion
        /// order — route every key identically: placement is a pure
        /// function of membership.
        #[test]
        fn routing_is_membership_deterministic(
            mask in 1u32..65536,
            seed in any::<u64>(),
        ) {
            // Membership derived from the mask's set bits: 1–16 distinct
            // shard ids, already ascending.
            let shards: Vec<u32> = (0..16).filter(|b| mask & (1 << b) != 0).collect();
            let mut forward = ServiceRouter::new(32);
            for &s in &shards {
                forward.add_shard(s);
            }
            let mut scrambled = ServiceRouter::new(32);
            let mut order = shards.clone();
            // Deterministic scramble: rotate by the seed.
            let pivot = (seed as usize) % order.len();
            order.rotate_left(pivot);
            for &s in order.iter().rev() {
                scrambled.add_shard(s);
            }
            for key in keys(200) {
                prop_assert_eq!(forward.route(&key), scrambled.route(&key));
            }
        }

        /// Adding a shard to an `N`-shard ring moves roughly `K/(N+1)` of
        /// `K` keys — and every moved key moves *to* the new shard.
        #[test]
        fn join_moves_about_one_nth_and_only_to_the_joiner(n in 1usize..9) {
            let keys = keys(2000);
            let mut router = ServiceRouter::new(64);
            for s in 0..n as u32 {
                router.add_shard(s);
            }
            let before = assignment(&router, &keys);
            let joiner = n as u32;
            router.add_shard(joiner);
            let after = assignment(&router, &keys);

            let mut moved = 0usize;
            for key in &keys {
                if before[key] != after[key] {
                    prop_assert_eq!(
                        after[key], joiner,
                        "a key moved between old shards on join"
                    );
                    moved += 1;
                }
            }
            let expected = keys.len() / (n + 1);
            // Virtual-node placement is statistical; allow a wide band
            // around K/(N+1) while still ruling out "all keys moved"
            // (naive mod-N hashing) and "no keys moved".
            prop_assert!(
                moved > expected / 4 && moved < expected * 3,
                "moved {} of {}, expected ~{}",
                moved, keys.len(), expected
            );
        }

        /// Removing a shard strands only its own keys: survivors' keys
        /// keep their owner.
        #[test]
        fn leave_moves_only_the_leavers_keys(n in 2usize..9, leaver in 0u32..9) {
            let leaver = leaver % n as u32;
            let keys = keys(2000);
            let mut router = ServiceRouter::new(64);
            for s in 0..n as u32 {
                router.add_shard(s);
            }
            let before = assignment(&router, &keys);
            router.remove_shard(leaver);
            let after = assignment(&router, &keys);
            for key in &keys {
                if before[key] == leaver {
                    prop_assert!(after[key] != leaver, "a key stayed on the evicted shard");
                } else {
                    prop_assert_eq!(before[key], after[key], "a surviving key moved");
                }
            }
        }

        /// A shard that leaves and rejoins restores the original routing
        /// exactly — membership, not history, decides placement.
        #[test]
        fn leave_then_rejoin_restores_routing(n in 2usize..7, who in 0u32..7) {
            let who = who % n as u32;
            let keys = keys(500);
            let mut router = ServiceRouter::new(32);
            for s in 0..n as u32 {
                router.add_shard(s);
            }
            let before = assignment(&router, &keys);
            router.remove_shard(who);
            router.add_shard(who);
            prop_assert_eq!(before, assignment(&router, &keys));
        }
    }
}

//! The cloud-based service market (paper Section IV.A).
//!
//! Gateways download self-describing service scripts from a market and
//! cache them locally, so that "if a recently executed service is invoked
//! again, the request can be processed entirely within the edge's local
//! environment, without needing to interact with the cloud."

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use crate::clock::{Clock, WallClock};
use crate::message::RuntimeError;
use crate::script::ServiceScript;

/// A source of service scripts.
pub trait Market: Send + Sync {
    /// Fetches the script for `service_id`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownService`] when the market has no such
    /// script, or [`RuntimeError::Market`] on transport problems.
    fn fetch(&self, service_id: &str) -> Result<ServiceScript, RuntimeError>;

    /// Lists the available service ids (diagnostic use).
    fn service_ids(&self) -> Vec<String>;
}

impl std::fmt::Debug for dyn Market {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Market")
            .field("services", &self.service_ids())
            .finish()
    }
}

/// An in-memory market, optionally with an artificial fetch latency to
/// emulate the cloud round-trip.
///
/// # Examples
///
/// ```
/// use qce_runtime::{InMemoryMarket, Market, MsSpec, ServiceScript};
/// use qce_strategy::{Qos, Requirements};
///
/// let script = ServiceScript::new(
///     "svc",
///     vec![MsSpec {
///         name: "m".into(),
///         capability: "cap".into(),
///         prior: Qos::new(1.0, 1.0, 0.9)?,
///     }],
///     Requirements::new(10.0, 10.0, 0.5)?,
/// );
/// let market = InMemoryMarket::new();
/// market.publish(script.clone())?;
/// assert_eq!(market.fetch("svc")?, script);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct InMemoryMarket {
    scripts: RwLock<HashMap<String, ServiceScript>>,
    fetch_latency: Duration,
    fetches: AtomicU64,
    clock: Arc<dyn Clock>,
}

impl Default for InMemoryMarket {
    fn default() -> Self {
        InMemoryMarket {
            scripts: RwLock::new(HashMap::new()),
            fetch_latency: Duration::ZERO,
            fetches: AtomicU64::new(0),
            clock: Arc::new(WallClock::new()),
        }
    }
}

impl InMemoryMarket {
    /// Creates an empty market with no artificial latency.
    #[must_use]
    pub fn new() -> Self {
        InMemoryMarket::default()
    }

    /// Creates a market whose fetches block for `latency`, emulating the
    /// cloud round-trip that local caching avoids.
    #[must_use]
    pub fn with_latency(latency: Duration) -> Self {
        InMemoryMarket {
            fetch_latency: latency,
            ..InMemoryMarket::default()
        }
    }

    /// As [`InMemoryMarket::with_latency`], but the round-trip sleeps on
    /// `clock` — pass a shared [`VirtualClock`](crate::VirtualClock) for
    /// deterministic tests.
    #[must_use]
    pub fn with_latency_and_clock(latency: Duration, clock: Arc<dyn Clock>) -> Self {
        InMemoryMarket {
            fetch_latency: latency,
            clock,
            ..InMemoryMarket::default()
        }
    }

    /// Publishes (or replaces) a script.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidScript`] if the script fails
    /// validation.
    pub fn publish(&self, script: ServiceScript) -> Result<(), RuntimeError> {
        script.validate()?;
        self.scripts
            .write()
            .insert(script.service_id.clone(), script);
        Ok(())
    }

    /// Number of fetches served so far.
    #[must_use]
    pub fn fetch_count(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }
}

impl Market for InMemoryMarket {
    fn fetch(&self, service_id: &str) -> Result<ServiceScript, RuntimeError> {
        // Resolve first: only a fetch that actually downloads a script pays
        // the cloud round-trip (an unknown id is answered from the market's
        // index without shipping anything), and the latency must never
        // block the caller beyond the configured clock's time.
        let script = self
            .scripts
            .read()
            .get(service_id)
            .cloned()
            .ok_or_else(|| RuntimeError::UnknownService {
                service_id: service_id.to_string(),
            })?;
        if !self.fetch_latency.is_zero() {
            self.clock.sleep(self.fetch_latency);
        }
        self.fetches.fetch_add(1, Ordering::Relaxed);
        Ok(script)
    }

    fn service_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.scripts.read().keys().cloned().collect();
        ids.sort();
        ids
    }
}

/// A market backed by a directory of `<service_id>.json` script files —
/// the self-describing scripts a real deployment would host.
#[derive(Debug)]
pub struct FileMarket {
    root: PathBuf,
}

impl FileMarket {
    /// Creates a market rooted at `dir` (created on publish if missing).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FileMarket { root: dir.into() }
    }

    /// Writes a script to `<root>/<service_id>.json`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidScript`] if validation fails or
    /// [`RuntimeError::Market`] on I/O problems.
    pub fn publish(&self, script: &ServiceScript) -> Result<(), RuntimeError> {
        script.validate()?;
        std::fs::create_dir_all(&self.root).map_err(|e| RuntimeError::Market {
            reason: e.to_string(),
        })?;
        let path = self.root.join(format!("{}.json", script.service_id));
        std::fs::write(&path, script.to_json()).map_err(|e| RuntimeError::Market {
            reason: e.to_string(),
        })
    }
}

impl Market for FileMarket {
    fn fetch(&self, service_id: &str) -> Result<ServiceScript, RuntimeError> {
        let path = self.root.join(format!("{service_id}.json"));
        let json = std::fs::read_to_string(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                RuntimeError::UnknownService {
                    service_id: service_id.to_string(),
                }
            } else {
                RuntimeError::Market {
                    reason: e.to_string(),
                }
            }
        })?;
        ServiceScript::from_json(&json)
    }

    fn service_ids(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut ids: Vec<String> = entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.strip_suffix(".json").map(str::to_string)
            })
            .collect();
        ids.sort();
        ids
    }
}

/// Wraps any market with a local script cache: the first fetch goes to the
/// backing market, later fetches are served locally (the gateway behaviour
/// described in Section IV.A).
#[derive(Debug)]
pub struct CachingMarket<M> {
    inner: M,
    cache: RwLock<HashMap<String, ServiceScript>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<M: Market> CachingMarket<M> {
    /// Wraps `inner` with an empty cache.
    #[must_use]
    pub fn new(inner: M) -> Self {
        CachingMarket {
            inner,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// `(cache hits, cache misses)` so far.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drops every cached script (e.g. to force re-download after a market
    /// update).
    pub fn invalidate(&self) {
        self.cache.write().clear();
    }

    /// A reference to the backing market.
    #[must_use]
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Market> Market for CachingMarket<M> {
    fn fetch(&self, service_id: &str) -> Result<ServiceScript, RuntimeError> {
        if let Some(script) = self.cache.read().get(service_id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(script.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let script = self.inner.fetch(service_id)?;
        self.cache
            .write()
            .insert(service_id.to_string(), script.clone());
        Ok(script)
    }

    fn service_ids(&self) -> Vec<String> {
        self.inner.service_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::MsSpec;
    use qce_strategy::{Qos, Requirements};

    fn script(id: &str) -> ServiceScript {
        ServiceScript::new(
            id,
            vec![MsSpec {
                name: "m".to_string(),
                capability: "cap".to_string(),
                prior: Qos::new(1.0, 1.0, 0.9).unwrap(),
            }],
            Requirements::new(10.0, 10.0, 0.5).unwrap(),
        )
    }

    #[test]
    fn in_memory_publish_and_fetch() {
        let market = InMemoryMarket::new();
        market.publish(script("a")).unwrap();
        market.publish(script("b")).unwrap();
        assert_eq!(market.fetch("a").unwrap().service_id, "a");
        assert_eq!(market.fetch("b").unwrap().service_id, "b");
        assert_eq!(market.service_ids(), vec!["a".to_string(), "b".to_string()]);
        assert!(matches!(
            market.fetch("zzz"),
            Err(RuntimeError::UnknownService { .. })
        ));
        assert_eq!(market.fetch_count(), 2, "failed fetches are not counted");
    }

    #[test]
    fn in_memory_rejects_invalid_scripts() {
        let market = InMemoryMarket::new();
        let mut bad = script("a");
        bad.slot_size = 0;
        assert!(market.publish(bad).is_err());
    }

    #[test]
    fn fetch_latency_is_applied() {
        let clock = Arc::new(crate::clock::VirtualClock::new());
        let market = InMemoryMarket::with_latency_and_clock(
            Duration::from_millis(20),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        market.publish(script("a")).unwrap();
        market.fetch("a").unwrap();
        assert_eq!(clock.now(), Duration::from_millis(20));
    }

    #[test]
    fn unknown_service_does_not_pay_the_round_trip() {
        let clock = Arc::new(crate::clock::VirtualClock::new());
        let market = InMemoryMarket::with_latency_and_clock(
            Duration::from_millis(20),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        assert!(market.fetch("nope").is_err());
        assert_eq!(clock.now(), Duration::ZERO, "no script, no round-trip");
        assert_eq!(market.fetch_count(), 0);
    }

    #[test]
    fn file_market_round_trip() {
        let dir = std::env::temp_dir().join(format!("qce-market-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let market = FileMarket::new(&dir);
        market.publish(&script("filed")).unwrap();
        let fetched = market.fetch("filed").unwrap();
        assert_eq!(fetched.service_id, "filed");
        assert_eq!(market.service_ids(), vec!["filed".to_string()]);
        assert!(matches!(
            market.fetch("absent"),
            Err(RuntimeError::UnknownService { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_market_empty_dir_lists_nothing() {
        let market = FileMarket::new("/nonexistent/qce-market");
        assert!(market.service_ids().is_empty());
    }

    #[test]
    fn caching_market_hits_after_first_fetch() {
        let inner = InMemoryMarket::new();
        inner.publish(script("a")).unwrap();
        let caching = CachingMarket::new(inner);
        caching.fetch("a").unwrap();
        caching.fetch("a").unwrap();
        caching.fetch("a").unwrap();
        assert_eq!(caching.cache_stats(), (2, 1));
        assert_eq!(caching.inner().fetch_count(), 1, "cloud contacted once");
        caching.invalidate();
        caching.fetch("a").unwrap();
        assert_eq!(caching.cache_stats(), (2, 2));
    }

    #[test]
    fn caching_market_propagates_errors_without_caching_them() {
        let caching = CachingMarket::new(InMemoryMarket::new());
        assert!(caching.fetch("nope").is_err());
        assert!(caching.fetch("nope").is_err());
        assert_eq!(caching.cache_stats(), (0, 2));
    }

    #[test]
    fn market_trait_object_debug() {
        let market = InMemoryMarket::new();
        market.publish(script("a")).unwrap();
        let obj: &dyn Market = &market;
        assert!(format!("{obj:?}").contains('a'));
    }
}

//! The cloud-based service market (paper Section IV.A).
//!
//! Gateways download self-describing service scripts from a market and
//! cache them locally, so that "if a recently executed service is invoked
//! again, the request can be processed entirely within the edge's local
//! environment, without needing to interact with the cloud."

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use crate::clock::{Clock, WallClock};
use crate::message::RuntimeError;
use crate::script::ServiceScript;

/// A source of service scripts.
pub trait Market: Send + Sync {
    /// Fetches the script for `service_id`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownService`] when the market has no such
    /// script, or [`RuntimeError::Market`] on transport problems.
    fn fetch(&self, service_id: &str) -> Result<ServiceScript, RuntimeError>;

    /// Lists the available service ids (diagnostic use).
    fn service_ids(&self) -> Vec<String>;
}

impl std::fmt::Debug for dyn Market {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Market")
            .field("services", &self.service_ids())
            .finish()
    }
}

/// A shared market handle is itself a market — this is what lets one
/// cloud-backed market sit behind many gateway shards (each shard's
/// [`TtlMarket`] keeps an `Arc` to the common backend), and what lets a
/// fleet hand each [`Gateway`](crate::Gateway) a `Box<dyn Market>` view of
/// a [`TtlMarket`] it still holds for stats.
impl<M: Market + ?Sized> Market for Arc<M> {
    fn fetch(&self, service_id: &str) -> Result<ServiceScript, RuntimeError> {
        (**self).fetch(service_id)
    }

    fn service_ids(&self) -> Vec<String> {
        (**self).service_ids()
    }
}

/// An in-memory market, optionally with an artificial fetch latency to
/// emulate the cloud round-trip.
///
/// # Examples
///
/// ```
/// use qce_runtime::{InMemoryMarket, Market, MsSpec, ServiceScript};
/// use qce_strategy::{Qos, Requirements};
///
/// let script = ServiceScript::new(
///     "svc",
///     vec![MsSpec {
///         name: "m".into(),
///         capability: "cap".into(),
///         prior: Qos::new(1.0, 1.0, 0.9)?,
///     }],
///     Requirements::new(10.0, 10.0, 0.5)?,
/// );
/// let market = InMemoryMarket::new();
/// market.publish(script.clone())?;
/// assert_eq!(market.fetch("svc")?, script);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct InMemoryMarket {
    scripts: RwLock<HashMap<String, ServiceScript>>,
    fetch_latency: Duration,
    fetches: AtomicU64,
    clock: Arc<dyn Clock>,
}

impl Default for InMemoryMarket {
    fn default() -> Self {
        InMemoryMarket {
            scripts: RwLock::new(HashMap::new()),
            fetch_latency: Duration::ZERO,
            fetches: AtomicU64::new(0),
            clock: Arc::new(WallClock::new()),
        }
    }
}

impl InMemoryMarket {
    /// Creates an empty market with no artificial latency.
    #[must_use]
    pub fn new() -> Self {
        InMemoryMarket::default()
    }

    /// Creates a market whose fetches block for `latency`, emulating the
    /// cloud round-trip that local caching avoids.
    #[must_use]
    pub fn with_latency(latency: Duration) -> Self {
        InMemoryMarket {
            fetch_latency: latency,
            ..InMemoryMarket::default()
        }
    }

    /// As [`InMemoryMarket::with_latency`], but the round-trip sleeps on
    /// `clock` — pass a shared [`VirtualClock`](crate::VirtualClock) for
    /// deterministic tests.
    #[must_use]
    pub fn with_latency_and_clock(latency: Duration, clock: Arc<dyn Clock>) -> Self {
        InMemoryMarket {
            fetch_latency: latency,
            clock,
            ..InMemoryMarket::default()
        }
    }

    /// Publishes (or replaces) a script.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidScript`] if the script fails
    /// validation.
    pub fn publish(&self, script: ServiceScript) -> Result<(), RuntimeError> {
        script.validate()?;
        self.scripts
            .write()
            .insert(script.service_id.clone(), script);
        Ok(())
    }

    /// Number of fetches served so far.
    #[must_use]
    pub fn fetch_count(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }
}

impl Market for InMemoryMarket {
    fn fetch(&self, service_id: &str) -> Result<ServiceScript, RuntimeError> {
        // Resolve first: only a fetch that actually downloads a script pays
        // the cloud round-trip (an unknown id is answered from the market's
        // index without shipping anything), and the latency must never
        // block the caller beyond the configured clock's time.
        let script = self
            .scripts
            .read()
            .get(service_id)
            .cloned()
            .ok_or_else(|| RuntimeError::UnknownService {
                service_id: service_id.to_string(),
            })?;
        if !self.fetch_latency.is_zero() {
            self.clock.sleep(self.fetch_latency);
        }
        self.fetches.fetch_add(1, Ordering::Relaxed);
        Ok(script)
    }

    fn service_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.scripts.read().keys().cloned().collect();
        ids.sort();
        ids
    }
}

/// A market backed by a directory of `<service_id>.json` script files —
/// the self-describing scripts a real deployment would host.
#[derive(Debug)]
pub struct FileMarket {
    root: PathBuf,
}

impl FileMarket {
    /// Creates a market rooted at `dir` (created on publish if missing).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FileMarket { root: dir.into() }
    }

    /// Writes a script to `<root>/<service_id>.json`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidScript`] if validation fails or
    /// [`RuntimeError::Market`] on I/O problems.
    pub fn publish(&self, script: &ServiceScript) -> Result<(), RuntimeError> {
        script.validate()?;
        std::fs::create_dir_all(&self.root).map_err(|e| RuntimeError::Market {
            reason: e.to_string(),
        })?;
        let path = self.root.join(format!("{}.json", script.service_id));
        std::fs::write(&path, script.to_json()).map_err(|e| RuntimeError::Market {
            reason: e.to_string(),
        })
    }
}

impl Market for FileMarket {
    fn fetch(&self, service_id: &str) -> Result<ServiceScript, RuntimeError> {
        let path = self.root.join(format!("{service_id}.json"));
        let json = std::fs::read_to_string(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                RuntimeError::UnknownService {
                    service_id: service_id.to_string(),
                }
            } else {
                RuntimeError::Market {
                    reason: e.to_string(),
                }
            }
        })?;
        ServiceScript::from_json(&json)
    }

    fn service_ids(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut ids: Vec<String> = entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.strip_suffix(".json").map(str::to_string)
            })
            .collect();
        ids.sort();
        ids
    }
}

/// Wraps any market with a local script cache: the first fetch goes to the
/// backing market, later fetches are served locally (the gateway behaviour
/// described in Section IV.A).
#[derive(Debug)]
pub struct CachingMarket<M> {
    inner: M,
    cache: RwLock<HashMap<String, ServiceScript>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<M: Market> CachingMarket<M> {
    /// Wraps `inner` with an empty cache.
    #[must_use]
    pub fn new(inner: M) -> Self {
        CachingMarket {
            inner,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// `(cache hits, cache misses)` so far.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drops every cached script (e.g. to force re-download after a market
    /// update).
    pub fn invalidate(&self) {
        self.cache.write().clear();
    }

    /// A reference to the backing market.
    #[must_use]
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Market> Market for CachingMarket<M> {
    fn fetch(&self, service_id: &str) -> Result<ServiceScript, RuntimeError> {
        if let Some(script) = self.cache.read().get(service_id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(script.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let script = self.inner.fetch(service_id)?;
        self.cache
            .write()
            .insert(service_id.to_string(), script.clone());
        Ok(script)
    }

    fn service_ids(&self) -> Vec<String> {
        self.inner.service_ids()
    }
}

/// Counter snapshot of a [`TtlMarket`]'s script cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MarketCacheStats {
    /// Fetches served from a fresh local copy (no cloud round-trip).
    pub hits: u64,
    /// Fetches for scripts the cache had never seen (went to the backend).
    pub misses: u64,
    /// Fetches that found a local copy *older than the TTL* and re-fetched
    /// it from the backend (disjoint from both `hits` and `misses`).
    pub expired: u64,
}

/// A read-through script cache with time-to-live invalidation over a
/// *shared* backing market — the per-shard market front of a gateway
/// fleet.
///
/// Unlike [`CachingMarket`], which caches forever and owns its backend,
/// `TtlMarket` (a) holds the backend by `Arc`, so N shards can front the
/// same cloud market with independent caches, and (b) stamps every cached
/// script with the fetch instant on a [`Clock`]: a copy older than the TTL
/// is re-fetched, so market-side script updates propagate to every shard
/// within one TTL without any invalidation broadcast. A zero TTL never
/// expires (equivalent to [`CachingMarket`] over a shared backend).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use qce_runtime::{InMemoryMarket, Market, MsSpec, ServiceScript, TtlMarket, VirtualClock};
/// use qce_strategy::{Qos, Requirements};
///
/// let clock = Arc::new(VirtualClock::new());
/// let backend: Arc<dyn Market> = Arc::new({
///     let m = InMemoryMarket::new();
///     m.publish(ServiceScript::new(
///         "svc",
///         vec![MsSpec {
///             name: "m".into(),
///             capability: "cap".into(),
///             prior: Qos::new(1.0, 1.0, 0.9)?,
///         }],
///         Requirements::new(10.0, 10.0, 0.5)?,
///     ))?;
///     m
/// });
/// let front = TtlMarket::new(
///     Arc::clone(&backend),
///     Duration::from_secs(60),
///     clock.clone() as Arc<dyn qce_runtime::Clock>,
/// );
/// front.fetch("svc")?; // miss: goes to the backend
/// front.fetch("svc")?; // hit: served locally
/// clock.advance(Duration::from_secs(61));
/// front.fetch("svc")?; // expired: re-fetched from the backend
/// assert_eq!(front.cache_stats().hits, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct TtlMarket {
    backend: Arc<dyn Market>,
    ttl: Duration,
    clock: Arc<dyn Clock>,
    cache: RwLock<HashMap<String, (Duration, ServiceScript)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    expired: AtomicU64,
}

impl TtlMarket {
    /// Fronts `backend` with an empty cache whose entries stay fresh for
    /// `ttl` on `clock` (`Duration::ZERO` = never expire).
    #[must_use]
    pub fn new(backend: Arc<dyn Market>, ttl: Duration, clock: Arc<dyn Clock>) -> Self {
        TtlMarket {
            backend,
            ttl,
            clock,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    /// The configured time-to-live.
    #[must_use]
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// Counter snapshot: hits, misses, and TTL expiries so far.
    #[must_use]
    pub fn cache_stats(&self) -> MarketCacheStats {
        MarketCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached script immediately, regardless of age.
    pub fn invalidate(&self) {
        self.cache.write().clear();
    }

    fn fresh(&self, stamp: Duration, now: Duration) -> bool {
        self.ttl.is_zero() || now.saturating_sub(stamp) < self.ttl
    }
}

impl Market for TtlMarket {
    fn fetch(&self, service_id: &str) -> Result<ServiceScript, RuntimeError> {
        let now = self.clock.now();
        let had_stale = {
            let cache = self.cache.read();
            match cache.get(service_id) {
                Some((stamp, script)) if self.fresh(*stamp, now) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(script.clone());
                }
                Some(_) => true,
                None => false,
            }
        };
        if had_stale {
            self.expired.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let script = self.backend.fetch(service_id)?;
        // Stamp with the post-fetch instant: the backend round-trip may
        // have advanced the clock, and freshness is measured from when the
        // copy was *obtained*.
        self.cache
            .write()
            .insert(service_id.to_string(), (self.clock.now(), script.clone()));
        Ok(script)
    }

    fn service_ids(&self) -> Vec<String> {
        self.backend.service_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::MsSpec;
    use qce_strategy::{Qos, Requirements};

    fn script(id: &str) -> ServiceScript {
        ServiceScript::new(
            id,
            vec![MsSpec {
                name: "m".to_string(),
                capability: "cap".to_string(),
                prior: Qos::new(1.0, 1.0, 0.9).unwrap(),
            }],
            Requirements::new(10.0, 10.0, 0.5).unwrap(),
        )
    }

    #[test]
    fn in_memory_publish_and_fetch() {
        let market = InMemoryMarket::new();
        market.publish(script("a")).unwrap();
        market.publish(script("b")).unwrap();
        assert_eq!(market.fetch("a").unwrap().service_id, "a");
        assert_eq!(market.fetch("b").unwrap().service_id, "b");
        assert_eq!(market.service_ids(), vec!["a".to_string(), "b".to_string()]);
        assert!(matches!(
            market.fetch("zzz"),
            Err(RuntimeError::UnknownService { .. })
        ));
        assert_eq!(market.fetch_count(), 2, "failed fetches are not counted");
    }

    #[test]
    fn in_memory_rejects_invalid_scripts() {
        let market = InMemoryMarket::new();
        let mut bad = script("a");
        bad.slot_size = 0;
        assert!(market.publish(bad).is_err());
    }

    #[test]
    fn fetch_latency_is_applied() {
        let clock = Arc::new(crate::clock::VirtualClock::new());
        let market = InMemoryMarket::with_latency_and_clock(
            Duration::from_millis(20),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        market.publish(script("a")).unwrap();
        market.fetch("a").unwrap();
        assert_eq!(clock.now(), Duration::from_millis(20));
    }

    #[test]
    fn unknown_service_does_not_pay_the_round_trip() {
        let clock = Arc::new(crate::clock::VirtualClock::new());
        let market = InMemoryMarket::with_latency_and_clock(
            Duration::from_millis(20),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        assert!(market.fetch("nope").is_err());
        assert_eq!(clock.now(), Duration::ZERO, "no script, no round-trip");
        assert_eq!(market.fetch_count(), 0);
    }

    #[test]
    fn file_market_round_trip() {
        let dir = std::env::temp_dir().join(format!("qce-market-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let market = FileMarket::new(&dir);
        market.publish(&script("filed")).unwrap();
        let fetched = market.fetch("filed").unwrap();
        assert_eq!(fetched.service_id, "filed");
        assert_eq!(market.service_ids(), vec!["filed".to_string()]);
        assert!(matches!(
            market.fetch("absent"),
            Err(RuntimeError::UnknownService { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_market_empty_dir_lists_nothing() {
        let market = FileMarket::new("/nonexistent/qce-market");
        assert!(market.service_ids().is_empty());
    }

    #[test]
    fn caching_market_hits_after_first_fetch() {
        let inner = InMemoryMarket::new();
        inner.publish(script("a")).unwrap();
        let caching = CachingMarket::new(inner);
        caching.fetch("a").unwrap();
        caching.fetch("a").unwrap();
        caching.fetch("a").unwrap();
        assert_eq!(caching.cache_stats(), (2, 1));
        assert_eq!(caching.inner().fetch_count(), 1, "cloud contacted once");
        caching.invalidate();
        caching.fetch("a").unwrap();
        assert_eq!(caching.cache_stats(), (2, 2));
    }

    #[test]
    fn caching_market_propagates_errors_without_caching_them() {
        let caching = CachingMarket::new(InMemoryMarket::new());
        assert!(caching.fetch("nope").is_err());
        assert!(caching.fetch("nope").is_err());
        assert_eq!(caching.cache_stats(), (0, 2));
    }

    #[test]
    fn ttl_market_hits_until_expiry_then_refetches() {
        let clock = Arc::new(crate::clock::VirtualClock::new());
        let inner = InMemoryMarket::new();
        inner.publish(script("a")).unwrap();
        let backend: Arc<dyn Market> = Arc::new(inner);
        let front = TtlMarket::new(
            Arc::clone(&backend),
            Duration::from_secs(30),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        front.fetch("a").unwrap();
        front.fetch("a").unwrap();
        front.fetch("a").unwrap();
        assert_eq!(
            front.cache_stats(),
            MarketCacheStats {
                hits: 2,
                misses: 1,
                expired: 0
            }
        );
        clock.advance(Duration::from_secs(29));
        front.fetch("a").unwrap();
        clock.advance(Duration::from_secs(1));
        front.fetch("a").unwrap();
        assert_eq!(
            front.cache_stats(),
            MarketCacheStats {
                hits: 3,
                misses: 1,
                expired: 1
            },
            "a copy exactly TTL old is stale"
        );
    }

    #[test]
    fn ttl_market_zero_ttl_never_expires_and_invalidate_clears() {
        let clock = Arc::new(crate::clock::VirtualClock::new());
        let inner = InMemoryMarket::new();
        inner.publish(script("a")).unwrap();
        let backend: Arc<dyn Market> = Arc::new(inner);
        let front = TtlMarket::new(
            Arc::clone(&backend),
            Duration::ZERO,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        front.fetch("a").unwrap();
        clock.advance(Duration::from_secs(3600));
        front.fetch("a").unwrap();
        assert_eq!(front.cache_stats().hits, 1);
        front.invalidate();
        front.fetch("a").unwrap();
        assert_eq!(front.cache_stats().misses, 2);
    }

    #[test]
    fn ttl_market_shards_front_one_backend_independently() {
        let clock = Arc::new(crate::clock::VirtualClock::new());
        let inner = InMemoryMarket::new();
        inner.publish(script("a")).unwrap();
        let backend: Arc<dyn Market> = Arc::new(inner);
        let shard0 = TtlMarket::new(
            Arc::clone(&backend),
            Duration::from_secs(30),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let shard1 = TtlMarket::new(
            Arc::clone(&backend),
            Duration::from_secs(30),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        shard0.fetch("a").unwrap();
        shard0.fetch("a").unwrap();
        shard1.fetch("a").unwrap();
        assert_eq!(shard0.cache_stats().hits, 1);
        assert_eq!(
            shard1.cache_stats(),
            MarketCacheStats {
                hits: 0,
                misses: 1,
                expired: 0
            },
            "shard caches are independent"
        );
    }

    #[test]
    fn ttl_market_propagates_unknown_service_without_caching() {
        let clock = Arc::new(crate::clock::VirtualClock::new());
        let backend: Arc<dyn Market> = Arc::new(InMemoryMarket::new());
        let front = TtlMarket::new(
            backend,
            Duration::ZERO,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        assert!(front.fetch("nope").is_err());
        assert!(front.fetch("nope").is_err());
        assert_eq!(front.cache_stats().misses, 2);
    }

    #[test]
    fn arc_market_is_a_market() {
        let inner = InMemoryMarket::new();
        inner.publish(script("a")).unwrap();
        let shared: Arc<dyn Market> = Arc::new(inner);
        let boxed: Box<dyn Market> = Box::new(Arc::clone(&shared));
        assert_eq!(boxed.fetch("a").unwrap().service_id, "a");
        assert_eq!(boxed.service_ids(), vec!["a".to_string()]);
    }

    #[test]
    fn market_trait_object_debug() {
        let market = InMemoryMarket::new();
        market.publish(script("a")).unwrap();
        let obj: &dyn Market = &market;
        assert!(format!("{obj:?}").contains('a'));
    }
}

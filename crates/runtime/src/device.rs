//! Device-side microservice providers.
//!
//! A [`Provider`] is the gateway's handle to one microservice hosted on one
//! edge device. [`SimulatedProvider`] emulates the paper's testbed
//! microservices (a DS1820 sensor read, a CPU-temperature estimator, a web
//! lookup) with configurable latency, reliability, and cost — the same code
//! path as a real device (a blocking invocation on the executor's thread),
//! with a [`Clock::sleep`] standing in for sensor and network I/O. On the
//! default [`WallClock`] that is a real sleep; on a
//! [`VirtualClock`](crate::VirtualClock) the latency is simulated
//! deterministically without blocking real time. [`FnProvider`] wraps an
//! arbitrary closure for microservices that do real computation.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::clock::{Clock, WallClock};
use crate::message::{Invocation, InvokeError};

/// A microservice endpoint that the strategy executor can invoke.
///
/// Implementations must be thread-safe: the speculative-parallel pattern
/// invokes different providers from different threads simultaneously, and
/// the same provider may serve concurrent requests.
pub trait Provider: Send + Sync {
    /// Globally unique provider id, conventionally `"<device>/<capability>"`.
    fn id(&self) -> &str;

    /// The capability this provider implements (e.g. `"read-temp-sensor"`).
    fn capability(&self) -> &str;

    /// Cost charged per started invocation (Assumption 2).
    fn cost(&self) -> f64;

    /// Synchronously executes the microservice.
    ///
    /// # Errors
    ///
    /// Returns an [`InvokeError`] when the execution fails or the device is
    /// unreachable.
    fn invoke(&self, request: &Invocation) -> Result<Vec<u8>, InvokeError>;

    /// Attempts to resolve this invocation as a *scheduled completion*: a
    /// `(latency, result)` pair the engine turns into a timer on `clock`
    /// instead of parking a thread in [`invoke`](Provider::invoke).
    ///
    /// Returning `Some` commits the invocation — the provider must apply
    /// exactly the side effects (counters, RNG draws) a blocking `invoke`
    /// would, because no `invoke` call follows. Return `None` whenever the
    /// outcome cannot be predicted up front (real I/O, capacity limits, or
    /// latency emulated on a different clock than `clock`); the engine
    /// then falls back to a blocking invocation on a worker thread. The
    /// default implementation always returns `None`.
    fn try_timed_invoke(
        &self,
        request: &Invocation,
        clock: &dyn Clock,
    ) -> Option<(Duration, Result<Vec<u8>, InvokeError>)> {
        let _ = (request, clock);
        None
    }
}

impl fmt::Debug for dyn Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Provider")
            .field("id", &self.id())
            .field("capability", &self.capability())
            .field("cost", &self.cost())
            .finish()
    }
}

/// Mutable runtime knobs of a [`SimulatedProvider`], shared so tests and
/// dynamic scenarios (Fig. 8) can change them mid-run.
#[derive(Debug)]
struct SimState {
    reliability: f64,
    latency: Duration,
    jitter: Duration,
    online: bool,
    rng: ChaCha8Rng,
    invocations: u64,
}

/// A provider that emulates a device-hosted microservice: sleeps for the
/// configured latency (± uniform jitter), then succeeds with the configured
/// reliability.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use qce_runtime::{Invocation, Provider, SimulatedProvider};
///
/// let p = SimulatedProvider::builder("pi/read-temp-sensor", "read-temp-sensor")
///     .latency(Duration::from_millis(2))
///     .reliability(1.0)
///     .cost(50.0)
///     .seed(7)
///     .build();
/// let out = p.invoke(&Invocation::new(1, "read-temp-sensor", vec![]));
/// assert!(out.is_ok());
/// ```
pub struct SimulatedProvider {
    id: String,
    capability: String,
    cost: f64,
    state: Mutex<SimState>,
    /// The clock that emulated latency sleeps on.
    clock: Arc<dyn Clock>,
    /// Optional payload returned on success.
    response: Vec<u8>,
    /// Maximum concurrent invocations (`None` = unlimited).
    capacity: Option<usize>,
    /// Currently running invocations.
    active: std::sync::atomic::AtomicUsize,
    /// Invocations rejected for being over capacity.
    rejected: std::sync::atomic::AtomicU64,
}

impl fmt::Debug for SimulatedProvider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimulatedProvider")
            .field("id", &self.id)
            .field("capability", &self.capability)
            .field("cost", &self.cost)
            .finish_non_exhaustive()
    }
}

impl SimulatedProvider {
    /// Starts building a simulated provider with the given id and
    /// capability.
    #[must_use]
    pub fn builder(
        id: impl Into<String>,
        capability: impl Into<String>,
    ) -> SimulatedProviderBuilder {
        SimulatedProviderBuilder {
            id: id.into(),
            capability: capability.into(),
            cost: 1.0,
            reliability: 1.0,
            latency: Duration::from_millis(1),
            jitter: Duration::ZERO,
            seed: 0,
            response: Vec::new(),
            capacity: None,
            clock: None,
        }
    }

    /// Changes the success probability (clamped into `[0, 1]`) — the knob
    /// the Fig. 8 adaptation experiment turns.
    pub fn set_reliability(&self, reliability: f64) {
        self.state.lock().reliability = reliability.clamp(0.0, 1.0);
    }

    /// Takes the device on- or off-line. Offline providers fail instantly
    /// with [`InvokeError::DeviceUnavailable`].
    pub fn set_online(&self, online: bool) {
        self.state.lock().online = online;
    }

    /// Changes the emulated execution latency.
    pub fn set_latency(&self, latency: Duration) {
        self.state.lock().latency = latency;
    }

    /// Number of invocations served so far (successful or not).
    #[must_use]
    pub fn invocations(&self) -> u64 {
        self.state.lock().invocations
    }

    /// Number of invocations rejected for exceeding the capacity limit.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Invocations currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.active.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// True when an invocation's outcome can be sampled up front and
    /// scheduled as a completion event on `clock`: the device has no
    /// capacity limit (capacity needs real in-flight accounting over time)
    /// and its emulated latency sleeps on `clock` itself.
    pub(crate) fn timed_eligible(&self, clock: &dyn Clock) -> bool {
        self.capacity.is_none() && crate::clock::same_clock(&*self.clock, clock)
    }

    /// Samples one invocation — counters, RNG draws, and all — returning
    /// how long it takes and how it ends. Both the blocking and the
    /// event-scheduled paths go through here, so they are
    /// behaviour-identical by construction.
    pub(crate) fn timed_sample(&self) -> (Duration, Result<Vec<u8>, InvokeError>) {
        let mut state = self.state.lock();
        state.invocations += 1;
        if !state.online {
            return (Duration::ZERO, Err(InvokeError::DeviceUnavailable));
        }
        let jitter_ns = state.jitter.as_nanos() as u64;
        let offset = if jitter_ns == 0 {
            0i64
        } else {
            state
                .rng
                .gen_range(-(jitter_ns as i64) / 2..=(jitter_ns as i64) / 2)
        };
        let base = state.latency.as_nanos() as i64;
        let sleep_ns = (base + offset).max(0) as u64;
        let reliability = state.reliability;
        let success = state.rng.gen_bool(reliability);
        let result = if success {
            Ok(self.response.clone())
        } else {
            Err(InvokeError::ExecutionFailed {
                reason: "simulated microservice failure".to_string(),
            })
        };
        (Duration::from_nanos(sleep_ns), result)
    }
}

/// Builder for [`SimulatedProvider`].
#[derive(Debug)]
pub struct SimulatedProviderBuilder {
    id: String,
    capability: String,
    cost: f64,
    reliability: f64,
    latency: Duration,
    jitter: Duration,
    seed: u64,
    response: Vec<u8>,
    capacity: Option<usize>,
    clock: Option<Arc<dyn Clock>>,
}

impl SimulatedProviderBuilder {
    /// Sets the per-invocation cost (default 1.0).
    #[must_use]
    pub fn cost(mut self, cost: f64) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the success probability (default 1.0).
    #[must_use]
    pub fn reliability(mut self, reliability: f64) -> Self {
        self.reliability = reliability.clamp(0.0, 1.0);
        self
    }

    /// Sets the emulated execution latency (default 1 ms).
    #[must_use]
    pub fn latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Adds symmetric uniform jitter: each invocation sleeps
    /// `latency ± jitter/2` (default none).
    #[must_use]
    pub fn jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Seeds the provider's private RNG for reproducible behaviour
    /// (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the payload returned on success (default empty).
    #[must_use]
    pub fn response(mut self, payload: Vec<u8>) -> Self {
        self.response = payload;
        self
    }

    /// Limits the number of concurrent invocations the device serves;
    /// invocations beyond the limit fail immediately with
    /// [`InvokeError::Overloaded`]. Models the scarce, shared resources of
    /// the paper's Section VII scalability discussion (default: unlimited).
    #[must_use]
    pub fn capacity(mut self, limit: usize) -> Self {
        self.capacity = Some(limit);
        self
    }

    /// Sets the clock the emulated latency sleeps on (default: a fresh
    /// [`WallClock`]). Pass a shared
    /// [`VirtualClock`](crate::VirtualClock) for deterministic
    /// virtual-time simulation.
    #[must_use]
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Builds the provider, wrapped in an [`Arc`] ready for registration.
    #[must_use]
    pub fn build(self) -> Arc<SimulatedProvider> {
        Arc::new(SimulatedProvider {
            id: self.id,
            capability: self.capability,
            cost: self.cost,
            state: Mutex::new(SimState {
                reliability: self.reliability,
                latency: self.latency,
                jitter: self.jitter,
                online: true,
                rng: ChaCha8Rng::seed_from_u64(self.seed),
                invocations: 0,
            }),
            clock: self.clock.unwrap_or_else(|| Arc::new(WallClock::new())),
            response: self.response,
            capacity: self.capacity,
            active: std::sync::atomic::AtomicUsize::new(0),
            rejected: std::sync::atomic::AtomicU64::new(0),
        })
    }
}

impl Provider for SimulatedProvider {
    fn id(&self) -> &str {
        &self.id
    }

    fn capability(&self) -> &str {
        &self.capability
    }

    fn cost(&self) -> f64 {
        self.cost
    }

    fn invoke(&self, _request: &Invocation) -> Result<Vec<u8>, InvokeError> {
        use std::sync::atomic::Ordering;
        // Admission control: reject immediately when at capacity.
        let _slot = if let Some(limit) = self.capacity {
            let mut current = self.active.load(Ordering::Acquire);
            loop {
                if current >= limit {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(InvokeError::Overloaded);
                }
                match self.active.compare_exchange_weak(
                    current,
                    current + 1,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break,
                    Err(seen) => current = seen,
                }
            }
            Some(SlotGuard {
                active: &self.active,
            })
        } else {
            None
        };
        // Sample behaviour under the lock, then sleep outside it so
        // concurrent invocations don't serialize. An offline device
        // samples a zero latency, so the sleep below is a no-op for it.
        let (sleep_for, result) = self.timed_sample();
        self.clock.sleep(sleep_for);
        result
    }

    fn try_timed_invoke(
        &self,
        _request: &Invocation,
        clock: &dyn Clock,
    ) -> Option<(Duration, Result<Vec<u8>, InvokeError>)> {
        if !self.timed_eligible(clock) {
            return None;
        }
        Some(self.timed_sample())
    }
}

/// A provider that runs an arbitrary closure — for microservices with real
/// logic (e.g. computing a temperature estimate from CPU readings).
///
/// # Examples
///
/// ```
/// use qce_runtime::{FnProvider, Invocation, Provider};
///
/// let p = FnProvider::new("m92p/est-temp", "est-temp", 50.0, |req| {
///     Ok(req.payload.iter().rev().copied().collect())
/// });
/// let out = p.invoke(&Invocation::new(1, "est-temp", vec![1, 2, 3])).unwrap();
/// assert_eq!(out, vec![3, 2, 1]);
/// ```
pub struct FnProvider<F> {
    id: String,
    capability: String,
    cost: f64,
    body: F,
}

impl<F> fmt::Debug for FnProvider<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnProvider")
            .field("id", &self.id)
            .field("capability", &self.capability)
            .field("cost", &self.cost)
            .finish_non_exhaustive()
    }
}

impl<F> FnProvider<F>
where
    F: Fn(&Invocation) -> Result<Vec<u8>, InvokeError> + Send + Sync,
{
    /// Creates a closure-backed provider.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        capability: impl Into<String>,
        cost: f64,
        body: F,
    ) -> Arc<Self> {
        Arc::new(FnProvider {
            id: id.into(),
            capability: capability.into(),
            cost,
            body,
        })
    }
}

impl<F> Provider for FnProvider<F>
where
    F: Fn(&Invocation) -> Result<Vec<u8>, InvokeError> + Send + Sync,
{
    fn id(&self) -> &str {
        &self.id
    }

    fn capability(&self) -> &str {
        &self.capability
    }

    fn cost(&self) -> f64 {
        self.cost
    }

    fn invoke(&self, request: &Invocation) -> Result<Vec<u8>, InvokeError> {
        (self.body)(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    #[test]
    fn simulated_provider_succeeds_and_fails_by_reliability() {
        let p = SimulatedProvider::builder("d/cap", "cap")
            .latency(Duration::ZERO)
            .reliability(0.5)
            .seed(3)
            .build();
        let req = Invocation::new(0, "cap", vec![]);
        let n = 2000;
        let ok = (0..n).filter(|_| p.invoke(&req).is_ok()).count();
        let rate = ok as f64 / f64::from(n);
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
        assert_eq!(p.invocations(), 2000);
    }

    #[test]
    fn simulated_provider_sleeps_for_latency() {
        let clock = Arc::new(VirtualClock::new());
        let p = SimulatedProvider::builder("d/cap", "cap")
            .latency(Duration::from_millis(20))
            .clock(Arc::clone(&clock) as Arc<dyn Clock>)
            .build();
        p.invoke(&Invocation::new(0, "cap", vec![])).unwrap();
        assert_eq!(clock.now(), Duration::from_millis(20));
    }

    #[test]
    fn offline_provider_fails_fast() {
        let clock = Arc::new(VirtualClock::new());
        let p = SimulatedProvider::builder("d/cap", "cap")
            .latency(Duration::from_secs(10))
            .clock(Arc::clone(&clock) as Arc<dyn Clock>)
            .build();
        p.set_online(false);
        let err = p.invoke(&Invocation::new(0, "cap", vec![])).unwrap_err();
        assert_eq!(err, InvokeError::DeviceUnavailable);
        assert_eq!(clock.now(), Duration::ZERO, "offline failure never sleeps");
        p.set_online(true);
        assert!(p.invoke(&Invocation::new(0, "cap", vec![])).is_ok());
        assert_eq!(clock.now(), Duration::from_secs(10));
    }

    #[test]
    fn reliability_can_change_at_runtime() {
        let p = SimulatedProvider::builder("d/cap", "cap")
            .latency(Duration::ZERO)
            .reliability(1.0)
            .build();
        let req = Invocation::new(0, "cap", vec![]);
        assert!(p.invoke(&req).is_ok());
        p.set_reliability(0.0);
        assert!(p.invoke(&req).is_err());
    }

    #[test]
    fn latency_can_change_at_runtime() {
        let clock = Arc::new(VirtualClock::new());
        let p = SimulatedProvider::builder("d/cap", "cap")
            .latency(Duration::ZERO)
            .clock(Arc::clone(&clock) as Arc<dyn Clock>)
            .build();
        p.set_latency(Duration::from_millis(15));
        p.invoke(&Invocation::new(0, "cap", vec![])).unwrap();
        assert_eq!(clock.now(), Duration::from_millis(15));
    }

    #[test]
    fn jitter_varies_latency() {
        let clock = Arc::new(VirtualClock::new());
        let p = SimulatedProvider::builder("d/cap", "cap")
            .latency(Duration::from_millis(4))
            .jitter(Duration::from_millis(4))
            .seed(5)
            .clock(Arc::clone(&clock) as Arc<dyn Clock>)
            .build();
        let req = Invocation::new(0, "cap", vec![]);
        let mut samples = Vec::new();
        for _ in 0..10 {
            let t0 = clock.now();
            let _ = p.invoke(&req);
            samples.push(clock.now() - t0);
        }
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        assert!(*max > *min, "jitter should vary sleep times");
    }

    #[test]
    fn builder_sets_response_and_metadata() {
        let p = SimulatedProvider::builder("dev/x", "x")
            .cost(42.0)
            .response(vec![7])
            .latency(Duration::ZERO)
            .build();
        assert_eq!(p.id(), "dev/x");
        assert_eq!(p.capability(), "x");
        assert_eq!(p.cost(), 42.0);
        assert_eq!(p.invoke(&Invocation::new(0, "x", vec![])).unwrap(), vec![7]);
    }

    #[test]
    fn fn_provider_runs_closure() {
        let p = FnProvider::new("d/sum", "sum", 1.0, |req| {
            Ok(vec![req.payload.iter().sum::<u8>()])
        });
        let out = p.invoke(&Invocation::new(0, "sum", vec![1, 2, 3])).unwrap();
        assert_eq!(out, vec![6]);
        assert_eq!(p.capability(), "sum");
    }

    #[test]
    fn provider_trait_object_debug() {
        let p = SimulatedProvider::builder("d/cap", "cap").build();
        let obj: Arc<dyn Provider> = p;
        let text = format!("{obj:?}");
        assert!(text.contains("d/cap"));
    }

    #[test]
    fn providers_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimulatedProvider>();
        assert_send_sync::<Arc<dyn Provider>>();
    }

    #[test]
    fn timed_invoke_matches_blocking_invoke() {
        // Two identically seeded providers must produce the same stream of
        // (latency, result) pairs whether sampled or invoked.
        let make = || {
            let clock = Arc::new(VirtualClock::new());
            let p = SimulatedProvider::builder("d/cap", "cap")
                .latency(Duration::from_millis(6))
                .jitter(Duration::from_millis(4))
                .reliability(0.5)
                .seed(11)
                .response(vec![9])
                .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                .build();
            (clock, p)
        };
        let (timed_clock, timed) = make();
        let (block_clock, blocking) = make();
        let req = Invocation::new(0, "cap", vec![]);
        for _ in 0..32 {
            let (latency, result) = timed
                .try_timed_invoke(&req, &*timed_clock)
                .expect("uncapped provider on its own clock is timed-eligible");
            let t0 = block_clock.now();
            let blocked = blocking.invoke(&req);
            assert_eq!(block_clock.now() - t0, latency);
            assert_eq!(blocked, result);
        }
        assert_eq!(timed.invocations(), blocking.invocations());
    }

    #[test]
    fn timed_invoke_declines_foreign_clocks_and_capacity() {
        let clock = Arc::new(VirtualClock::new());
        let other: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let p = SimulatedProvider::builder("d/cap", "cap")
            .clock(Arc::clone(&clock) as Arc<dyn Clock>)
            .build();
        let req = Invocation::new(0, "cap", vec![]);
        assert!(
            p.try_timed_invoke(&req, &*other).is_none(),
            "latency sleeps on a different clock: outcome is not schedulable"
        );
        assert_eq!(p.invocations(), 0, "a declined probe has no side effects");
        let capped = SimulatedProvider::builder("d/cap", "cap")
            .capacity(1)
            .clock(Arc::clone(&clock) as Arc<dyn Clock>)
            .build();
        assert!(
            capped.try_timed_invoke(&req, &*clock).is_none(),
            "capacity limits need real in-flight accounting"
        );
    }
}

/// RAII guard releasing a capacity slot when the invocation completes.
struct SlotGuard<'a> {
    active: &'a std::sync::atomic::AtomicUsize,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.active
            .fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
    }
}

#[cfg(test)]
mod capacity_tests {
    use super::*;

    #[test]
    fn unlimited_by_default() {
        let p = SimulatedProvider::builder("d/cap", "cap")
            .latency(Duration::from_millis(10))
            .build();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let p = Arc::clone(&p);
                scope.spawn(move || {
                    assert!(p.invoke(&Invocation::new(0, "cap", vec![])).is_ok());
                });
            }
        });
        assert_eq!(p.rejected(), 0);
    }

    #[test]
    fn capacity_one_rejects_concurrent_invocations() {
        let p = SimulatedProvider::builder("d/cap", "cap")
            .latency(Duration::from_millis(40))
            .capacity(1)
            .build();
        let results: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let p = Arc::clone(&p);
                    scope.spawn(move || p.invoke(&Invocation::new(0, "cap", vec![])).is_ok())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let ok = results.iter().filter(|&&r| r).count();
        assert_eq!(ok, 1, "exactly one invocation should win the single slot");
        assert_eq!(p.rejected(), 3);
        assert_eq!(p.in_flight(), 0, "slot released after completion");
    }

    #[test]
    fn capacity_slot_released_after_each_invocation() {
        let p = SimulatedProvider::builder("d/cap", "cap")
            .latency(Duration::ZERO)
            .capacity(1)
            .build();
        let req = Invocation::new(0, "cap", vec![]);
        for _ in 0..5 {
            assert!(p.invoke(&req).is_ok(), "sequential invocations all fit");
        }
        assert_eq!(p.rejected(), 0);
    }

    #[test]
    fn overloaded_failure_is_instant_and_distinct() {
        let wall = WallClock::new();
        let p = SimulatedProvider::builder("d/cap", "cap")
            .latency(Duration::from_millis(50))
            .capacity(1)
            .build();
        let p2 = Arc::clone(&p);
        let handle = std::thread::spawn(move || p2.invoke(&Invocation::new(0, "cap", vec![])));
        // Wait for the first invocation to claim the single slot.
        while p.in_flight() == 0 {
            std::thread::yield_now();
        }
        let t0 = wall.now();
        let err = p.invoke(&Invocation::new(1, "cap", vec![])).unwrap_err();
        assert_eq!(err, InvokeError::Overloaded);
        assert!(
            wall.now() - t0 < Duration::from_millis(20),
            "rejection is instant"
        );
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn slot_released_even_when_offline() {
        let p = SimulatedProvider::builder("d/cap", "cap")
            .latency(Duration::ZERO)
            .capacity(1)
            .build();
        p.set_online(false);
        let req = Invocation::new(0, "cap", vec![]);
        assert_eq!(p.invoke(&req).unwrap_err(), InvokeError::DeviceUnavailable);
        assert_eq!(p.in_flight(), 0, "early return must release the slot");
        p.set_online(true);
        assert!(p.invoke(&req).is_ok());
    }
}

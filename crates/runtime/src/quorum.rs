//! Quorum execution: the paper's future-work direction of using equivalent
//! microservices "to protect from malicious devices that return fake
//! results" (Section VII).
//!
//! Instead of short-circuiting at the *first* success, the executor keeps
//! following the strategy until some payload has been returned by `q`
//! distinct microservices (byte-equal agreement), then answers with that
//! payload. Equivalent microservices compute the same fact by different
//! means, so agreement across them is evidence against a fabricated
//! result. With `q = 1` this degenerates to the standard first-success
//! semantics.
//!
//! Cost follows Assumption 2 unchanged: every started invocation is charged
//! in full, so quorum execution makes the reliability/cost trade-off
//! explicit — a quorum of 2 over a fail-over chain costs roughly twice a
//! single-success run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use qce_strategy::{Node, Strategy};

use crate::clock::{Clock, WallClock, WorkerGuard};
use crate::collector::{Collector, ExecutionRecord};
use crate::device::Provider;
use crate::message::{Invocation, InvocationOutcome, RuntimeError};
use crate::telemetry::Telemetry;

/// Result of a quorum execution.
#[derive(Debug, Clone, PartialEq)]
pub struct QuorumOutcome {
    /// The payload that reached quorum (or, failing that, the plurality
    /// payload among successful invocations).
    pub payload: Option<Vec<u8>>,
    /// Votes received by the winning payload.
    pub votes: usize,
    /// Total successful invocations (votes cast).
    pub votes_cast: usize,
    /// Whether the required quorum was reached.
    pub agreed: bool,
    /// Time until the quorum was reached (or everything finished).
    pub latency: Duration,
    /// Total cost charged (Assumption 2).
    pub cost: f64,
    /// Every invocation that started.
    pub invocations: Vec<InvocationOutcome>,
}

/// Executes `strategy` until `quorum` distinct microservices return the
/// same payload.
///
/// The strategy's control flow is reinterpreted for redundancy: a
/// microservice's *success* no longer terminates the run — execution
/// continues (sequential stages advance, parallel races keep running)
/// until the quorum is met or every microservice has been tried. Failures
/// still gate sequential fall-through exactly as before.
///
/// # Errors
///
/// Returns [`RuntimeError::NoProvider`] if the strategy references an index
/// with no resolved provider.
///
/// # Panics
///
/// Panics if `quorum` is zero.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use qce_runtime::{execute_with_quorum, FnProvider, Invocation, Provider};
/// use qce_strategy::Strategy;
///
/// // Two honest sensors and one compromised device.
/// let honest1 = FnProvider::new("a", "temp", 10.0, |_| Ok(vec![21]));
/// let liar = FnProvider::new("b", "temp", 10.0, |_| Ok(vec![99]));
/// let honest2 = FnProvider::new("c", "temp", 10.0, |_| Ok(vec![21]));
/// let providers: Vec<Arc<dyn Provider>> = vec![honest1, liar, honest2];
///
/// let outcome = execute_with_quorum(
///     &Strategy::parse("a-b-c")?,
///     &providers,
///     &Invocation::new(1, "temp", vec![]),
///     None,
///     2,
/// )?;
/// assert!(outcome.agreed);
/// assert_eq!(outcome.payload, Some(vec![21])); // the liar is outvoted
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn execute_with_quorum(
    strategy: &Strategy,
    providers: &[Arc<dyn Provider>],
    request: &Invocation,
    collector: Option<&Collector>,
    quorum: usize,
) -> Result<QuorumOutcome, RuntimeError> {
    execute_with_quorum_clock(
        strategy,
        providers,
        request,
        collector,
        quorum,
        &WallClock::new(),
    )
}

/// [`execute_with_quorum`] on an explicit [`Clock`], allowing deterministic
/// virtual-time execution (see [`VirtualClock`](crate::VirtualClock)).
///
/// # Errors
///
/// As [`execute_with_quorum`].
///
/// # Panics
///
/// Panics if `quorum` is zero.
pub fn execute_with_quorum_clock(
    strategy: &Strategy,
    providers: &[Arc<dyn Provider>],
    request: &Invocation,
    collector: Option<&Collector>,
    quorum: usize,
    clock: &dyn Clock,
) -> Result<QuorumOutcome, RuntimeError> {
    execute_with_quorum_instrumented(strategy, providers, request, collector, quorum, clock, None)
}

/// [`execute_with_quorum_clock`] that additionally records every completed
/// invocation into `telemetry` when provided (see
/// [`execute_strategy_instrumented`](crate::executor::execute_strategy_instrumented)).
///
/// # Errors
///
/// As [`execute_with_quorum`].
///
/// # Panics
///
/// Panics if `quorum` is zero.
pub fn execute_with_quorum_instrumented(
    strategy: &Strategy,
    providers: &[Arc<dyn Provider>],
    request: &Invocation,
    collector: Option<&Collector>,
    quorum: usize,
    clock: &dyn Clock,
    telemetry: Option<&Telemetry>,
) -> Result<QuorumOutcome, RuntimeError> {
    assert!(quorum >= 1, "quorum must be at least 1");
    for id in strategy.leaves() {
        if providers.get(id.index()).is_none() {
            return Err(RuntimeError::NoProvider {
                capability: format!("strategy operand {id}"),
            });
        }
    }

    let worker = WorkerGuard::enter(clock);
    let ctx = QuorumCtx {
        providers,
        request,
        collector,
        quorum,
        clock,
        telemetry,
        done: AtomicBool::new(false),
        started_at: clock.now(),
        votes: Mutex::new(VoteBox::default()),
        invocations: Mutex::new(Vec::new()),
    };
    run_node(strategy.node(), &ctx);
    drop(worker);

    let votes = ctx.votes.into_inner();
    let invocations = ctx.invocations.into_inner();
    let cost = invocations.iter().map(|i| i.cost).sum();
    let (payload, winner_votes) = votes.winner();
    let agreed = winner_votes >= quorum;
    let latency = votes
        .decided_at
        .unwrap_or_else(|| clock.now().saturating_sub(ctx.started_at));
    Ok(QuorumOutcome {
        payload,
        votes: winner_votes,
        votes_cast: votes.total,
        agreed,
        latency,
        cost,
        invocations,
    })
}

#[derive(Default)]
struct VoteBox {
    /// payload → (votes, first-seen order)
    tally: HashMap<Vec<u8>, (usize, usize)>,
    total: usize,
    decided_at: Option<Duration>,
}

impl VoteBox {
    /// Registers a vote; returns the new count for this payload.
    fn vote(&mut self, payload: Vec<u8>) -> usize {
        let order = self.tally.len();
        let entry = self.tally.entry(payload).or_insert((0, order));
        entry.0 += 1;
        self.total += 1;
        entry.0
    }

    /// The plurality payload (ties broken by first-seen order).
    fn winner(&self) -> (Option<Vec<u8>>, usize) {
        self.tally
            .iter()
            .max_by(|(_, (va, oa)), (_, (vb, ob))| va.cmp(vb).then(ob.cmp(oa)))
            .map_or((None, 0), |(payload, (votes, _))| {
                (Some(payload.clone()), *votes)
            })
    }
}

struct QuorumCtx<'a> {
    providers: &'a [Arc<dyn Provider>],
    request: &'a Invocation,
    collector: Option<&'a Collector>,
    quorum: usize,
    clock: &'a dyn Clock,
    telemetry: Option<&'a Telemetry>,
    done: AtomicBool,
    started_at: Duration,
    votes: Mutex<VoteBox>,
    invocations: Mutex<Vec<InvocationOutcome>>,
}

fn run_node(node: &Node, ctx: &QuorumCtx<'_>) {
    match node {
        Node::Leaf(id) => {
            if ctx.done.load(Ordering::SeqCst) {
                return;
            }
            let provider = &ctx.providers[id.index()];
            let t0 = ctx.clock.now();
            let result = provider.invoke(ctx.request);
            let latency = ctx.clock.now().saturating_sub(t0);
            let success = result.is_ok();
            if let Some(collector) = ctx.collector {
                collector.record(
                    provider.id(),
                    ExecutionRecord {
                        success,
                        latency,
                        cost: provider.cost(),
                    },
                );
            }
            if let Some(telemetry) = ctx.telemetry {
                telemetry.record_invocation(provider.id(), success, latency, provider.cost());
            }
            ctx.invocations.lock().push(InvocationOutcome {
                provider_id: provider.id().to_string(),
                capability: provider.capability().to_string(),
                payload: result.as_ref().ok().cloned(),
                latency,
                cost: provider.cost(),
                success,
            });
            if let Ok(payload) = result {
                let mut votes = ctx.votes.lock();
                let count = votes.vote(payload);
                if count >= ctx.quorum && votes.decided_at.is_none() {
                    votes.decided_at = Some(ctx.clock.now().saturating_sub(ctx.started_at));
                    drop(votes);
                    ctx.done.store(true, Ordering::SeqCst);
                }
            }
        }
        Node::Seq(children) => {
            // Under quorum semantics every stage runs (successes no longer
            // absorb the chain) until the quorum is globally reached.
            for child in children {
                if ctx.done.load(Ordering::SeqCst) {
                    return;
                }
                run_node(child, ctx);
            }
        }
        Node::Par(children) => {
            std::thread::scope(|scope| {
                // Reserve spawned children's worker slots before spawning
                // (see the first-success executor for the rationale); each
                // child binds its own thread when it starts.
                for _ in 1..children.len() {
                    ctx.clock.reserve_worker();
                }
                let handles: Vec<_> = children
                    .iter()
                    .skip(1)
                    .map(|child| {
                        scope.spawn(move || {
                            // Release the slot even if the child panics.
                            let _worker = WorkerGuard::adopt(ctx.clock);
                            run_node(child, ctx);
                        })
                    })
                    .collect();
                // Catch the inline child's panic so the spawned children
                // still get joined (under a passive mark) first.
                let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_node(&children[0], ctx)
                }));
                ctx.clock.enter_passive();
                let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
                ctx.clock.exit_passive();
                // Child panics propagate instead of being swallowed.
                if let Err(panic) = first {
                    std::panic::resume_unwind(panic);
                }
                for result in joined {
                    if let Err(panic) = result {
                        std::panic::resume_unwind(panic);
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{FnProvider, SimulatedProvider};

    fn honest(id: &str, answer: u8, cost: f64) -> Arc<dyn Provider> {
        FnProvider::new(id, "cap", cost, move |_| Ok(vec![answer]))
    }

    fn liar(id: &str, answer: u8) -> Arc<dyn Provider> {
        FnProvider::new(id, "cap", 10.0, move |_| Ok(vec![answer]))
    }

    fn failing(id: &str) -> Arc<dyn Provider> {
        FnProvider::new(id, "cap", 10.0, |_| {
            Err(crate::message::InvokeError::ExecutionFailed {
                reason: "down".to_string(),
            })
        })
    }

    fn req() -> Invocation {
        Invocation::new(1, "cap", vec![])
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn zero_quorum_rejected() {
        let providers = vec![honest("a", 1, 1.0)];
        let _ = execute_with_quorum(&Strategy::parse("a").unwrap(), &providers, &req(), None, 0);
    }

    #[test]
    fn quorum_one_matches_first_success_semantics() {
        let providers = vec![honest("a", 7, 10.0), honest("b", 7, 20.0)];
        let out = execute_with_quorum(
            &Strategy::parse("a-b").unwrap(),
            &providers,
            &req(),
            None,
            1,
        )
        .unwrap();
        assert!(out.agreed);
        assert_eq!(out.payload, Some(vec![7]));
        assert_eq!(out.cost, 10.0, "b never runs at quorum 1");
    }

    #[test]
    fn quorum_two_runs_the_backup_too() {
        let providers = vec![honest("a", 7, 10.0), honest("b", 7, 20.0)];
        let out = execute_with_quorum(
            &Strategy::parse("a-b").unwrap(),
            &providers,
            &req(),
            None,
            2,
        )
        .unwrap();
        assert!(out.agreed);
        assert_eq!(out.votes, 2);
        assert_eq!(out.cost, 30.0, "redundancy costs double");
    }

    #[test]
    fn byzantine_device_is_outvoted() {
        let providers = vec![honest("a", 21, 10.0), liar("b", 99), honest("c", 21, 10.0)];
        let out = execute_with_quorum(
            &Strategy::parse("a-b-c").unwrap(),
            &providers,
            &req(),
            None,
            2,
        )
        .unwrap();
        assert!(out.agreed);
        assert_eq!(out.payload, Some(vec![21]));
        assert_eq!(out.votes, 2);
        assert_eq!(out.votes_cast, 3);
    }

    #[test]
    fn no_quorum_returns_plurality_unagreed() {
        let providers = vec![honest("a", 1, 10.0), liar("b", 2), failing("c")];
        let out = execute_with_quorum(
            &Strategy::parse("a-b-c").unwrap(),
            &providers,
            &req(),
            None,
            2,
        )
        .unwrap();
        assert!(!out.agreed);
        assert_eq!(out.votes, 1);
        assert_eq!(out.votes_cast, 2);
        // Plurality tie broken by first-seen payload.
        assert_eq!(out.payload, Some(vec![1]));
    }

    #[test]
    fn failures_still_gate_nothing_under_quorum_seq() {
        // All fail: no votes, not agreed, everything charged.
        let providers = vec![failing("a"), failing("b")];
        let out = execute_with_quorum(
            &Strategy::parse("a-b").unwrap(),
            &providers,
            &req(),
            None,
            1,
        )
        .unwrap();
        assert!(!out.agreed);
        assert_eq!(out.votes_cast, 0);
        assert!(out.payload.is_none());
        assert_eq!(out.cost, 20.0);
    }

    #[test]
    fn parallel_strategy_reaches_quorum_concurrently() {
        let providers: Vec<Arc<dyn Provider>> = (0..3)
            .map(|i| {
                SimulatedProvider::builder(format!("p{i}"), "cap")
                    .latency(Duration::from_millis(2 + i))
                    .reliability(1.0)
                    .cost(10.0)
                    .response(vec![42])
                    .build() as Arc<dyn Provider>
            })
            .collect();
        let out = execute_with_quorum(
            &Strategy::parse("a*b*c").unwrap(),
            &providers,
            &req(),
            None,
            2,
        )
        .unwrap();
        assert!(out.agreed);
        assert_eq!(out.payload, Some(vec![42]));
        assert!(out.votes >= 2);
        assert_eq!(out.cost, 30.0, "all three start in parallel");
    }

    #[test]
    fn quorum_stops_sequential_tail_once_reached() {
        let providers = vec![
            honest("a", 5, 10.0),
            honest("b", 5, 10.0),
            honest("c", 5, 999.0),
        ];
        let out = execute_with_quorum(
            &Strategy::parse("a-b-c").unwrap(),
            &providers,
            &req(),
            None,
            2,
        )
        .unwrap();
        assert!(out.agreed);
        assert_eq!(out.cost, 20.0, "c never starts once a and b agree");
    }

    #[test]
    fn collector_records_quorum_invocations() {
        let collector = Collector::new(10);
        let providers = vec![honest("a", 5, 10.0), honest("b", 5, 10.0)];
        let _ = execute_with_quorum(
            &Strategy::parse("a-b").unwrap(),
            &providers,
            &req(),
            Some(&collector),
            2,
        )
        .unwrap();
        assert_eq!(collector.observation_count("a"), 1);
        assert_eq!(collector.observation_count("b"), 1);
    }
}

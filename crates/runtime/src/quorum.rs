//! Quorum execution: the paper's future-work direction of using equivalent
//! microservices "to protect from malicious devices that return fake
//! results" (Section VII).
//!
//! Instead of short-circuiting at the *first* success, the executor keeps
//! following the strategy until some payload has been returned by `q`
//! distinct microservices (byte-equal agreement), then answers with that
//! payload. Equivalent microservices compute the same fact by different
//! means, so agreement across them is evidence against a fabricated
//! result. With `q = 1` this degenerates to the standard first-success
//! semantics.
//!
//! Cost follows Assumption 2 unchanged: every started invocation is charged
//! in full, so quorum execution makes the reliability/cost trade-off
//! explicit — a quorum of 2 over a fail-over chain costs roughly twice a
//! single-success run.
//!
//! Since the unification of the strategy walkers, these entry points are
//! thin wrappers over [`engine::execute_scoped`](crate::engine) with
//! [`CompletionPolicy::Quorum`]: the same walker serves first-success and
//! quorum execution, differing only in when a Seq chain advances and when
//! the walk halts.

use std::sync::Arc;
use std::time::Duration;

use qce_strategy::{CompletionPolicy, Strategy};

use crate::clock::{Clock, WallClock};
use crate::collector::Collector;
use crate::device::Provider;
use crate::engine::{self, Budget, Completion};
use crate::message::{Invocation, InvocationOutcome, RuntimeError};
use crate::telemetry::Telemetry;

/// Result of a quorum execution.
#[derive(Debug, Clone, PartialEq)]
pub struct QuorumOutcome {
    /// The payload that reached quorum (or, failing that, the plurality
    /// payload among successful invocations).
    pub payload: Option<Vec<u8>>,
    /// Votes received by the winning payload.
    pub votes: usize,
    /// Total successful invocations (votes cast).
    pub votes_cast: usize,
    /// Whether the required quorum was reached.
    pub agreed: bool,
    /// Time until the quorum was reached (or everything finished).
    pub latency: Duration,
    /// Total cost charged (Assumption 2).
    pub cost: f64,
    /// Every invocation that started.
    pub invocations: Vec<InvocationOutcome>,
}

impl From<engine::EngineOutcome> for QuorumOutcome {
    fn from(outcome: engine::EngineOutcome) -> Self {
        let (payload, votes, votes_cast, agreed) = match outcome.completion {
            Completion::Agreement {
                payload,
                votes,
                votes_cast,
                agreed,
            } => (payload, votes, votes_cast, agreed),
            Completion::First { success, payload } => {
                let votes = usize::from(success);
                (payload, votes, votes, success)
            }
        };
        QuorumOutcome {
            payload,
            votes,
            votes_cast,
            agreed,
            latency: outcome.latency,
            cost: outcome.cost,
            invocations: outcome.invocations,
        }
    }
}

/// Executes `strategy` until `quorum` distinct microservices return the
/// same payload.
///
/// The strategy's control flow is reinterpreted for redundancy: a
/// microservice's *success* no longer terminates the run — execution
/// continues (sequential stages advance, parallel races keep running)
/// until the quorum is met or every microservice has been tried. Failures
/// still gate sequential fall-through exactly as before.
///
/// # Errors
///
/// Returns [`RuntimeError::NoProvider`] if the strategy references an index
/// with no resolved provider.
///
/// # Panics
///
/// Panics if `quorum` is zero.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use qce_runtime::{execute_with_quorum, FnProvider, Invocation, Provider};
/// use qce_strategy::Strategy;
///
/// // Two honest sensors and one compromised device.
/// let honest1 = FnProvider::new("a", "temp", 10.0, |_| Ok(vec![21]));
/// let liar = FnProvider::new("b", "temp", 10.0, |_| Ok(vec![99]));
/// let honest2 = FnProvider::new("c", "temp", 10.0, |_| Ok(vec![21]));
/// let providers: Vec<Arc<dyn Provider>> = vec![honest1, liar, honest2];
///
/// let outcome = execute_with_quorum(
///     &Strategy::parse("a-b-c")?,
///     &providers,
///     &Invocation::new(1, "temp", vec![]),
///     None,
///     2,
/// )?;
/// assert!(outcome.agreed);
/// assert_eq!(outcome.payload, Some(vec![21])); // the liar is outvoted
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn execute_with_quorum(
    strategy: &Strategy,
    providers: &[Arc<dyn Provider>],
    request: &Invocation,
    collector: Option<&Collector>,
    quorum: usize,
) -> Result<QuorumOutcome, RuntimeError> {
    execute_with_quorum_clock(
        strategy,
        providers,
        request,
        collector,
        quorum,
        &WallClock::new(),
    )
}

/// [`execute_with_quorum`] on an explicit [`Clock`], allowing deterministic
/// virtual-time execution (see [`VirtualClock`](crate::VirtualClock)).
///
/// # Errors
///
/// As [`execute_with_quorum`].
///
/// # Panics
///
/// Panics if `quorum` is zero.
pub fn execute_with_quorum_clock(
    strategy: &Strategy,
    providers: &[Arc<dyn Provider>],
    request: &Invocation,
    collector: Option<&Collector>,
    quorum: usize,
    clock: &dyn Clock,
) -> Result<QuorumOutcome, RuntimeError> {
    execute_with_quorum_instrumented(strategy, providers, request, collector, quorum, clock, None)
}

/// [`execute_with_quorum_clock`] that additionally records every completed
/// invocation into `telemetry` when provided (see
/// [`execute_strategy_instrumented`](crate::executor::execute_strategy_instrumented)).
///
/// # Errors
///
/// As [`execute_with_quorum`].
///
/// # Panics
///
/// Panics if `quorum` is zero.
pub fn execute_with_quorum_instrumented(
    strategy: &Strategy,
    providers: &[Arc<dyn Provider>],
    request: &Invocation,
    collector: Option<&Collector>,
    quorum: usize,
    clock: &dyn Clock,
    telemetry: Option<&Telemetry>,
) -> Result<QuorumOutcome, RuntimeError> {
    assert!(quorum >= 1, "quorum must be at least 1");
    engine::execute_scoped(
        strategy,
        providers,
        request,
        collector,
        clock,
        telemetry,
        &Budget::unlimited(),
        CompletionPolicy::Quorum { quorum },
    )
    .map(QuorumOutcome::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{FnProvider, SimulatedProvider};

    fn honest(id: &str, answer: u8, cost: f64) -> Arc<dyn Provider> {
        FnProvider::new(id, "cap", cost, move |_| Ok(vec![answer]))
    }

    fn liar(id: &str, answer: u8) -> Arc<dyn Provider> {
        FnProvider::new(id, "cap", 10.0, move |_| Ok(vec![answer]))
    }

    fn failing(id: &str) -> Arc<dyn Provider> {
        FnProvider::new(id, "cap", 10.0, |_| {
            Err(crate::message::InvokeError::ExecutionFailed {
                reason: "down".to_string(),
            })
        })
    }

    fn req() -> Invocation {
        Invocation::new(1, "cap", vec![])
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn zero_quorum_rejected() {
        let providers = vec![honest("a", 1, 1.0)];
        let _ = execute_with_quorum(&Strategy::parse("a").unwrap(), &providers, &req(), None, 0);
    }

    #[test]
    fn quorum_one_matches_first_success_semantics() {
        let providers = vec![honest("a", 7, 10.0), honest("b", 7, 20.0)];
        let out = execute_with_quorum(
            &Strategy::parse("a-b").unwrap(),
            &providers,
            &req(),
            None,
            1,
        )
        .unwrap();
        assert!(out.agreed);
        assert_eq!(out.payload, Some(vec![7]));
        assert_eq!(out.cost, 10.0, "b never runs at quorum 1");
    }

    #[test]
    fn quorum_two_runs_the_backup_too() {
        let providers = vec![honest("a", 7, 10.0), honest("b", 7, 20.0)];
        let out = execute_with_quorum(
            &Strategy::parse("a-b").unwrap(),
            &providers,
            &req(),
            None,
            2,
        )
        .unwrap();
        assert!(out.agreed);
        assert_eq!(out.votes, 2);
        assert_eq!(out.cost, 30.0, "redundancy costs double");
    }

    #[test]
    fn byzantine_device_is_outvoted() {
        let providers = vec![honest("a", 21, 10.0), liar("b", 99), honest("c", 21, 10.0)];
        let out = execute_with_quorum(
            &Strategy::parse("a-b-c").unwrap(),
            &providers,
            &req(),
            None,
            2,
        )
        .unwrap();
        assert!(out.agreed);
        assert_eq!(out.payload, Some(vec![21]));
        assert_eq!(out.votes, 2);
        assert_eq!(out.votes_cast, 3);
    }

    #[test]
    fn no_quorum_returns_plurality_unagreed() {
        let providers = vec![honest("a", 1, 10.0), liar("b", 2), failing("c")];
        let out = execute_with_quorum(
            &Strategy::parse("a-b-c").unwrap(),
            &providers,
            &req(),
            None,
            2,
        )
        .unwrap();
        assert!(!out.agreed);
        assert_eq!(out.votes, 1);
        assert_eq!(out.votes_cast, 2);
        // Plurality tie broken by first-seen payload.
        assert_eq!(out.payload, Some(vec![1]));
    }

    #[test]
    fn failures_still_gate_nothing_under_quorum_seq() {
        // All fail: no votes, not agreed, everything charged.
        let providers = vec![failing("a"), failing("b")];
        let out = execute_with_quorum(
            &Strategy::parse("a-b").unwrap(),
            &providers,
            &req(),
            None,
            1,
        )
        .unwrap();
        assert!(!out.agreed);
        assert_eq!(out.votes_cast, 0);
        assert!(out.payload.is_none());
        assert_eq!(out.cost, 20.0);
    }

    #[test]
    fn parallel_strategy_reaches_quorum_concurrently() {
        let providers: Vec<Arc<dyn Provider>> = (0..3)
            .map(|i| {
                SimulatedProvider::builder(format!("p{i}"), "cap")
                    .latency(Duration::from_millis(2 + i))
                    .reliability(1.0)
                    .cost(10.0)
                    .response(vec![42])
                    .build() as Arc<dyn Provider>
            })
            .collect();
        let out = execute_with_quorum(
            &Strategy::parse("a*b*c").unwrap(),
            &providers,
            &req(),
            None,
            2,
        )
        .unwrap();
        assert!(out.agreed);
        assert_eq!(out.payload, Some(vec![42]));
        assert!(out.votes >= 2);
        assert_eq!(out.cost, 30.0, "all three start in parallel");
    }

    #[test]
    fn quorum_stops_sequential_tail_once_reached() {
        let providers = vec![
            honest("a", 5, 10.0),
            honest("b", 5, 10.0),
            honest("c", 5, 999.0),
        ];
        let out = execute_with_quorum(
            &Strategy::parse("a-b-c").unwrap(),
            &providers,
            &req(),
            None,
            2,
        )
        .unwrap();
        assert!(out.agreed);
        assert_eq!(out.cost, 20.0, "c never starts once a and b agree");
    }

    #[test]
    fn collector_records_quorum_invocations() {
        let collector = Collector::new(10);
        let providers = vec![honest("a", 5, 10.0), honest("b", 5, 10.0)];
        let _ = execute_with_quorum(
            &Strategy::parse("a-b").unwrap(),
            &providers,
            &req(),
            Some(&collector),
            2,
        )
        .unwrap();
        assert_eq!(collector.observation_count("a"), 1);
        assert_eq!(collector.observation_count("b"), 1);
    }
}

//! Parallel branch-and-bound search engine behind
//! [`Generator`](crate::Generator)'s exhaustive paths.
//!
//! The pre-existing exhaustive search streams every candidate of `F(M)`
//! (or `F'(M)`), materializes it as a [`Strategy`], re-walks its timelines
//! from scratch, and estimates it with Algorithm 1. This engine keeps the
//! result **bit-for-bit identical** (same winning strategy, same `Qos`,
//! same utility) while doing strictly less work:
//!
//! * **Shared chain prefixes** — sequential candidates are explored as a
//!   chain recursion; the timelines of the already-fixed blocks are walked
//!   once and reused for every extension, with the same absolute-offset
//!   arithmetic as [`timelines`](crate::estimate::timelines), so the final
//!   per-candidate QoS (via
//!   [`estimate_from_timelines`](crate::estimate::estimate_from_timelines))
//!   is bit-identical to the sequential path.
//! * **Utility-bound pruning** — before descending into a family of
//!   candidates, an *admissible* upper bound on the utility any member can
//!   reach is compared against the best utility found so far (shared
//!   across workers through an atomic). See `DESIGN.md` ("Synthesis
//!   engine") for the bound derivation; the one-line summary:
//!   reliability is exact per leaf set (`1 − Π(1−rᵢ)`), the latency bound
//!   applies Algorithm 1's latency formula to pointwise-earliest virtual
//!   end times, and the cost bound charges each not-yet-placed leaf only
//!   with the failure product of the leaves that *must* gate it. Pruning
//!   uses a `1e-9` safety margin, so candidates tying the optimum are
//!   never pruned and the chosen strategy stays deterministic under any
//!   thread interleaving.
//! * **Work-stealing jobs** — the search space is cut into jobs (one
//!   par-rooted family plus one job per first-block choice, per leaf
//!   subset); workers claim jobs off an atomic counter. The per-candidate
//!   tie-break is a strict total order, so the merged winner is
//!   independent of worker count and scheduling.
//!
//! Pruning is disabled (the engine still runs, unpruned) when any leaf has
//! a non-positive average latency: the cost bound's admissibility argument
//! requires every already-fixed leaf to *strictly* precede the leaves of
//! later blocks.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::enumerate::{submasks, Counts, EnumCtx, Mask, MAX_COUNT_M};
use crate::estimate::{estimate_from_timelines, walk, Timeline};
use crate::expr::{Node, Strategy};
use crate::generate::better_tiebreak;
use crate::qos::{EnvQos, MsId, Qos, Reliability, Requirements};
use crate::utility::UtilityIndex;

/// Pruning safety margin: a family is skipped only when its utility upper
/// bound is below the incumbent by more than this. Absorbs ulp-level
/// differences between the bound arithmetic and the exact per-candidate
/// arithmetic, and keeps exact-utility ties alive so the tie-break sees
/// every maximal candidate.
const PRUNE_MARGIN: f64 = 1e-9;

/// Folds a warm-start incumbent — the previous slot's winner, re-estimated
/// under the *current* environment — into the seed bound, seeding the
/// branch-and-bound incumbent bar so pruning bites from the first
/// candidate even on a plan-cache miss.
///
/// **Admissibility.** The incumbent must be a member of the current search
/// space (same id list and subsets mode) and `incumbent` must be its exact
/// utility under the current environment and requirements. Then the fold
/// is exact, never just approximate:
///
/// * `incumbent ≤ max utility of the space`, so the bar never starts above
///   the optimum;
/// * candidate screening ([`WorkerState::consider`]) compares with strict
///   `<`, so candidates *tying* the bar — including the incumbent itself
///   and the eventual winner — always survive to the tie-break;
/// * family pruning ([`WorkerState::prunable`]) requires the upper bound
///   to fall below `bar − PRUNE_MARGIN`, so no family containing the
///   optimum is ever skipped.
///
/// Hence the winner (strategy, QoS bits, utility, tie-breaks) is
/// bit-identical to a cold search; only `candidates_seen` shrinks.
pub(crate) fn fold_incumbent(seed: f64, incumbent: f64) -> f64 {
    seed.max(incumbent)
}

/// Minimum number of candidates a family must contain before the engine
/// bothers computing its utility bound. Evaluating a bound costs about as
/// much as estimating one candidate, and bounds are recomputed per
/// concrete chain prefix — for tiny families (deep in the chain
/// recursion, where most contexts live) enumerating is cheaper than
/// bounding. Pure performance knob: gated families are enumerated
/// normally, so the search result is unaffected.
const MIN_PRUNE_COUNT: u128 = 32;

/// Largest non-seq family (tree count) a worker will materialize into its
/// node cache. The chain recursion revisits the same remainder mask once
/// per concrete prefix, and rebuilding the candidate trees each time
/// dominated the engine's profile; caching replays the family from a
/// slice instead. Families above this limit (reachable only far beyond
/// the paper's exhaustive threshold) fall back to streaming, keeping
/// worker memory bounded.
const NODE_CACHE_MAX: u128 = 1 << 17;

/// Masks wider than this are never cached (the cache is a dense
/// mask-indexed table of `2^M` slots).
const NODE_CACHE_MAX_M: usize = 14;

/// Environment-independent node families shared by every worker of every
/// search over the same `ids` slice (the [`Generator`](crate::Generator)
/// keeps one per id list): `slots[mask]` lazily materializes every
/// non-seq-rooted tree over `mask` in canonical streaming order. The
/// candidate *trees* depend only on the id list, so rebuilding them per
/// environment — which dominated the engine's profile — is pure waste.
#[derive(Debug)]
pub(crate) struct NodeCache {
    slots: Vec<OnceLock<Vec<Node>>>,
}

impl NodeCache {
    pub(crate) fn new(m: usize) -> Self {
        NodeCache {
            slots: (0..1usize << m.min(NODE_CACHE_MAX_M))
                .map(|_| OnceLock::new())
                .collect(),
        }
    }

    /// The non-seq family over `mask`, materialized on first use; `None`
    /// when the family is too large to cache (see [`NODE_CACHE_MAX`]) and
    /// the caller must stream instead.
    fn family(&self, ctx: EnumCtx<'_>, counts: &Counts, mask: Mask) -> Option<&[Node]> {
        let slot = self.slots.get(mask as usize)?;
        let n = mask.count_ones() as usize;
        if counts.non_seq[n] > NODE_CACHE_MAX {
            return None;
        }
        Some(slot.get_or_init(|| {
            let mut nodes = Vec::with_capacity(to_u64(counts.non_seq[n]) as usize);
            ctx.stream_non_seq(mask, &mut |node| nodes.push(node));
            nodes
        }))
    }
}

/// Input to the engine. `ids` must be non-empty, distinct, fully covered
/// by `env`, and at most [`MAX_COUNT_M`] long; `parallelism` must already
/// be resolved to a concrete worker count (≥ 1).
pub(crate) struct SearchSpec<'a> {
    pub env: &'a EnvQos,
    pub ids: &'a [MsId],
    pub req: &'a Requirements,
    pub utility: UtilityIndex,
    /// Search `F'(M)` (subset families) instead of `F(M)`.
    pub subsets: bool,
    pub pruning: bool,
    pub parallelism: usize,
    /// Utility of the best *member of the search space* known before the
    /// search (seed candidates, or a warm-start incumbent folded in via
    /// [`fold_incumbent`]), or `f64::NEG_INFINITY`. Used only to tighten
    /// the initial pruning bar — the winner is always re-derived from the
    /// search itself.
    pub initial_bound: f64,
    /// Shared environment-independent candidate-tree cache for this `ids`
    /// slice (must have been created with `NodeCache::new(ids.len())`).
    pub cache: &'a NodeCache,
}

/// What the engine found.
pub(crate) struct SearchOutcome {
    pub strategy: Strategy,
    pub qos: Qos,
    pub utility: f64,
    /// Candidates actually estimated.
    pub seen: u64,
    /// Candidates skipped by pruning. `seen + pruned` always equals the
    /// full space size (`F(M)` or `F'(M)`).
    pub pruned: u64,
}

/// One unit of work-stealing: a slice of one leaf subset's strategy family.
enum Job {
    /// All non-seq-rooted trees over `mask` (the single leaf, or every
    /// par-rooted tree).
    NonSeq { mask: Mask },
    /// All seq-rooted trees over `mask` whose first block is exactly
    /// `first`.
    SeqPartition { mask: Mask, first: Mask },
}

/// Per-leaf and per-mask precomputation shared by every worker.
struct Tables {
    /// Per leaf position: average latency and reliability.
    lat: Vec<f64>,
    rel: Vec<f64>,
    /// Per mask: product of failure probabilities.
    fail: Vec<f64>,
    /// Per mask: maximum leaf latency.
    maxl: Vec<f64>,
    /// Per mask: `Σ_{i∈mask} cᵢ · fail[mask∖i]` — a lower bound on the
    /// total expected cost of the mask's leaves when each can only be
    /// gated by the mask's other leaves.
    costlb1: Vec<f64>,
}

impl Tables {
    fn build(env: &EnvQos, ids: &[MsId]) -> Tables {
        let m = ids.len();
        let per: Vec<Qos> = ids
            .iter()
            .map(|&id| *env.get(id).expect("caller validated coverage"))
            .collect();
        let cost: Vec<f64> = per.iter().map(|q| q.cost).collect();
        let lat: Vec<f64> = per.iter().map(|q| q.latency).collect();
        let rel: Vec<f64> = per.iter().map(|q| q.reliability.value()).collect();
        let size = 1usize << m;
        let mut fail = vec![1.0f64; size];
        let mut maxl = vec![0.0f64; size];
        for mask in 1..size {
            let i = mask.trailing_zeros() as usize;
            let rest = mask & (mask - 1);
            fail[mask] = fail[rest] * (1.0 - rel[i]);
            maxl[mask] = maxl[rest].max(lat[i]);
        }
        let mut costlb1 = vec![0.0f64; size];
        for (mask, slot) in costlb1.iter_mut().enumerate().skip(1) {
            let mut sum = 0.0;
            let mut bits = mask;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                sum += cost[i] * fail[mask & !(1 << i)];
            }
            *slot = sum;
        }
        Tables {
            lat,
            rel,
            fail,
            maxl,
            costlb1,
        }
    }

    fn fail_of(&self, mask: Mask) -> f64 {
        self.fail[mask as usize]
    }

    fn maxl_of(&self, mask: Mask) -> f64 {
        self.maxl[mask as usize]
    }

    fn costlb1_of(&self, mask: Mask) -> f64 {
        self.costlb1[mask as usize]
    }
}

/// Read-only state shared by all workers.
struct Shared<'a> {
    env: &'a EnvQos,
    ids: &'a [MsId],
    req: &'a Requirements,
    utility: UtilityIndex,
    tables: Tables,
    counts: Counts,
    prune: bool,
    /// Use the incremental per-candidate evaluator (prefix reliability and
    /// cost contributions accumulated once, in the exact floating-point
    /// operation order of [`estimate_from_timelines`]). Requires strictly
    /// positive latencies — with a zero-latency leaf, a later chain block
    /// could finish at (hence gate) an earlier leaf's start time, and
    /// prefix cost contributions would no longer be final.
    fast_eval: bool,
    /// Best utility found so far across all workers, in the ordered-bits
    /// `f64` encoding (see [`to_ordered`]). Monotonically raised with
    /// `fetch_max`; always the utility of some actual candidate.
    bar: AtomicU64,
    /// Shared candidate-tree cache (see [`NodeCache`]).
    cache: &'a NodeCache,
}

/// Order-preserving `f64 → u64` encoding: `a < b ⇔ enc(a) < enc(b)`, so
/// `AtomicU64::fetch_max` implements a lock-free floating-point maximum.
fn to_ordered(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

fn from_ordered(enc: u64) -> f64 {
    if enc >> 63 == 1 {
        f64::from_bits(enc & !(1 << 63))
    } else {
        f64::from_bits(!enc)
    }
}

/// A worker-local incumbent.
struct Cand {
    strategy: Strategy,
    qos: Qos,
    utility: f64,
}

/// Runs the search and returns the utility-maximal strategy under the
/// deterministic tie-break of the sequential exhaustive path.
pub(crate) fn search(spec: &SearchSpec<'_>) -> SearchOutcome {
    let m = spec.ids.len();
    assert!(m >= 1, "caller rejects empty id lists");
    assert!(m <= MAX_COUNT_M, "search space counts overflow");
    let tables = Tables::build(spec.env, spec.ids);
    // The cost bound's admissibility argument and the incremental
    // evaluator both need strictly positive latencies (later chain blocks
    // must end strictly after earlier leaves start); fall back to the
    // unpruned, full-reestimation scan otherwise.
    let positive_latencies = tables.lat.iter().all(|&l| l > 0.0);
    let prune = spec.pruning && positive_latencies;
    let shared = Shared {
        env: spec.env,
        ids: spec.ids,
        req: spec.req,
        utility: spec.utility,
        tables,
        counts: Counts::up_to(m),
        prune,
        fast_eval: positive_latencies,
        bar: AtomicU64::new(to_ordered(spec.initial_bound)),
        cache: spec.cache,
    };

    let full: Mask = (1 << m) - 1;
    let mut jobs: Vec<Job> = Vec::new();
    let push_family = |jobs: &mut Vec<Job>, mask: Mask| {
        jobs.push(Job::NonSeq { mask });
        if mask.count_ones() >= 2 {
            for first in submasks(mask) {
                if first != 0 && first != mask {
                    jobs.push(Job::SeqPartition { mask, first });
                }
            }
        }
    };
    if spec.subsets {
        for sub in submasks(full) {
            if sub != 0 {
                push_family(&mut jobs, sub);
            }
        }
    } else {
        push_family(&mut jobs, full);
    }

    let workers = spec.parallelism.clamp(1, jobs.len());
    let next = AtomicUsize::new(0);
    let run_all = |runner: &mut JobRunner<'_>| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(job) = jobs.get(i) else { break };
        runner.run_job(job);
    };

    let mut results: Vec<(Option<Cand>, u64, u64)> = Vec::new();
    if workers <= 1 {
        let mut runner = JobRunner::new(&shared);
        run_all(&mut runner);
        results.push(runner.finish());
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut runner = JobRunner::new(&shared);
                        run_all(&mut runner);
                        runner.finish()
                    })
                })
                .collect();
            for handle in handles {
                results.push(handle.join().expect("search worker panicked"));
            }
        });
    }

    let mut best: Option<Cand> = None;
    let mut seen = 0u64;
    let mut pruned = 0u64;
    // `better_tiebreak` extends `utility` into a strict total order over
    // candidates, so folding worker maxima in any order yields the same
    // winner as the sequential scan.
    for (cand, job_seen, job_pruned) in results {
        seen += job_seen;
        pruned += job_pruned;
        if let Some(c) = cand {
            let replace = match &best {
                None => true,
                Some(cur) => {
                    c.utility > cur.utility
                        || (c.utility == cur.utility
                            && better_tiebreak(&c.strategy, &c.qos, &cur.strategy, &cur.qos))
                }
            };
            if replace {
                best = Some(c);
            }
        }
    }
    let best = best.expect("the utility-maximal family is never pruned");
    SearchOutcome {
        strategy: best.strategy,
        qos: best.qos,
        utility: best.utility,
        seen,
        pruned,
    }
}

/// Per-timeline QoS values resolved once per walk (parallel to
/// `JobRunner::scratch`), so per-candidate evaluation never goes back to
/// the environment table.
#[derive(Clone, Copy)]
struct Meta {
    rel: f64,
    fail: f64,
    cost: f64,
}

/// Per-worker mutable state.
struct JobRunner<'a> {
    shared: &'a Shared<'a>,
    ctx: EnumCtx<'a>,
    /// Timelines of the fixed chain prefix plus the block currently being
    /// evaluated, in canonical walk order.
    scratch: Vec<Timeline>,
    /// Reliability/failure/cost of each `scratch` entry, same order.
    meta: Vec<Meta>,
    /// `(end, reliability)` scratch for latency bound evaluation.
    bentries: Vec<(f64, f64)>,
    /// `(end, reliability)` of the fixed chain prefix, stable-sorted by
    /// end time. Because every block's entries end strictly after every
    /// earlier block's (positive latencies), the full estimator's stable
    /// end-sort factorizes into per-level stable sorts concatenated in
    /// chain order — so this list, plus a per-candidate sort of just the
    /// final block, reproduces the full sort's exact permutation.
    lsorted: Vec<(f64, f64)>,
    /// Canonical nodes of the fixed chain prefix blocks.
    prefix: Vec<Node>,
    /// `1 − fail[mask]` of the family currently being searched.
    family_rel: f64,
    best: Option<Cand>,
    seen: u64,
    pruned: u64,
}

impl<'a> JobRunner<'a> {
    fn new(shared: &'a Shared<'a>) -> Self {
        JobRunner {
            shared,
            ctx: EnumCtx::new(shared.ids),
            scratch: Vec::new(),
            meta: Vec::new(),
            bentries: Vec::new(),
            lsorted: Vec::new(),
            prefix: Vec::new(),
            family_rel: 0.0,
            best: None,
            seen: 0,
            pruned: 0,
        }
    }

    fn finish(self) -> (Option<Cand>, u64, u64) {
        (self.best, self.seen, self.pruned)
    }

    fn run_job(&mut self, job: &Job) {
        let mask = match job {
            Job::NonSeq { mask } | Job::SeqPartition { mask, .. } => *mask,
        };
        self.family_rel = 1.0 - self.shared.tables.fail_of(mask);
        self.scratch.clear();
        self.meta.clear();
        self.prefix.clear();
        self.lsorted.clear();
        match job {
            Job::NonSeq { mask } => self.run_non_seq_family(*mask),
            Job::SeqPartition { mask, first } => self.run_seq_partition(*mask, *first),
        }
    }

    /// All non-seq-rooted trees over `mask` (leaf or par-rooted).
    fn run_non_seq_family(&mut self, mask: Mask) {
        let n = mask.count_ones() as usize;
        if self.shared.prune && self.shared.counts.non_seq[n] >= MIN_PRUNE_COUNT {
            // Bound: every leaf starts at 0, so ends are at least the leaf
            // latencies and every leaf is unconditionally chargeable only
            // down to the one-block cost bound.
            self.bentries.clear();
            self.push_virtual_entries(mask, 0.0);
            let cost_lb = self.shared.tables.costlb1_of(mask);
            if self.prunable(cost_lb) {
                self.pruned += to_u64(self.shared.counts.non_seq[n]);
                return;
            }
        }
        self.for_each_non_seq(mask, &mut |runner, node| runner.eval_block(node, 0.0));
    }

    /// Runs `f` once per non-seq-rooted tree over `mask`, in the canonical
    /// streaming emission order.
    ///
    /// Small families are materialized into the shared [`NodeCache`] on
    /// first use and replayed from the cached slice afterwards — the chain
    /// recursion revisits the same remainder mask once per concrete
    /// prefix, and rebuilding the trees each time dominated the engine's
    /// profile. The cache only depends on `ids`, so it is shared across
    /// environments, searches, and workers. Oversized families stream
    /// exactly as before.
    fn for_each_non_seq(&mut self, mask: Mask, f: &mut impl FnMut(&mut Self, &Node)) {
        let shared = self.shared;
        match shared.cache.family(self.ctx, &shared.counts, mask) {
            Some(nodes) => {
                for node in nodes {
                    f(self, node);
                }
            }
            None => {
                let ctx = self.ctx;
                ctx.stream_non_seq(mask, &mut |node| f(self, &node));
            }
        }
    }

    /// Walks `node` onto `scratch`, resolving per-leaf QoS into `meta`.
    fn walk_tracked(&mut self, node: &Node, offset: f64) -> f64 {
        let mark = self.scratch.len();
        let end = walk(node, offset, self.shared.env, &mut self.scratch)
            .expect("caller validated coverage");
        for t in &self.scratch[mark..] {
            let qos = self
                .shared
                .env
                .get(t.ms)
                .expect("caller validated coverage");
            self.meta.push(Meta {
                rel: qos.reliability.value(),
                fail: qos.reliability.failure_probability(),
                cost: qos.cost,
            });
        }
        end
    }

    fn truncate_to(&mut self, mark: usize) {
        self.scratch.truncate(mark);
        self.meta.truncate(mark);
    }

    /// QoS of the complete candidate currently in `scratch`, whose final
    /// block is `scratch[mark..]`.
    ///
    /// `fail_pre`/`cost_base`/`lat_partial`/`pf` are the reliability
    /// product, expected cost, r-weighted latency partial sum, and latency
    /// prefix-failure product accumulated over `scratch[..mark]` (the
    /// fixed chain prefix) in the exact floating-point operation sequence
    /// of [`estimate_from_timelines`]; the fast path extends each over the
    /// final block only — same multiply order for the failure product,
    /// same left-to-right accumulation for cost and latency, same stable
    /// end-sorted permutation — so the result is bit-identical.
    fn qos_of_final(
        &mut self,
        mark: usize,
        fail_pre: f64,
        cost_base: f64,
        lat_partial: f64,
        pf: f64,
    ) -> Qos {
        if !self.shared.fast_eval {
            return estimate_from_timelines(&self.scratch, self.shared.env);
        }
        let all_fail = self.mul_fails_onto(mark, fail_pre);
        let cost = self.added_cost_block(mark, cost_base, fail_pre);
        let latency = self.latency_with_final(mark, lat_partial, pf);
        let qos = Qos {
            cost,
            latency,
            reliability: Reliability::clamped(1.0 - all_fail),
        };
        debug_assert_eq!(qos, estimate_from_timelines(&self.scratch, self.shared.env));
        qos
    }

    /// Failure product of `scratch[mark..]` accumulated onto `base`,
    /// multiplying in walk order (matching `Iterator::product` over the
    /// full timeline list when chained from the prefix's own product).
    fn mul_fails_onto(&self, mark: usize, base: f64) -> f64 {
        let mut p = base;
        for meta in &self.meta[mark..] {
            p *= meta.fail;
        }
        p
    }

    /// Appends the stable-sorted `(end, reliability)` entries of
    /// `scratch[mark..]` to `lsorted` as one chain level and extends the
    /// latency accumulators over them, returning the updated
    /// `(lat_partial, pf)`. Every entry is r-weighted — correct because
    /// the chain always continues past a non-final level, so none of these
    /// entries can be the overall-last of any completed candidate.
    fn push_sorted_level(&mut self, mark: usize, lat_partial: f64, pf: f64) -> (f64, f64) {
        let lmark = self.lsorted.len();
        for (t, meta) in self.scratch[mark..].iter().zip(&self.meta[mark..]) {
            self.lsorted.push((t.end, meta.rel));
        }
        self.lsorted[lmark..]
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("latency must not be NaN"));
        let mut lp = lat_partial;
        let mut p = pf;
        for &(end, r) in &self.lsorted[lmark..] {
            lp += p * r * end;
            p *= 1.0 - r;
        }
        (lp, p)
    }

    /// Exact expected latency of the complete candidate in `scratch`:
    /// Algorithm 1 lines 3–7. Only the final block `scratch[mark..]` is
    /// sorted and accumulated here; the prefix's contribution arrives
    /// pre-reduced as `lat_partial`/`pf` (see [`Self::push_sorted_level`]
    /// and the factorization note on [`Self::lsorted`]).
    fn latency_with_final(&mut self, mark: usize, lat_partial: f64, mut pf: f64) -> f64 {
        let lmark = self.lsorted.len();
        for (t, meta) in self.scratch[mark..].iter().zip(&self.meta[mark..]) {
            self.lsorted.push((t.end, meta.rel));
        }
        self.lsorted[lmark..]
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("latency must not be NaN"));
        let mut latency = lat_partial;
        let n = self.lsorted.len();
        for i in lmark..n {
            let (end, r) = self.lsorted[i];
            if i + 1 == n {
                latency += pf * end;
            } else {
                latency += pf * r * end;
                pf *= 1.0 - r;
            }
        }
        self.lsorted.truncate(lmark);
        latency
    }

    /// Evaluates one complete non-seq candidate rooted at time 0.
    fn eval_block(&mut self, node: &Node, offset: f64) {
        debug_assert!(self.scratch.is_empty() && self.prefix.is_empty());
        self.walk_tracked(node, offset);
        let qos = self.qos_of_final(0, 1.0, 0.0, 0.0, 1.0);
        self.consider(qos, |_| node.clone());
        self.truncate_to(0);
    }

    /// All seq-rooted trees over `mask` whose first block is `first`.
    fn run_seq_partition(&mut self, mask: Mask, first: Mask) {
        let rest = mask & !first;
        if self.shared.prune
            && self.seq_partition_count(first, rest) >= MIN_PRUNE_COUNT
            && self.partition_prunable(1.0, 0.0, 0.0, first, rest)
        {
            self.pruned += to_u64(self.seq_partition_count(first, rest));
            return;
        }
        self.for_each_non_seq(first, &mut |runner, node| {
            debug_assert!(runner.scratch.is_empty() && runner.prefix.is_empty());
            let t0 = runner.walk_tracked(node, 0.0);
            let cost_fixed = runner.added_cost_block(0, 0.0, 1.0);
            let fail_first = runner.mul_fails_onto(0, 1.0);
            let (lat_partial, pf) = runner.push_sorted_level(0, 0.0, 1.0);
            runner.prefix.push(node.clone());
            runner.chain_rest(rest, t0, fail_first, cost_fixed, lat_partial, pf);
            runner.prefix.pop();
            runner.lsorted.clear();
            runner.truncate_to(0);
        });
    }

    /// Number of seq-rooted trees with first block `first` and remainder
    /// `rest` (either a single non-seq block or a longer chain).
    fn seq_partition_count(&self, first: Mask, rest: Mask) -> u128 {
        let counts = &self.shared.counts;
        let b = first.count_ones() as usize;
        let r = rest.count_ones() as usize;
        counts.non_seq[b] * (counts.non_seq[r] + counts.seq[r])
    }

    /// Extends the fixed chain (timelines in `scratch`, blocks in
    /// `prefix`) over the remaining leaves `rem`, starting at time `t0`.
    ///
    /// `fail_pre` is the walk-order failure product of every fixed leaf;
    /// `cost_fixed` is the exact expected-cost contribution of the fixed
    /// leaves (later blocks can never gate them, so this term is final);
    /// `lat_partial`/`pf` are the latency accumulators over the sorted
    /// prefix (see [`Self::push_sorted_level`]). All carry the
    /// accumulation order of the full estimator, so the fast evaluator can
    /// extend them bit-exactly.
    fn chain_rest(
        &mut self,
        rem: Mask,
        t0: f64,
        fail_pre: f64,
        cost_fixed: f64,
        lat_partial: f64,
        pf: f64,
    ) {
        let counts = &self.shared.counts;
        let r = rem.count_ones() as usize;
        // Option A — finish the chain with `rem` as one non-seq block.
        let mut enumerate_final = true;
        if self.shared.prune && counts.non_seq[r] >= MIN_PRUNE_COUNT {
            self.bentries.clear();
            self.push_fixed_entries();
            self.push_virtual_entries(rem, t0);
            let cost_lb = cost_fixed + fail_pre * self.shared.tables.costlb1_of(rem);
            if self.prunable(cost_lb) {
                self.pruned += to_u64(counts.non_seq[r]);
                enumerate_final = false;
            }
        }
        if enumerate_final {
            self.for_each_non_seq(rem, &mut |runner, node| {
                runner.eval_chain_final(node, t0, fail_pre, cost_fixed, lat_partial, pf);
            });
        }
        // Option B — place a proper sub-block next and keep chaining.
        if r < 2 {
            return;
        }
        for next_block in submasks(rem) {
            if next_block == 0 || next_block == rem {
                continue;
            }
            let tail = rem & !next_block;
            if self.shared.prune
                && self.seq_partition_count(next_block, tail) >= MIN_PRUNE_COUNT
                && self.partition_prunable(fail_pre, cost_fixed, t0, next_block, tail)
            {
                self.pruned += to_u64(self.seq_partition_count(next_block, tail));
                continue;
            }
            self.for_each_non_seq(next_block, &mut |runner, node| {
                let mark = runner.scratch.len();
                let lmark = runner.lsorted.len();
                let t1 = runner.walk_tracked(node, t0);
                let cost_now = runner.added_cost_block(mark, cost_fixed, fail_pre);
                let fail_now = runner.mul_fails_onto(mark, fail_pre);
                let (lat_now, pf_now) = runner.push_sorted_level(mark, lat_partial, pf);
                runner.prefix.push(node.clone());
                runner.chain_rest(tail, t1, fail_now, cost_now, lat_now, pf_now);
                runner.prefix.pop();
                runner.lsorted.truncate(lmark);
                runner.truncate_to(mark);
            });
        }
    }

    /// Evaluates one chain candidate: fixed prefix (already in `scratch`)
    /// plus `block` as the final element.
    fn eval_chain_final(
        &mut self,
        block: &Node,
        t0: f64,
        fail_pre: f64,
        cost_fixed: f64,
        lat_partial: f64,
        pf: f64,
    ) {
        let mark = self.scratch.len();
        self.walk_tracked(block, t0);
        let qos = self.qos_of_final(mark, fail_pre, cost_fixed, lat_partial, pf);
        self.consider(qos, |prefix| {
            let mut children: Vec<Node> = Vec::with_capacity(prefix.len() + 1);
            children.extend(prefix.iter().cloned());
            children.push(block.clone());
            Node::Seq(children)
        });
        self.truncate_to(mark);
    }

    /// Records an estimated candidate. `make` builds the candidate's
    /// canonical node from the fixed prefix blocks — only invoked when the
    /// candidate might become the worker-local incumbent.
    fn consider(&mut self, qos: Qos, make: impl FnOnce(&[Node]) -> Node) {
        self.seen += 1;
        let u = self.shared.utility.utility(&qos, self.shared.req);
        // Global screen: a candidate strictly below the shared bar can be
        // neither the maximum nor one of its ties (the bar is always some
        // candidate's exact utility, hence ≤ the maximum).
        if u < from_ordered(self.shared.bar.load(Ordering::Relaxed)) {
            return;
        }
        if let Some(cur) = &self.best {
            if u < cur.utility {
                return;
            }
        }
        let strategy =
            Strategy::from_node(make(&self.prefix)).expect("engine produces valid strategies");
        let replace = match &self.best {
            None => true,
            Some(cur) => {
                u > cur.utility
                    || (u == cur.utility
                        && better_tiebreak(&strategy, &qos, &cur.strategy, &cur.qos))
            }
        };
        if replace {
            self.shared.bar.fetch_max(to_ordered(u), Ordering::Relaxed);
            self.best = Some(Cand {
                strategy,
                qos,
                utility: u,
            });
        }
    }

    /// Bound check for continuing the chain with next block `block` and
    /// remainder `tail`, given the current fixed context.
    fn partition_prunable(
        &mut self,
        fail_pre: f64,
        cost_fixed: f64,
        t0: f64,
        block: Mask,
        tail: Mask,
    ) -> bool {
        let tables = &self.shared.tables;
        self.bentries.clear();
        self.push_fixed_entries();
        self.push_virtual_entries(block, t0);
        self.push_virtual_entries(tail, t0 + tables.maxl_of(block));
        let cost_lb = cost_fixed
            + fail_pre
                * (tables.costlb1_of(block) + tables.fail_of(block) * tables.costlb1_of(tail));
        self.prunable(cost_lb)
    }

    /// Evaluates the utility upper bound from `self.bentries` (latency)
    /// and `cost_lb`, against the shared bar.
    fn prunable(&mut self, cost_lb: f64) -> bool {
        let lat_lb = expected_latency(&mut self.bentries);
        let bound_qos = Qos {
            cost: cost_lb,
            latency: lat_lb,
            reliability: Reliability::clamped(self.family_rel),
        };
        let ub = self.shared.utility.utility(&bound_qos, self.shared.req);
        ub < from_ordered(self.shared.bar.load(Ordering::Relaxed)) - PRUNE_MARGIN
    }

    /// Pushes `(end, reliability)` of every fixed timeline in `scratch`,
    /// reading the reliabilities already resolved into `meta`.
    fn push_fixed_entries(&mut self) {
        for (t, meta) in self.scratch.iter().zip(&self.meta) {
            self.bentries.push((t.end, meta.rel));
        }
    }

    /// Pushes the pointwise-earliest virtual end times of `mask`'s leaves,
    /// all relaxed to start at `offset`.
    fn push_virtual_entries(&mut self, mask: Mask, offset: f64) {
        let tables = &self.shared.tables;
        let mut bits = mask;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.bentries.push((offset + tables.lat[i], tables.rel[i]));
        }
    }

    /// Exact expected-cost contribution of `scratch[mark..]` accumulated
    /// onto `base`, each entry gated per Algorithm 1's `e ≤ s` rule.
    ///
    /// Every prefix entry ends at or before the current block's offset and
    /// every block entry starts at or after it (positive latencies), so
    /// the prefix *always* gates the block — and its walk-order gating
    /// product is exactly `fail_pre`, the same multiply sequence from
    /// `1.0` the full estimator performs. Only gating *within* the block
    /// still needs the pairwise check. Accumulating onto the prefix total
    /// — rather than summing separately and adding — preserves the full
    /// estimator's left-to-right addition order, hence its exact bits.
    fn added_cost_block(&self, mark: usize, base: f64, fail_pre: f64) -> f64 {
        let mut cost = base;
        let block = &self.scratch[mark..];
        let meta = &self.meta[mark..];
        for (idx, t) in block.iter().enumerate() {
            let mut p = fail_pre;
            for (jdx, u) in block.iter().enumerate() {
                if jdx != idx && u.end <= t.start {
                    p *= meta[jdx].fail;
                }
            }
            cost += p * meta[idx].cost;
        }
        cost
    }
}

/// Algorithm 1's latency formula applied to `(end, reliability)` pairs:
/// the expected value of "the earliest successful end, or the last end if
/// everything fails". Monotone in every end time, so applying it to
/// pointwise-earliest virtual ends lower-bounds the latency of any
/// concrete schedule over the same leaves.
fn expected_latency(entries: &mut [(f64, f64)]) -> f64 {
    entries.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("latency must not be NaN"));
    let mut latency = 0.0;
    let mut prefix_fail = 1.0;
    for (i, &(end, r)) in entries.iter().enumerate() {
        if i + 1 == entries.len() {
            latency += prefix_fail * end;
        } else {
            latency += prefix_fail * r * end;
            prefix_fail *= 1.0 - r;
        }
    }
    latency
}

fn to_u64(x: u128) -> u64 {
    u64::try_from(x).expect("pruned-family count exceeds u64")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_f64_encoding_is_monotone() {
        let values = [
            f64::NEG_INFINITY,
            -1.0e308,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            2.5,
            1.0e308,
            f64::INFINITY,
        ];
        for pair in values.windows(2) {
            assert!(
                to_ordered(pair[0]) <= to_ordered(pair[1]),
                "{} vs {}",
                pair[0],
                pair[1]
            );
        }
        for v in values {
            assert_eq!(from_ordered(to_ordered(v)).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn expected_latency_matches_algorithm1_on_parallel() {
        // a*b*c with l=(10,90,70), r=(10%,90%,70%) — Section III.C.3.
        let mut entries = vec![(10.0, 0.1), (90.0, 0.9), (70.0, 0.7)];
        let lat = expected_latency(&mut entries);
        assert!((lat - 69.4).abs() < 1e-9, "got {lat}");
    }
}

//! QoS model: per-microservice and per-strategy quality attributes.
//!
//! The paper (Section III.C.1) considers three QoS attributes:
//!
//! * **cost** — energy/price charged for an execution (charged in full as
//!   soon as the execution starts, per Assumption 2);
//! * **latency** — time taken to complete an execution;
//! * **reliability** — probability that an execution succeeds.
//!
//! Attributes split into two polarities (Section IV.C): *lower-is-better*
//! (cost, latency) and *higher-is-better* (reliability).

use serde::{Deserialize, Serialize};

use crate::error::QosError;

/// Identifier of an equivalent microservice within a strategy.
///
/// Ids are small dense indices into an [`EnvQos`] table. The first 26 ids
/// display as the letters `a`–`z` used throughout the paper; larger ids
/// display as `ms26`, `ms27`, …
///
/// # Examples
///
/// ```
/// use qce_strategy::MsId;
///
/// assert_eq!(MsId(0).to_string(), "a");
/// assert_eq!(MsId(25).to_string(), "z");
/// assert_eq!(MsId(30).to_string(), "ms30");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct MsId(pub usize);

impl MsId {
    /// Returns the underlying index.
    ///
    /// ```
    /// use qce_strategy::MsId;
    /// assert_eq!(MsId(3).index(), 3);
    /// ```
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Parses the default display form produced by [`MsId`]'s `Display`
    /// implementation: a single letter `a`–`z` or `ms<n>`.
    ///
    /// ```
    /// use qce_strategy::MsId;
    /// assert_eq!(MsId::from_name("c"), Some(MsId(2)));
    /// assert_eq!(MsId::from_name("ms42"), Some(MsId(42)));
    /// assert_eq!(MsId::from_name("hello"), None);
    /// ```
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        let mut chars = name.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) if c.is_ascii_lowercase() => Some(MsId(c as usize - 'a' as usize)),
            _ => name
                .strip_prefix("ms")
                .and_then(|rest| rest.parse::<usize>().ok())
                .map(MsId),
        }
    }
}

impl fmt::Display for MsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 26 {
            let c = (b'a' + self.0 as u8) as char;
            write!(f, "{c}")
        } else {
            write!(f, "ms{}", self.0)
        }
    }
}

impl From<usize> for MsId {
    fn from(index: usize) -> Self {
        MsId(index)
    }
}

use std::fmt;

/// A probability of successful execution, guaranteed to lie within `[0, 1]`.
///
/// # Examples
///
/// ```
/// use qce_strategy::Reliability;
///
/// let r = Reliability::new(0.7)?;
/// assert_eq!(r.value(), 0.7);
/// assert!((r.failure_probability() - 0.3).abs() < 1e-12);
/// assert!(Reliability::new(1.2).is_err());
/// # Ok::<(), qce_strategy::QosError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Reliability(f64);

impl Reliability {
    /// A reliability of exactly one: the execution always succeeds.
    pub const ALWAYS: Reliability = Reliability(1.0);
    /// A reliability of exactly zero: the execution always fails.
    pub const NEVER: Reliability = Reliability(0.0);

    /// Creates a reliability from a probability.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::ReliabilityOutOfRange`] if `p` is not a finite
    /// number within `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, QosError> {
        if p.is_finite() && (0.0..=1.0).contains(&p) {
            Ok(Reliability(p))
        } else {
            Err(QosError::ReliabilityOutOfRange(p))
        }
    }

    /// Creates a reliability from a percentage in `[0, 100]`, the unit the
    /// paper uses in its tables.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::ReliabilityOutOfRange`] if the percentage is not
    /// within `[0, 100]`.
    ///
    /// ```
    /// use qce_strategy::Reliability;
    /// let r = Reliability::from_percent(70.0)?;
    /// assert_eq!(r.value(), 0.7);
    /// # Ok::<(), qce_strategy::QosError>(())
    /// ```
    pub fn from_percent(percent: f64) -> Result<Self, QosError> {
        Self::new(percent / 100.0).map_err(|_| QosError::ReliabilityOutOfRange(percent))
    }

    /// Creates a reliability, clamping out-of-range values into `[0, 1]`.
    ///
    /// Useful when sampling reliabilities from a random range that may
    /// exceed the legal domain (the paper's Table III configurations do,
    /// e.g. average 80% with Δ = 50).
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN.
    #[must_use]
    pub fn clamped(p: f64) -> Self {
        assert!(!p.is_nan(), "reliability must not be NaN");
        Reliability(p.clamp(0.0, 1.0))
    }

    /// Returns the success probability as a value in `[0, 1]`.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns the success probability as a percentage in `[0, 100]`.
    #[must_use]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Returns the complementary failure probability `1 - r`.
    #[must_use]
    pub fn failure_probability(self) -> f64 {
        1.0 - self.0
    }
}

impl Default for Reliability {
    fn default() -> Self {
        Reliability::ALWAYS
    }
}

impl fmt::Display for Reliability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.percent())
    }
}

/// The three QoS attributes of a microservice or of a whole strategy.
///
/// For a microservice these are the environment-specific *average* values
/// observed by the collector; for a strategy they are the averages estimated
/// by [`estimate`](crate::estimate::estimate) over repeated executions.
///
/// # Examples
///
/// ```
/// use qce_strategy::Qos;
///
/// let q = Qos::new(50.0, 50.0, 0.6)?;
/// assert_eq!(q.cost, 50.0);
/// assert_eq!(q.reliability.value(), 0.6);
/// # Ok::<(), qce_strategy::QosError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Qos {
    /// Average execution cost (abstract units; energy in the paper).
    pub cost: f64,
    /// Average execution latency (abstract time units; ms in the paper).
    pub latency: f64,
    /// Probability of a successful execution.
    pub reliability: Reliability,
}

impl Qos {
    /// Creates a QoS triple, validating each attribute's domain.
    ///
    /// # Errors
    ///
    /// Returns a [`QosError`] if cost or latency is negative or non-finite,
    /// or if reliability lies outside `[0, 1]`.
    pub fn new(cost: f64, latency: f64, reliability: f64) -> Result<Self, QosError> {
        if !cost.is_finite() || cost < 0.0 {
            return Err(QosError::InvalidCost(cost));
        }
        if !latency.is_finite() || latency < 0.0 {
            return Err(QosError::InvalidLatency(latency));
        }
        Ok(Qos {
            cost,
            latency,
            reliability: Reliability::new(reliability)?,
        })
    }

    /// Returns the value of the given attribute, with reliability expressed
    /// as a probability in `[0, 1]`.
    #[must_use]
    pub fn attribute(&self, attr: Attribute) -> f64 {
        match attr {
            Attribute::Cost => self.cost,
            Attribute::Latency => self.latency,
            Attribute::Reliability => self.reliability.value(),
        }
    }
}

impl fmt::Display for Qos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[cost={:.1}, latency={:.1}, reliability={}]",
            self.cost, self.latency, self.reliability
        )
    }
}

/// One of the three QoS attributes tracked by the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attribute {
    /// Execution cost; lower is better.
    Cost,
    /// Execution latency; lower is better.
    Latency,
    /// Execution success probability; higher is better.
    Reliability,
}

impl Attribute {
    /// All attributes, in the paper's `{c, l, r}` order.
    pub const ALL: [Attribute; 3] = [Attribute::Cost, Attribute::Latency, Attribute::Reliability];

    /// Returns the optimization polarity of this attribute (Section IV.C's
    /// `N₋` / `N₊` split).
    ///
    /// ```
    /// use qce_strategy::{Attribute, Polarity};
    /// assert_eq!(Attribute::Cost.polarity(), Polarity::LowerIsBetter);
    /// assert_eq!(Attribute::Reliability.polarity(), Polarity::HigherIsBetter);
    /// ```
    #[must_use]
    pub const fn polarity(self) -> Polarity {
        match self {
            Attribute::Cost | Attribute::Latency => Polarity::LowerIsBetter,
            Attribute::Reliability => Polarity::HigherIsBetter,
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Attribute::Cost => "cost",
            Attribute::Latency => "latency",
            Attribute::Reliability => "reliability",
        };
        f.write_str(name)
    }
}

/// Whether larger or smaller values of an attribute are preferable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// Smaller values are better (`N₋`: cost, latency).
    LowerIsBetter,
    /// Larger values are better (`N₊`: reliability, trust level).
    HigherIsBetter,
}

impl Polarity {
    /// Compares two attribute values under this polarity.
    ///
    /// Returns a positive ordering when `lhs` is *better* than `rhs`, i.e.
    /// `Ordering::Greater` means `lhs ≻ rhs` in the paper's notation.
    ///
    /// ```
    /// use std::cmp::Ordering;
    /// use qce_strategy::Polarity;
    ///
    /// assert_eq!(Polarity::LowerIsBetter.compare(10.0, 20.0), Ordering::Greater);
    /// assert_eq!(Polarity::HigherIsBetter.compare(0.9, 0.7), Ordering::Greater);
    /// assert_eq!(Polarity::HigherIsBetter.compare(0.7, 0.7), Ordering::Equal);
    /// ```
    #[must_use]
    pub fn compare(self, lhs: f64, rhs: f64) -> std::cmp::Ordering {
        let ord = lhs.partial_cmp(&rhs).expect("QoS values must not be NaN");
        match self {
            Polarity::HigherIsBetter => ord,
            Polarity::LowerIsBetter => ord.reverse(),
        }
    }

    /// Returns `true` when `value` is at least as good as `requirement`
    /// (`value ⪰ requirement`).
    #[must_use]
    pub fn satisfies(self, value: f64, requirement: f64) -> bool {
        self.compare(value, requirement) != std::cmp::Ordering::Less
    }
}

/// QoS requirements imposed on an edge service (the `Q_n` of Section IV.C).
///
/// # Examples
///
/// ```
/// use qce_strategy::{Qos, Requirements};
///
/// // The simulation experiments use Qc = 100, Ql = 100, Qr = 97%.
/// let req = Requirements::new(100.0, 100.0, 0.97)?;
/// let good = Qos::new(80.0, 90.0, 0.99)?;
/// let bad = Qos::new(80.0, 120.0, 0.99)?;
/// assert!(req.satisfied_by(&good));
/// assert!(!req.satisfied_by(&bad));
/// # Ok::<(), qce_strategy::QosError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Requirements {
    /// Maximum acceptable average cost (`Q_c`).
    pub cost: f64,
    /// Maximum acceptable average latency (`Q_l`).
    pub latency: f64,
    /// Minimum acceptable reliability (`Q_r`).
    pub reliability: Reliability,
}

impl Requirements {
    /// Creates a requirement triple.
    ///
    /// # Errors
    ///
    /// Returns a [`QosError`] if cost or latency is not finite and positive
    /// (they are used as normalization denominators in Equation 1), or if
    /// reliability lies outside `(0, 1]`.
    pub fn new(cost: f64, latency: f64, reliability: f64) -> Result<Self, QosError> {
        if reliability <= 0.0 || reliability.is_nan() {
            return Err(QosError::InvalidRequirement(reliability));
        }
        let req = Requirements {
            cost,
            latency,
            reliability: Reliability::new(reliability)?,
        };
        req.validate()?;
        Ok(req)
    }

    /// Re-checks the invariants [`Requirements::new`] establishes: cost and
    /// latency finite and positive, reliability in `(0, 1]`.
    ///
    /// The fields are public (and reachable through deserialization), so
    /// consumers that divide by a requirement — Equation 1 normalizes every
    /// attribute by it — should validate before trusting a value they did
    /// not construct themselves.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::InvalidRequirement`] naming the first offending
    /// attribute value.
    pub fn validate(&self) -> Result<(), QosError> {
        if !self.cost.is_finite() || self.cost <= 0.0 {
            return Err(QosError::InvalidRequirement(self.cost));
        }
        if !self.latency.is_finite() || self.latency <= 0.0 {
            return Err(QosError::InvalidRequirement(self.latency));
        }
        if self.reliability.value() <= 0.0 {
            return Err(QosError::InvalidRequirement(self.reliability.value()));
        }
        Ok(())
    }

    /// Returns the requirement for the given attribute (reliability as a
    /// probability).
    #[must_use]
    pub fn attribute(&self, attr: Attribute) -> f64 {
        match attr {
            Attribute::Cost => self.cost,
            Attribute::Latency => self.latency,
            Attribute::Reliability => self.reliability.value(),
        }
    }

    /// Returns `true` when every attribute of `qos` meets its requirement.
    #[must_use]
    pub fn satisfied_by(&self, qos: &Qos) -> bool {
        Attribute::ALL.iter().all(|&attr| {
            attr.polarity()
                .satisfies(qos.attribute(attr), self.attribute(attr))
        })
    }

    /// Returns the attributes of `qos` that fail their requirement, in
    /// `{c, l, r}` order. Empty when the requirements are satisfied.
    ///
    /// Per Section IV.C the gateway reports the estimated unsatisfied QoS to
    /// the client, which decides whether to continue with the request.
    #[must_use]
    pub fn violations(&self, qos: &Qos) -> Vec<Attribute> {
        Attribute::ALL
            .iter()
            .copied()
            .filter(|&attr| {
                !attr
                    .polarity()
                    .satisfies(qos.attribute(attr), self.attribute(attr))
            })
            .collect()
    }
}

impl fmt::Display for Requirements {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[Qc={:.1}, Ql={:.1}, Qr={}]",
            self.cost, self.latency, self.reliability
        )
    }
}

/// Parses a requirement triple from `"cost,latency,reliability"` (e.g.
/// `"100,100,0.97"`), the format runtime control planes and CLIs use to
/// retune a live service's requirements.
impl std::str::FromStr for Requirements {
    type Err = QosError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(',').map(str::trim);
        let mut next = |what: &str| {
            parts
                .next()
                .filter(|p| !p.is_empty())
                .ok_or_else(|| QosError::Parse(format!("missing {what} in requirement {s:?}")))?
                .parse::<f64>()
                .map_err(|e| QosError::Parse(format!("bad {what} in requirement {s:?}: {e}")))
        };
        let cost = next("cost")?;
        let latency = next("latency")?;
        let reliability = next("reliability")?;
        if parts.next().is_some() {
            return Err(QosError::Parse(format!(
                "expected cost,latency,reliability — got extra fields in {s:?}"
            )));
        }
        Requirements::new(cost, latency, reliability)
    }
}

/// Environment-specific QoS of a set of equivalent microservices, indexed by
/// [`MsId`].
///
/// This is the table the gateway's *collector* maintains and the generator
/// consumes. Per Assumption 1, each id maps to the single best provider of
/// that microservice in the environment.
///
/// # Examples
///
/// ```
/// use qce_strategy::{EnvQos, MsId, Qos};
///
/// let env = EnvQos::from_qos(vec![
///     Qos::new(50.0, 50.0, 0.6)?,
///     Qos::new(100.0, 100.0, 0.6)?,
/// ]);
/// assert_eq!(env.len(), 2);
/// assert_eq!(env.get(MsId(1)).unwrap().cost, 100.0);
/// # Ok::<(), qce_strategy::QosError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnvQos {
    entries: Vec<Qos>,
}

impl EnvQos {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        EnvQos::default()
    }

    /// Creates a table from QoS entries; entry `i` describes `MsId(i)`.
    #[must_use]
    pub fn from_qos(entries: Vec<Qos>) -> Self {
        EnvQos { entries }
    }

    /// Builds a table from `(cost, latency, reliability)` triples, the format
    /// used in the paper's examples.
    ///
    /// # Errors
    ///
    /// Returns a [`QosError`] if any triple is out of domain.
    ///
    /// ```
    /// use qce_strategy::EnvQos;
    ///
    /// // Section III.D: microservices a–e of the fire-detection example.
    /// let env = EnvQos::from_triples(&[
    ///     (50.0, 50.0, 0.6),
    ///     (100.0, 100.0, 0.6),
    ///     (150.0, 150.0, 0.7),
    ///     (200.0, 200.0, 0.7),
    ///     (250.0, 250.0, 0.8),
    /// ])?;
    /// assert_eq!(env.len(), 5);
    /// # Ok::<(), qce_strategy::QosError>(())
    /// ```
    pub fn from_triples(triples: &[(f64, f64, f64)]) -> Result<Self, QosError> {
        let entries = triples
            .iter()
            .map(|&(c, l, r)| Qos::new(c, l, r))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(EnvQos { entries })
    }

    /// Returns the QoS of the given microservice, or `None` if the table has
    /// no entry for it.
    #[must_use]
    pub fn get(&self, id: MsId) -> Option<&Qos> {
        self.entries.get(id.0)
    }

    /// Appends an entry, returning the id it was assigned.
    pub fn push(&mut self, qos: Qos) -> MsId {
        self.entries.push(qos);
        MsId(self.entries.len() - 1)
    }

    /// Replaces the entry for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not present in the table.
    pub fn set(&mut self, id: MsId, qos: Qos) {
        self.entries[id.0] = qos;
    }

    /// Number of microservices described by this table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ids of all microservices in the table, in ascending order.
    #[must_use]
    pub fn ids(&self) -> Vec<MsId> {
        (0..self.entries.len()).map(MsId).collect()
    }

    /// Iterates over `(id, qos)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MsId, &Qos)> {
        self.entries.iter().enumerate().map(|(i, q)| (MsId(i), q))
    }
}

impl FromIterator<Qos> for EnvQos {
    fn from_iter<I: IntoIterator<Item = Qos>>(iter: I) -> Self {
        EnvQos {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<Qos> for EnvQos {
    fn extend<I: IntoIterator<Item = Qos>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requirements_parse_from_comma_triple() {
        let req: Requirements = "100, 80, 0.97".parse().unwrap();
        assert_eq!(req, Requirements::new(100.0, 80.0, 0.97).unwrap());
        assert!("100,80".parse::<Requirements>().is_err(), "missing field");
        assert!("100,80,0.97,1".parse::<Requirements>().is_err(), "extra");
        assert!("x,80,0.97".parse::<Requirements>().is_err(), "non-numeric");
        assert!("100,80,1.5".parse::<Requirements>().is_err(), "range check");
    }

    #[test]
    fn ms_id_display_round_trips() {
        for i in [0usize, 1, 25, 26, 100] {
            let id = MsId(i);
            assert_eq!(MsId::from_name(&id.to_string()), Some(id));
        }
        assert_eq!(MsId::from_name("A"), None);
        assert_eq!(MsId::from_name(""), None);
        assert_eq!(MsId::from_name("msx"), None);
    }

    #[test]
    fn reliability_validation() {
        assert!(Reliability::new(0.0).is_ok());
        assert!(Reliability::new(1.0).is_ok());
        assert!(Reliability::new(-0.01).is_err());
        assert!(Reliability::new(1.01).is_err());
        assert!(Reliability::new(f64::NAN).is_err());
        assert!(Reliability::new(f64::INFINITY).is_err());
    }

    #[test]
    fn reliability_percent_and_clamp() {
        let r = Reliability::from_percent(97.0).unwrap();
        assert!((r.value() - 0.97).abs() < 1e-12);
        assert_eq!(Reliability::clamped(1.5), Reliability::ALWAYS);
        assert_eq!(Reliability::clamped(-0.5), Reliability::NEVER);
        assert_eq!(Reliability::clamped(0.5).value(), 0.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn reliability_clamp_rejects_nan() {
        let _ = Reliability::clamped(f64::NAN);
    }

    #[test]
    fn qos_validation() {
        assert!(Qos::new(1.0, 1.0, 0.5).is_ok());
        assert!(Qos::new(-1.0, 1.0, 0.5).is_err());
        assert!(Qos::new(1.0, -1.0, 0.5).is_err());
        assert!(Qos::new(1.0, 1.0, 2.0).is_err());
        assert!(Qos::new(f64::NAN, 1.0, 0.5).is_err());
    }

    #[test]
    fn attribute_access() {
        let q = Qos::new(10.0, 20.0, 0.8).unwrap();
        assert_eq!(q.attribute(Attribute::Cost), 10.0);
        assert_eq!(q.attribute(Attribute::Latency), 20.0);
        assert_eq!(q.attribute(Attribute::Reliability), 0.8);
    }

    #[test]
    fn polarity_comparison() {
        use std::cmp::Ordering;
        assert_eq!(Polarity::LowerIsBetter.compare(5.0, 5.0), Ordering::Equal);
        assert!(Polarity::LowerIsBetter.satisfies(5.0, 5.0));
        assert!(Polarity::LowerIsBetter.satisfies(4.0, 5.0));
        assert!(!Polarity::LowerIsBetter.satisfies(6.0, 5.0));
        assert!(Polarity::HigherIsBetter.satisfies(0.98, 0.97));
        assert!(!Polarity::HigherIsBetter.satisfies(0.96, 0.97));
    }

    #[test]
    fn requirements_validation() {
        assert!(Requirements::new(100.0, 100.0, 0.97).is_ok());
        assert!(Requirements::new(0.0, 100.0, 0.97).is_err());
        assert!(Requirements::new(100.0, -5.0, 0.97).is_err());
        assert!(Requirements::new(100.0, 100.0, 0.0).is_err());
        assert!(Requirements::new(100.0, 100.0, 1.5).is_err());
    }

    #[test]
    fn requirements_satisfaction_and_violations() {
        let req = Requirements::new(100.0, 100.0, 0.97).unwrap();
        let exact = Qos::new(100.0, 100.0, 0.97).unwrap();
        assert!(req.satisfied_by(&exact), "boundary values satisfy");
        let bad = Qos::new(120.0, 90.0, 0.90).unwrap();
        assert_eq!(
            req.violations(&bad),
            vec![Attribute::Cost, Attribute::Reliability]
        );
        assert!(req.violations(&exact).is_empty());
    }

    #[test]
    fn env_qos_accessors() {
        let mut env = EnvQos::from_triples(&[(1.0, 2.0, 0.5), (3.0, 4.0, 0.6)]).unwrap();
        assert_eq!(env.len(), 2);
        assert!(!env.is_empty());
        assert_eq!(env.ids(), vec![MsId(0), MsId(1)]);
        assert!(env.get(MsId(2)).is_none());
        let id = env.push(Qos::new(5.0, 6.0, 0.7).unwrap());
        assert_eq!(id, MsId(2));
        env.set(MsId(0), Qos::new(9.0, 9.0, 0.9).unwrap());
        assert_eq!(env.get(MsId(0)).unwrap().cost, 9.0);
        let pairs: Vec<_> = env.iter().map(|(id, q)| (id.0, q.cost)).collect();
        assert_eq!(pairs, vec![(0, 9.0), (1, 3.0), (2, 5.0)]);
    }

    #[test]
    fn env_qos_collect_and_extend() {
        let qos = [
            Qos::new(1.0, 1.0, 0.5).unwrap(),
            Qos::new(2.0, 2.0, 0.6).unwrap(),
        ];
        let mut env: EnvQos = qos.iter().copied().collect();
        assert_eq!(env.len(), 2);
        env.extend(qos.iter().copied());
        assert_eq!(env.len(), 4);
    }

    #[test]
    fn display_impls() {
        let q = Qos::new(50.0, 60.0, 0.7).unwrap();
        assert_eq!(
            q.to_string(),
            "[cost=50.0, latency=60.0, reliability=70.0%]"
        );
        let req = Requirements::new(100.0, 100.0, 0.97).unwrap();
        assert!(req.to_string().contains("Qr=97.0%"));
        assert_eq!(Attribute::Cost.to_string(), "cost");
    }

    #[test]
    fn serde_round_trip() {
        let q = Qos::new(50.0, 60.0, 0.7).unwrap();
        let json = serde_json::to_string(&q).unwrap();
        let back: Qos = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
        let env = EnvQos::from_qos(vec![q]);
        let json = serde_json::to_string(&env).unwrap();
        let back: EnvQos = serde_json::from_str(&json).unwrap();
        assert_eq!(env, back);
    }
}

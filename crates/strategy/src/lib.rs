//! # qce-strategy
//!
//! Core algorithms of *"Win with What You Have: QoS-Consistent Edge
//! Services with Unreliable and Dynamic Resources"* (Song & Tilevich,
//! ICDCS 2020): an algebra of **execution strategies** over *equivalent
//! microservices*, plus enumeration, QoS estimation, and QoS-driven
//! strategy generation.
//!
//! Equivalent microservices satisfy the same application requirement by
//! different means (a camera, a smoke sensor, and a flame sensor can all
//! detect fire). An *execution strategy* arranges them with two operators:
//!
//! * `a - b` — **sequential** (fail-over): run `a`; only if it fails, run `b`;
//! * `a * b` — **parallel** (speculative): run both; first success wins.
//!
//! Any mixture is a valid strategy (`c*(a*b-d*e)`, …), and different
//! mixtures deliver very different cost/latency/reliability trade-offs.
//! This crate can:
//!
//! * parse, print, and canonically compare strategies ([`Strategy`]);
//! * enumerate or uniformly sample every distinct strategy over `M`
//!   microservices ([`enumerate`] — Table I of the paper);
//! * estimate the average QoS of a strategy from per-microservice QoS
//!   ([`estimate`] — the paper's Algorithm 1, plus the folding baseline it
//!   is compared against);
//! * rank strategies with the requirement-normalized utility index
//!   ([`UtilityIndex`] — Equation 1) and Pareto filtering ([`pareto`]);
//! * generate the strategy that best fits given QoS requirements
//!   ([`Generator`] — Algorithm 2: exhaustive search below a threshold,
//!   greedy approximation above it);
//! * compose per-stage QoS across multi-stage dataflows ([`compose`]).
//!
//! ## Quick start
//!
//! ```
//! use qce_strategy::{EnvQos, Generator, Requirements, Strategy};
//!
//! // Five equivalent fire-detection microservices with environment-specific
//! // QoS [cost, latency, reliability] (paper Section III.D):
//! let env = EnvQos::from_triples(&[
//!     (50.0, 50.0, 0.6),
//!     (100.0, 100.0, 0.6),
//!     (150.0, 150.0, 0.7),
//!     (200.0, 200.0, 0.7),
//!     (250.0, 250.0, 0.8),
//! ])?;
//!
//! // The service requires: cost ≤ 100, latency ≤ 100 ms, reliability ≥ 97%.
//! let req = Requirements::new(100.0, 100.0, 0.97)?;
//!
//! // Synthesize the best execution strategy for *this* environment.
//! let generated = Generator::default().generate(&env, &env.ids(), &req)?;
//! println!("chosen strategy: {generated}");
//!
//! // Compare against MOLE's predefined patterns.
//! let failover = qce_strategy::estimate::estimate(&Strategy::parse("a-b-c-d-e")?, &env)?;
//! assert!(generated.qos.latency <= failover.latency);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The stochastic simulator that validates these estimates lives in the
//! companion crate `qce-sim`; the threaded gateway runtime (feedback loop,
//! collector, service market) lives in `qce-runtime`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod backend;
mod beam;
pub mod compose;
pub mod enumerate;
pub mod error;
pub mod estimate;
pub mod exec;
pub mod expr;
pub mod generate;
pub mod pareto;
pub mod plan_cache;
pub mod qos;
mod synth;
pub mod utility;

pub use backend::{
    BackendChoice, BackendId, BackendSelector, BeamBackend, ExhaustiveBackend, GreedyBackend,
    SearchBackend, DEFAULT_BEAM_WIDTH,
};
pub use enumerate::StrategyIter;
pub use error::{BuildError, EstimateError, GenerateError, ParseError, QosError};
pub use estimate::{Algorithm1, Estimator, Folding};
pub use exec::{CompletionPolicy, PruneReason};
pub use expr::{Node, Strategy};
pub use generate::{Generated, Generator, GeneratorBuilder, Method, SynthesisReport};
pub use plan_cache::{PlanCache, PlanCacheConfig, PlanCacheHub, PlanCacheStats, PlanSource};
pub use qos::{Attribute, EnvQos, MsId, Polarity, Qos, Reliability, Requirements};
pub use utility::UtilityIndex;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Strategy>();
        assert_send_sync::<Node>();
        assert_send_sync::<Qos>();
        assert_send_sync::<EnvQos>();
        assert_send_sync::<Requirements>();
        assert_send_sync::<UtilityIndex>();
        assert_send_sync::<Generator>();
        assert_send_sync::<Generated>();
        assert_send_sync::<GeneratorBuilder>();
        assert_send_sync::<SynthesisReport>();
        assert_send_sync::<StrategyIter>();
        assert_send_sync::<Algorithm1>();
        assert_send_sync::<Folding>();
        assert_send_sync::<BackendChoice>();
        assert_send_sync::<BackendId>();
        assert_send_sync::<BackendSelector>();
        assert_send_sync::<Box<dyn SearchBackend>>();
    }

    #[test]
    fn crate_level_example_compiles_and_runs() {
        let env =
            EnvQos::from_triples(&[(50.0, 50.0, 0.6), (100.0, 100.0, 0.6), (150.0, 150.0, 0.7)])
                .unwrap();
        let req = Requirements::new(100.0, 100.0, 0.97).unwrap();
        let generated = Generator::default()
            .generate(&env, &env.ids(), &req)
            .unwrap();
        assert_eq!(generated.strategy.len(), 3);
    }
}

//! The QoS utility index (paper Section IV.C, Equation 1).
//!
//! Edge applications often cannot pick among alternative services the way
//! cloud applications do, so the binary "SLA satisfied / not satisfied"
//! model is replaced by a graded *utility index*. For each attribute `n`
//! with requirement `Q_n` and estimated value `q_n(s)`:
//!
//! ```text
//!          ⎧ −k · |q_n − Q_n| / Q_n   if q_n ⪯ Q_n   (requirement missed)
//! u_n(s) = ⎨
//!          ⎩   |q_n − Q_n| / Q_n      if q_n ≻ Q_n   (requirement exceeded)
//! ```
//!
//! with `k > 1` penalizing unsatisfied attributes more steeply than
//! over-delivery is rewarded. The overall index is `U(s) = Σ_n u_n(s)`.
//! Unlike the normalization of prior work (min–max over all candidate
//! services), this normalizes against the *requirement*, so outlier
//! microservices cannot skew the scale.

use serde::{Deserialize, Serialize};

use crate::error::QosError;
use crate::qos::{Attribute, Polarity, Qos, Requirements};

/// Default penalty multiplier used when none is specified.
///
/// The paper's walk-through in Section IV.C uses `k = 2` and `k = 3`; 2 is
/// the smallest integer satisfying `k > 1`.
pub const DEFAULT_PENALTY: f64 = 2.0;

/// The utility index of Equation 1, parameterized by the penalty factor
/// `k`.
///
/// # Examples
///
/// Section IV.C's illustration: `s₁` meets every requirement exactly
/// (utility 0); `s₂` improves cost and reliability by 10% each at the
/// expense of 10% extra latency — worth 0 when `k = 2` but negative when
/// `k = 3`:
///
/// ```
/// use qce_strategy::{Qos, Requirements, UtilityIndex};
///
/// let req = Requirements::new(100.0, 100.0, 0.5)?;
/// let s1 = Qos::new(100.0, 100.0, 0.5)?;
/// let s2 = Qos::new(90.0, 110.0, 0.55)?;
///
/// let k2 = UtilityIndex::new(2.0)?;
/// let k3 = UtilityIndex::new(3.0)?;
/// assert_eq!(k2.utility(&s1, &req), 0.0);
/// assert!((k2.utility(&s2, &req) - 0.0).abs() < 1e-12);
/// assert!((k3.utility(&s2, &req) + 0.1).abs() < 1e-12);
/// # Ok::<(), qce_strategy::QosError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilityIndex {
    k: f64,
}

impl UtilityIndex {
    /// Creates a utility index with penalty factor `k`.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::InvalidPenalty`] unless `k` is finite and
    /// greater than 1.
    pub fn new(k: f64) -> Result<Self, QosError> {
        if k.is_finite() && k > 1.0 {
            Ok(UtilityIndex { k })
        } else {
            Err(QosError::InvalidPenalty(k))
        }
    }

    /// The penalty factor `k`.
    #[must_use]
    pub const fn k(&self) -> f64 {
        self.k
    }

    /// Utility contribution `u_n(s)` of a single attribute.
    ///
    /// `value` and `requirement` must share the attribute's unit
    /// (reliability as a probability).
    #[must_use]
    pub fn attribute_utility(&self, attr: Attribute, value: f64, requirement: f64) -> f64 {
        debug_assert!(requirement > 0.0, "requirements are validated positive");
        let distance = (value - requirement).abs() / requirement;
        match attr.polarity().compare(value, requirement) {
            std::cmp::Ordering::Greater => distance,
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Less => -self.k * distance,
        }
    }

    /// Overall utility `U(s) = Σ_n u_n(s)` of a QoS triple against the
    /// requirements.
    #[must_use]
    pub fn utility(&self, qos: &Qos, req: &Requirements) -> f64 {
        Attribute::ALL
            .iter()
            .map(|&attr| self.attribute_utility(attr, qos.attribute(attr), req.attribute(attr)))
            .sum()
    }

    /// Per-attribute breakdown of the utility, in `{c, l, r}` order.
    #[must_use]
    pub fn breakdown(&self, qos: &Qos, req: &Requirements) -> [(Attribute, f64); 3] {
        let mut out = [(Attribute::Cost, 0.0); 3];
        for (slot, &attr) in out.iter_mut().zip(Attribute::ALL.iter()) {
            *slot = (
                attr,
                self.attribute_utility(attr, qos.attribute(attr), req.attribute(attr)),
            );
        }
        out
    }
}

impl Default for UtilityIndex {
    fn default() -> Self {
        UtilityIndex { k: DEFAULT_PENALTY }
    }
}

/// Polarity-aware "is `lhs` at least as good as `rhs`" comparison for a
/// whole QoS triple: true iff every attribute of `lhs` is no worse.
///
/// This is the dominance test underlying Pareto optimality (see
/// [`pareto`](crate::pareto)).
#[must_use]
pub fn no_worse_than(lhs: &Qos, rhs: &Qos) -> bool {
    Attribute::ALL.iter().all(|&attr| {
        attr.polarity()
            .compare(lhs.attribute(attr), rhs.attribute(attr))
            != std::cmp::Ordering::Less
    })
}

/// Returns `true` when `lhs` Pareto-dominates `rhs`: no attribute is worse
/// and at least one is strictly better.
#[must_use]
pub fn dominates(lhs: &Qos, rhs: &Qos) -> bool {
    let mut strictly_better = false;
    for &attr in &Attribute::ALL {
        match attr
            .polarity()
            .compare(lhs.attribute(attr), rhs.attribute(attr))
        {
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Greater => strictly_better = true,
            std::cmp::Ordering::Equal => {}
        }
    }
    strictly_better
}

/// Convenience: which of `Polarity`'s categories an attribute's improvement
/// direction falls into, as used when printing reports.
#[must_use]
pub fn polarity_of(attr: Attribute) -> Polarity {
    attr.polarity()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> Requirements {
        Requirements::new(100.0, 100.0, 0.97).unwrap()
    }

    #[test]
    fn penalty_validation() {
        assert!(UtilityIndex::new(2.0).is_ok());
        assert!(UtilityIndex::new(1.0).is_err());
        assert!(UtilityIndex::new(0.5).is_err());
        assert!(UtilityIndex::new(f64::NAN).is_err());
        assert!(UtilityIndex::new(f64::INFINITY).is_err());
        assert_eq!(UtilityIndex::default().k(), DEFAULT_PENALTY);
    }

    #[test]
    fn exact_satisfaction_scores_zero() {
        let ui = UtilityIndex::default();
        let q = Qos::new(100.0, 100.0, 0.97).unwrap();
        assert_eq!(ui.utility(&q, &req()), 0.0);
    }

    #[test]
    fn over_delivery_rewarded_linearly() {
        let ui = UtilityIndex::default();
        // 20% cheaper, everything else exact: u = +0.2.
        let q = Qos::new(80.0, 100.0, 0.97).unwrap();
        assert!((ui.utility(&q, &req()) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn violation_penalized_k_times() {
        let ui = UtilityIndex::new(3.0).unwrap();
        // 20% over the cost budget: u = -3 * 0.2 = -0.6.
        let q = Qos::new(120.0, 100.0, 0.97).unwrap();
        assert!((ui.utility(&q, &req()) + 0.6).abs() < 1e-12);
    }

    #[test]
    fn reliability_direction_is_higher_is_better() {
        let ui = UtilityIndex::new(2.0).unwrap();
        let better = Qos::new(100.0, 100.0, 0.99).unwrap();
        let worse = Qos::new(100.0, 100.0, 0.90).unwrap();
        assert!(ui.utility(&better, &req()) > 0.0);
        assert!(ui.utility(&worse, &req()) < 0.0);
    }

    #[test]
    fn section_4c_worked_example() {
        // s2 improves cost & reliability by 5% each, pays 10% latency:
        // with any k > 1, U(s2) = 0.05 + 0.05 - k*0.10 < 0 = U(s1).
        let r = Requirements::new(100.0, 100.0, 0.5).unwrap();
        let s1 = Qos::new(100.0, 100.0, 0.5).unwrap();
        let s2 = Qos::new(95.0, 110.0, 0.525).unwrap();
        for k in [2.0, 3.0, 10.0] {
            let ui = UtilityIndex::new(k).unwrap();
            assert!(ui.utility(&s1, &r) > ui.utility(&s2, &r), "k={k}");
        }
    }

    #[test]
    fn breakdown_sums_to_utility() {
        let ui = UtilityIndex::new(2.5).unwrap();
        let q = Qos::new(140.0, 60.0, 0.95).unwrap();
        let total: f64 = ui.breakdown(&q, &req()).iter().map(|(_, u)| u).sum();
        assert!((total - ui.utility(&q, &req())).abs() < 1e-12);
    }

    #[test]
    fn dominance_relation() {
        let q1 = Qos::new(50.0, 50.0, 0.9).unwrap();
        let q2 = Qos::new(60.0, 50.0, 0.9).unwrap();
        let q3 = Qos::new(40.0, 70.0, 0.9).unwrap();
        assert!(dominates(&q1, &q2));
        assert!(!dominates(&q2, &q1));
        assert!(!dominates(&q1, &q3), "incomparable");
        assert!(!dominates(&q3, &q1), "incomparable");
        assert!(!dominates(&q1, &q1), "no self-domination");
        assert!(no_worse_than(&q1, &q1));
        assert!(no_worse_than(&q1, &q2));
        assert!(!no_worse_than(&q3, &q1));
    }

    #[test]
    fn higher_utility_for_dominating_qos() {
        // Utility is monotone with respect to dominance.
        let ui = UtilityIndex::default();
        let better = Qos::new(50.0, 90.0, 0.99).unwrap();
        let worse = Qos::new(70.0, 95.0, 0.98).unwrap();
        assert!(dominates(&better, &worse));
        assert!(ui.utility(&better, &req()) > ui.utility(&worse, &req()));
    }
}

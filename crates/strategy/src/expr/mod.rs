//! The execution-strategy expression language (paper Section III.A).
//!
//! * [`ast`] — canonical n-ary strategy trees and the [`Strategy`] type;
//! * `parser` — the textual notation (`a-b*c`, `(a-b)*c`, …), exposed via
//!   [`Strategy::parse`];
//! * `display` — minimal-parenthesis rendering via `Display` and
//!   [`Strategy::to_string_with_names`].

pub mod ast;
mod display;
mod parser;

pub use ast::{Node, Strategy};
pub use parser::MAX_NESTING_DEPTH;

//! Canonical abstract syntax tree for execution strategies.
//!
//! A strategy expression follows the paper's EBNF (Fig. 2):
//!
//! ```text
//! es ::= eqvFunc | es - es | es * es | ( es )
//! ```
//!
//! Internally we store the *canonical form* implied by the paper's three
//! observations (Section III.A):
//!
//! * Observation 1 — `*` is commutative, `-` is not: parallel children are
//!   kept sorted in a deterministic order.
//! * Observation 2 — both operators are associative: nodes are n-ary and
//!   flattened, so a `Seq` never directly contains a `Seq` and a `Par` never
//!   directly contains a `Par`.
//! * Observation 3 — parentheses are only semantically required around a
//!   sequential sub-expression that is an operand of `*`; the canonical tree
//!   encodes grouping structurally, and [`Display`](std::fmt::Display)
//!   re-inserts exactly the required parentheses.
//!
//! Two strategies compare equal with `==` if and only if they express the
//! same execution control logic.

use std::collections::BTreeSet;

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::error::{BuildError, ParseError};
use crate::MsId;

/// A node of a canonical strategy tree.
///
/// The derived [`Ord`] provides the deterministic ordering used to sort the
/// children of parallel nodes: leaves sort before sequential nodes, which
/// sort before parallel nodes; ties break lexicographically on children.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Node {
    /// A single equivalent microservice.
    Leaf(MsId),
    /// Sequential composition: execute children left to right, moving to the
    /// next child only when the previous one failed. Invariant: at least two
    /// children, none of which is itself a `Seq`.
    Seq(Vec<Node>),
    /// Parallel composition: execute all children simultaneously, finishing
    /// as soon as any succeeds. Invariant: at least two children, none of
    /// which is itself a `Par`, kept in sorted order.
    Par(Vec<Node>),
}

impl Node {
    /// Number of microservice leaves in this subtree.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Seq(children) | Node::Par(children) => {
                children.iter().map(Node::leaf_count).sum()
            }
        }
    }

    /// Depth of this subtree (a leaf has depth 1).
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Seq(children) | Node::Par(children) => {
                1 + children.iter().map(Node::depth).max().unwrap_or(0)
            }
        }
    }

    /// Appends the ids of all leaves, left to right, to `out`.
    pub(crate) fn collect_leaves(&self, out: &mut Vec<MsId>) {
        match self {
            Node::Leaf(id) => out.push(*id),
            Node::Seq(children) | Node::Par(children) => {
                for child in children {
                    child.collect_leaves(out);
                }
            }
        }
    }

    /// Flattens directly-nested nodes of the same kind and sorts parallel
    /// children, producing the canonical form of this subtree.
    fn canonicalize(self) -> Node {
        match self {
            Node::Leaf(id) => Node::Leaf(id),
            Node::Seq(children) => {
                let mut flat = Vec::with_capacity(children.len());
                for child in children {
                    match child.canonicalize() {
                        Node::Seq(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("len checked")
                } else {
                    Node::Seq(flat)
                }
            }
            Node::Par(children) => {
                let mut flat = Vec::with_capacity(children.len());
                for child in children {
                    match child.canonicalize() {
                        Node::Par(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("len checked")
                } else {
                    flat.sort();
                    Node::Par(flat)
                }
            }
        }
    }

    /// Rewrites every leaf id through `f`.
    #[must_use]
    pub(crate) fn map_ids(&self, f: &impl Fn(MsId) -> MsId) -> Node {
        match self {
            Node::Leaf(id) => Node::Leaf(f(*id)),
            Node::Seq(children) => Node::Seq(children.iter().map(|c| c.map_ids(f)).collect()),
            Node::Par(children) => Node::Par(children.iter().map(|c| c.map_ids(f)).collect()),
        }
    }
}

/// An execution strategy over a set of distinct equivalent microservices, in
/// canonical form.
///
/// Construct strategies with [`Strategy::leaf`], [`Strategy::seq`],
/// [`Strategy::par`], the chaining combinators [`Strategy::then`] /
/// [`Strategy::race`], or by parsing the paper's textual notation with
/// [`Strategy::parse`](crate::Strategy::parse).
///
/// Equality is semantic: `a*b == b*a` while `a-b != b-a`, exactly as in the
/// paper's Observation 1.
///
/// # Examples
///
/// ```
/// use qce_strategy::Strategy;
///
/// let failover = Strategy::parse("a-b-c-d-e")?;
/// let parallel = Strategy::parse("a*b*c*d*e")?;
/// let custom = Strategy::parse("c*(a*b-d*e)")?;
///
/// assert_eq!(failover.len(), 5);
/// assert!(failover.is_failover());
/// assert!(parallel.is_parallel());
/// assert_eq!(custom.to_string(), "c*(a*b-d*e)");
/// assert_eq!(custom, Strategy::parse("c * (b*a - e*d)")?);
/// # Ok::<(), qce_strategy::ParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Strategy {
    root: Node,
}

impl Strategy {
    /// Creates a strategy consisting of a single microservice.
    ///
    /// ```
    /// use qce_strategy::{MsId, Strategy};
    /// let s = Strategy::leaf(MsId(0));
    /// assert_eq!(s.to_string(), "a");
    /// ```
    #[must_use]
    pub fn leaf(id: MsId) -> Self {
        Strategy {
            root: Node::Leaf(id),
        }
    }

    /// Creates the sequential (fail-over) composition of `parts`, preserving
    /// their order.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::TooFewOperands`] for fewer than two parts and
    /// [`BuildError::DuplicateMicroservice`] if any microservice appears in
    /// more than one part.
    ///
    /// ```
    /// use qce_strategy::{MsId, Strategy};
    /// let s = Strategy::seq((0..3).map(|i| Strategy::leaf(MsId(i))))?;
    /// assert_eq!(s.to_string(), "a-b-c");
    /// # Ok::<(), qce_strategy::BuildError>(())
    /// ```
    pub fn seq<I: IntoIterator<Item = Strategy>>(parts: I) -> Result<Self, BuildError> {
        Self::combine(parts, Node::Seq)
    }

    /// Creates the parallel (speculative) composition of `parts`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Strategy::seq`].
    ///
    /// ```
    /// use qce_strategy::{MsId, Strategy};
    /// let s = Strategy::par((0..3).map(|i| Strategy::leaf(MsId(i))))?;
    /// assert_eq!(s.to_string(), "a*b*c");
    /// # Ok::<(), qce_strategy::BuildError>(())
    /// ```
    pub fn par<I: IntoIterator<Item = Strategy>>(parts: I) -> Result<Self, BuildError> {
        Self::combine(parts, Node::Par)
    }

    fn combine<I: IntoIterator<Item = Strategy>>(
        parts: I,
        make: impl FnOnce(Vec<Node>) -> Node,
    ) -> Result<Self, BuildError> {
        let nodes: Vec<Node> = parts.into_iter().map(|s| s.root).collect();
        if nodes.len() < 2 {
            return Err(BuildError::TooFewOperands { got: nodes.len() });
        }
        Self::from_node(make(nodes))
    }

    /// Canonicalizes and validates an arbitrary [`Node`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateMicroservice`] if a microservice
    /// appears more than once, or [`BuildError::TooFewOperands`] if a
    /// composite node is empty.
    pub fn from_node(node: Node) -> Result<Self, BuildError> {
        if let Node::Seq(children) | Node::Par(children) = &node {
            if children.is_empty() {
                return Err(BuildError::TooFewOperands { got: 0 });
            }
        }
        let root = node.canonicalize();
        let mut leaves = Vec::new();
        root.collect_leaves(&mut leaves);
        let mut seen = BTreeSet::new();
        for id in &leaves {
            if !seen.insert(*id) {
                return Err(BuildError::DuplicateMicroservice(*id));
            }
        }
        Ok(Strategy { root })
    }

    /// Chains `next` after `self` sequentially: `self - next`.
    ///
    /// This is the `es₁ ← es - M'(i)` step of the paper's Algorithm 2.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateMicroservice`] if `next` shares a
    /// microservice with `self`.
    ///
    /// ```
    /// use qce_strategy::{MsId, Strategy};
    /// let s = Strategy::leaf(MsId(0)).then(Strategy::leaf(MsId(1)))?;
    /// assert_eq!(s.to_string(), "a-b");
    /// # Ok::<(), qce_strategy::BuildError>(())
    /// ```
    pub fn then(self, next: Strategy) -> Result<Self, BuildError> {
        Self::from_node(Node::Seq(vec![self.root, next.root]))
    }

    /// Races `other` in parallel with `self`: `(self) * other`.
    ///
    /// This is the `es₂ ← (es) * M'(i)` step of the paper's Algorithm 2.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateMicroservice`] if `other` shares a
    /// microservice with `self`.
    ///
    /// ```
    /// use qce_strategy::Strategy;
    /// let s = Strategy::parse("a-b")?.race(Strategy::parse("c")?)?;
    /// assert_eq!(s.to_string(), "c*(a-b)");
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn race(self, other: Strategy) -> Result<Self, BuildError> {
        Self::from_node(Node::Par(vec![self.root, other.root]))
    }

    /// The canonical root node of the strategy tree.
    #[must_use]
    pub fn node(&self) -> &Node {
        &self.root
    }

    /// Number of microservices in the strategy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.root.leaf_count()
    }

    /// Always `false`: a strategy contains at least one microservice.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Tree depth; a single microservice has depth 1.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Ids of the microservices in the strategy, left to right.
    ///
    /// ```
    /// use qce_strategy::{MsId, Strategy};
    /// let s = Strategy::parse("b-a*c").unwrap();
    /// assert_eq!(s.leaves(), vec![MsId(1), MsId(0), MsId(2)]);
    /// ```
    #[must_use]
    pub fn leaves(&self) -> Vec<MsId> {
        let mut out = Vec::new();
        self.root.collect_leaves(&mut out);
        out
    }

    /// Returns `true` if the strategy uses the given microservice.
    #[must_use]
    pub fn contains(&self, id: MsId) -> bool {
        self.leaves().contains(&id)
    }

    /// Returns `true` for a pure fail-over strategy (`a-b-…` or a single
    /// microservice) — one of MOLE's two predefined patterns.
    #[must_use]
    pub fn is_failover(&self) -> bool {
        match &self.root {
            Node::Leaf(_) => true,
            Node::Seq(children) => children.iter().all(|c| matches!(c, Node::Leaf(_))),
            Node::Par(_) => false,
        }
    }

    /// Returns `true` for a pure speculative-parallel strategy (`a*b*…` or a
    /// single microservice) — the other predefined MOLE pattern.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        match &self.root {
            Node::Leaf(_) => true,
            Node::Par(children) => children.iter().all(|c| matches!(c, Node::Leaf(_))),
            Node::Seq(_) => false,
        }
    }

    /// Returns a copy of the strategy with every microservice id rewritten
    /// through `f`, re-canonicalized under the new ids.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateMicroservice`] if `f` maps two distinct
    /// ids to the same id.
    ///
    /// ```
    /// use qce_strategy::{MsId, Strategy};
    /// let s = Strategy::parse("a-b").unwrap();
    /// let shifted = s.map_ids(|id| MsId(id.index() + 3)).unwrap();
    /// assert_eq!(shifted.to_string(), "d-e");
    /// ```
    pub fn map_ids(&self, f: impl Fn(MsId) -> MsId) -> Result<Self, BuildError> {
        Self::from_node(self.root.map_ids(&f))
    }
}

impl From<MsId> for Strategy {
    fn from(id: MsId) -> Self {
        Strategy::leaf(id)
    }
}

impl std::str::FromStr for Strategy {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Strategy::parse(s)
    }
}

impl Serialize for Strategy {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl<'de> Deserialize<'de> for Strategy {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let text = String::deserialize(deserializer)?;
        Strategy::parse(&text).map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(i: usize) -> Strategy {
        Strategy::leaf(MsId(i))
    }

    #[test]
    fn leaf_properties() {
        let s = leaf(0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.depth(), 1);
        assert!(s.is_failover() && s.is_parallel());
        assert!(s.contains(MsId(0)));
        assert!(!s.contains(MsId(1)));
        assert!(!s.is_empty());
    }

    #[test]
    fn seq_requires_two_operands() {
        assert_eq!(
            Strategy::seq([leaf(0)]).unwrap_err(),
            BuildError::TooFewOperands { got: 1 }
        );
        assert_eq!(
            Strategy::par(std::iter::empty()).unwrap_err(),
            BuildError::TooFewOperands { got: 0 }
        );
    }

    #[test]
    fn duplicate_microservice_rejected() {
        assert_eq!(
            Strategy::seq([leaf(0), leaf(0)]).unwrap_err(),
            BuildError::DuplicateMicroservice(MsId(0))
        );
        let ab = Strategy::par([leaf(0), leaf(1)]).unwrap();
        assert!(ab.clone().then(leaf(1)).is_err());
        let cd = Strategy::seq([leaf(2), leaf(0)]).unwrap();
        assert!(ab.race(cd).is_err());
    }

    #[test]
    fn observation_1_parallel_commutative_sequential_not() {
        let ab_par = Strategy::par([leaf(0), leaf(1)]).unwrap();
        let ba_par = Strategy::par([leaf(1), leaf(0)]).unwrap();
        assert_eq!(ab_par, ba_par);

        let ab_seq = Strategy::seq([leaf(0), leaf(1)]).unwrap();
        let ba_seq = Strategy::seq([leaf(1), leaf(0)]).unwrap();
        assert_ne!(ab_seq, ba_seq);
    }

    #[test]
    fn observation_2_associativity() {
        // a-b-c == (a-b)-c == a-(b-c)
        let flat = Strategy::seq([leaf(0), leaf(1), leaf(2)]).unwrap();
        let left = Strategy::seq([Strategy::seq([leaf(0), leaf(1)]).unwrap(), leaf(2)]).unwrap();
        let right = Strategy::seq([leaf(0), Strategy::seq([leaf(1), leaf(2)]).unwrap()]).unwrap();
        assert_eq!(flat, left);
        assert_eq!(flat, right);

        // a*b*c == (a*b)*c == a*(b*c)
        let flat = Strategy::par([leaf(0), leaf(1), leaf(2)]).unwrap();
        let left = Strategy::par([Strategy::par([leaf(0), leaf(1)]).unwrap(), leaf(2)]).unwrap();
        let right = Strategy::par([leaf(0), Strategy::par([leaf(1), leaf(2)]).unwrap()]).unwrap();
        assert_eq!(flat, left);
        assert_eq!(flat, right);
    }

    #[test]
    fn observation_3_grouping_is_structural() {
        // (a-b)*c != a-b*c
        let grouped = Strategy::par([Strategy::seq([leaf(0), leaf(1)]).unwrap(), leaf(2)]).unwrap();
        let ungrouped =
            Strategy::seq([leaf(0), Strategy::par([leaf(1), leaf(2)]).unwrap()]).unwrap();
        assert_ne!(grouped, ungrouped);

        // a-(b*c) == a-b*c : the Par grouping inside Seq needs no parens
        let explicit =
            Strategy::seq([leaf(0), Strategy::par([leaf(1), leaf(2)]).unwrap()]).unwrap();
        assert_eq!(explicit, ungrouped);
    }

    #[test]
    fn canonical_invariants_hold() {
        let s = Strategy::seq([
            leaf(3),
            Strategy::seq([leaf(1), Strategy::par([leaf(0), leaf(2)]).unwrap()]).unwrap(),
        ])
        .unwrap();
        // Flattened: Seq[d, b, a*c]
        match s.node() {
            Node::Seq(children) => {
                assert_eq!(children.len(), 3);
                assert!(children.iter().all(|c| !matches!(c, Node::Seq(_))));
            }
            other => panic!("expected Seq, got {other:?}"),
        }
        assert_eq!(s.leaves(), vec![MsId(3), MsId(1), MsId(0), MsId(2)]);
    }

    #[test]
    fn failover_and_parallel_classification() {
        let fo = Strategy::seq([leaf(0), leaf(1), leaf(2)]).unwrap();
        assert!(fo.is_failover());
        assert!(!fo.is_parallel());
        let sp = Strategy::par([leaf(0), leaf(1), leaf(2)]).unwrap();
        assert!(sp.is_parallel());
        assert!(!sp.is_failover());
        let mixed = Strategy::seq([leaf(0), Strategy::par([leaf(1), leaf(2)]).unwrap()]).unwrap();
        assert!(!mixed.is_failover());
        assert!(!mixed.is_parallel());
    }

    #[test]
    fn depth_and_len() {
        let s = Strategy::par([
            leaf(2),
            Strategy::seq([
                Strategy::par([leaf(0), leaf(1)]).unwrap(),
                Strategy::par([leaf(3), leaf(4)]).unwrap(),
            ])
            .unwrap(),
        ])
        .unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.depth(), 4);
    }

    #[test]
    fn map_ids_round_trip_and_collision() {
        let s = Strategy::seq([leaf(0), Strategy::par([leaf(1), leaf(2)]).unwrap()]).unwrap();
        let shifted = s.map_ids(|id| MsId(id.index() + 10)).unwrap();
        let back = shifted.map_ids(|id| MsId(id.index() - 10)).unwrap();
        assert_eq!(s, back);
        assert!(s.map_ids(|_| MsId(0)).is_err());
    }

    #[test]
    fn from_msid_conversion() {
        let s: Strategy = MsId(4).into();
        assert_eq!(s, leaf(4));
    }

    #[test]
    fn serde_as_expression_string() {
        let s = Strategy::par([Strategy::seq([leaf(0), leaf(1)]).unwrap(), leaf(2)]).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "\"c*(a-b)\"");
        let back: Strategy = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        assert!(serde_json::from_str::<Strategy>("\"a-a\"").is_err());
    }

    #[test]
    fn node_ordering_is_deterministic() {
        let a = Node::Leaf(MsId(0));
        let seq = Node::Seq(vec![Node::Leaf(MsId(1)), Node::Leaf(MsId(2))]);
        let par = Node::Par(vec![Node::Leaf(MsId(3)), Node::Leaf(MsId(4))]);
        assert!(a < seq);
        assert!(seq < par);
    }
}

//! Parser for the paper's textual strategy notation.
//!
//! Grammar (Fig. 2 of the paper, with the precedence implied by
//! Observation 3 and the Fig. 3 examples — `*` binds tighter than `-`):
//!
//! ```text
//! expr   := term ( '-' term )*
//! term   := factor ( '*' factor )*
//! factor := identifier | '(' expr ')'
//! ```
//!
//! So `a - b * c` parses as `a - (b * c)`: execute `a` first, then `b` and
//! `c` in parallel. Whitespace is insignificant. Identifiers default to the
//! paper's single letters `a`–`z` (and the `ms<n>` form for larger ids);
//! [`parse_with_names`] resolves arbitrary microservice names instead.

use crate::error::ParseError;
use crate::expr::ast::{Node, Strategy};
use crate::MsId;

/// Maximum parenthesis nesting depth the parser accepts.
///
/// The parser is recursive descent, and recursion only deepens through
/// `'(' expr ')'`, so bounding the parenthesis depth bounds the stack.
/// Exceeding the limit yields [`ParseError::TooDeep`] instead of a stack
/// overflow on adversarial input like `((((…`.
pub const MAX_NESTING_DEPTH: usize = 64;

impl Strategy {
    /// Parses a strategy expression using the default microservice names
    /// (`a`–`z`, `ms<n>`).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first syntax problem, an
    /// unknown identifier, or a structural violation (duplicate
    /// microservice).
    ///
    /// # Examples
    ///
    /// ```
    /// use qce_strategy::Strategy;
    ///
    /// // The four example strategies of the paper's Fig. 3:
    /// let s1 = Strategy::parse("a-b-c-d-e")?;        // fail-over
    /// let s2 = Strategy::parse("a*b*c*d*e")?;        // speculative parallel
    /// let s3 = Strategy::parse("a*b - c*d*e")?;      // custom
    /// let s4 = Strategy::parse("a - (b*c) - d - e")?; // parens removable here
    /// assert_eq!(s4, Strategy::parse("a-b*c-d-e")?);
    /// # Ok::<(), qce_strategy::ParseError>(())
    /// ```
    pub fn parse(input: &str) -> Result<Self, ParseError> {
        Self::parse_with_resolver(input, &|name| MsId::from_name(name))
    }

    /// Parses a strategy expression whose identifiers are resolved against
    /// `names`: the identifier equal to `names[i]` maps to `MsId(i)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Strategy::parse`]; an identifier not present in
    /// `names` yields [`ParseError::UnknownMicroservice`].
    ///
    /// ```
    /// use qce_strategy::{MsId, Strategy};
    ///
    /// let names = ["readTempSensor", "estTemp", "readLocTemp"];
    /// let s = Strategy::parse_with_names("readTempSensor-estTemp-readLocTemp", &names)?;
    /// assert_eq!(s.leaves(), vec![MsId(0), MsId(1), MsId(2)]);
    /// # Ok::<(), qce_strategy::ParseError>(())
    /// ```
    pub fn parse_with_names<S: AsRef<str>>(input: &str, names: &[S]) -> Result<Self, ParseError> {
        Self::parse_with_resolver(input, &|ident| {
            names.iter().position(|n| n.as_ref() == ident).map(MsId)
        })
    }

    fn parse_with_resolver(
        input: &str,
        resolve: &dyn Fn(&str) -> Option<MsId>,
    ) -> Result<Self, ParseError> {
        let tokens = tokenize(input)?;
        let mut parser = Parser {
            tokens: &tokens,
            pos: 0,
            depth: 0,
            resolve,
        };
        let node = parser.expr()?;
        match parser.peek() {
            Some(&(at, Token::CloseParen)) => Err(ParseError::UnbalancedParenthesis { at }),
            Some(&(at, _)) => Err(ParseError::TrailingInput { at }),
            None => Ok(Strategy::from_node(node)?),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Minus,
    Star,
    OpenParen,
    CloseParen,
}

fn tokenize(input: &str) -> Result<Vec<(usize, Token)>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(at, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '-' => {
                chars.next();
                tokens.push((at, Token::Minus));
            }
            '*' => {
                chars.next();
                tokens.push((at, Token::Star));
            }
            '(' => {
                chars.next();
                tokens.push((at, Token::OpenParen));
            }
            ')' => {
                chars.next();
                tokens.push((at, Token::CloseParen));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push((at, Token::Ident(ident)));
            }
            other => return Err(ParseError::UnexpectedChar { at, found: other }),
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    tokens: &'a [(usize, Token)],
    pos: usize,
    /// Current parenthesis nesting depth, bounded by
    /// [`MAX_NESTING_DEPTH`].
    depth: usize,
    resolve: &'a dyn Fn(&str) -> Option<MsId>,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&(usize, Token)> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<(usize, Token)> {
        let tok = self.tokens.get(self.pos).cloned();
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    /// `expr := term ( '-' term )*`
    fn expr(&mut self) -> Result<Node, ParseError> {
        let mut parts = vec![self.term()?];
        while matches!(self.peek(), Some((_, Token::Minus))) {
            self.bump();
            parts.push(self.term()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Node::Seq(parts)
        })
    }

    /// `term := factor ( '*' factor )*`
    fn term(&mut self) -> Result<Node, ParseError> {
        let mut parts = vec![self.factor()?];
        while matches!(self.peek(), Some((_, Token::Star))) {
            self.bump();
            parts.push(self.factor()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Node::Par(parts)
        })
    }

    /// `factor := identifier | '(' expr ')'`
    fn factor(&mut self) -> Result<Node, ParseError> {
        match self.bump() {
            Some((at, Token::Ident(name))) => match (self.resolve)(&name) {
                Some(id) => Ok(Node::Leaf(id)),
                None => Err(ParseError::UnknownMicroservice { at, name }),
            },
            Some((open_at, Token::OpenParen)) => {
                if self.depth >= MAX_NESTING_DEPTH {
                    return Err(ParseError::TooDeep {
                        at: open_at,
                        limit: MAX_NESTING_DEPTH,
                    });
                }
                self.depth += 1;
                let inner = self.expr()?;
                self.depth -= 1;
                match self.bump() {
                    Some((_, Token::CloseParen)) => Ok(inner),
                    Some((at, _)) => Err(ParseError::UnbalancedParenthesis { at }),
                    None => Err(ParseError::UnbalancedParenthesis { at: open_at }),
                }
            }
            Some((at, tok @ (Token::Minus | Token::Star))) => Err(ParseError::UnexpectedChar {
                at,
                found: if tok == Token::Minus { '-' } else { '*' },
            }),
            Some((at, Token::CloseParen)) => Err(ParseError::UnbalancedParenthesis { at }),
            None => Err(ParseError::UnexpectedEnd),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_leaf() {
        let s = Strategy::parse("c").unwrap();
        assert_eq!(s, Strategy::leaf(MsId(2)));
    }

    #[test]
    fn parses_ms_prefixed_ids() {
        let s = Strategy::parse("ms30-ms31").unwrap();
        assert_eq!(s.leaves(), vec![MsId(30), MsId(31)]);
    }

    #[test]
    fn star_binds_tighter_than_minus() {
        // Paper Section III.A: "for the execution plan a - b * c, a is
        // executed first; then b and c are executed in parallel."
        let s = Strategy::parse("a-b*c").unwrap();
        let expected = Strategy::seq([
            Strategy::leaf(MsId(0)),
            Strategy::par([Strategy::leaf(MsId(1)), Strategy::leaf(MsId(2))]).unwrap(),
        ])
        .unwrap();
        assert_eq!(s, expected);
    }

    #[test]
    fn parentheses_change_grouping() {
        let grouped = Strategy::parse("(a-b)*c").unwrap();
        let ungrouped = Strategy::parse("a-b*c").unwrap();
        assert_ne!(grouped, ungrouped);
        assert_eq!(Strategy::parse("a-(b*c)").unwrap(), ungrouped);
    }

    #[test]
    fn fig3_line3_equivalence() {
        // a*b - c*d*e  ==  b*a - c*e*d (Par commutativity)
        let lhs = Strategy::parse("a*b-c*d*e").unwrap();
        let rhs = Strategy::parse("b*a-c*e*d").unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn fig3_line4_equivalence() {
        // a - b*c - d - e == a - (b*c) - d - e
        let lhs = Strategy::parse("a-b*c-d-e").unwrap();
        let rhs = Strategy::parse("a-(b*c)-d-e").unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn whitespace_is_insignificant() {
        let compact = Strategy::parse("c*(a*b-d*e)").unwrap();
        let spaced = Strategy::parse("  c * ( a * b - d * e ) ").unwrap();
        assert_eq!(compact, spaced);
    }

    #[test]
    fn nested_parentheses() {
        let s = Strategy::parse("((a-b)*c)-d").unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.to_string(), "c*(a-b)-d");
    }

    #[test]
    fn rejects_empty_input() {
        assert_eq!(Strategy::parse("").unwrap_err(), ParseError::UnexpectedEnd);
        assert_eq!(
            Strategy::parse("   ").unwrap_err(),
            ParseError::UnexpectedEnd
        );
    }

    #[test]
    fn rejects_trailing_operator() {
        assert_eq!(
            Strategy::parse("a-").unwrap_err(),
            ParseError::UnexpectedEnd
        );
        assert_eq!(
            Strategy::parse("a*").unwrap_err(),
            ParseError::UnexpectedEnd
        );
    }

    #[test]
    fn rejects_leading_operator() {
        assert!(matches!(
            Strategy::parse("-a").unwrap_err(),
            ParseError::UnexpectedChar { at: 0, found: '-' }
        ));
        assert!(matches!(
            Strategy::parse("a--b").unwrap_err(),
            ParseError::UnexpectedChar { found: '-', .. }
        ));
    }

    #[test]
    fn rejects_unbalanced_parens() {
        assert!(matches!(
            Strategy::parse("(a-b").unwrap_err(),
            ParseError::UnbalancedParenthesis { at: 0 }
        ));
        assert!(matches!(
            Strategy::parse("a-b)").unwrap_err(),
            ParseError::UnbalancedParenthesis { .. }
        ));
        assert!(matches!(
            Strategy::parse(")a").unwrap_err(),
            ParseError::UnbalancedParenthesis { at: 0 }
        ));
        assert!(matches!(
            Strategy::parse("()").unwrap_err(),
            ParseError::UnbalancedParenthesis { at: 1 }
        ));
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(matches!(
            Strategy::parse("a+b").unwrap_err(),
            ParseError::UnexpectedChar { at: 1, found: '+' }
        ));
    }

    #[test]
    fn rejects_unknown_identifier() {
        assert!(matches!(
            Strategy::parse("a-B1").unwrap_err(),
            ParseError::UnknownMicroservice { at: 2, .. }
        ));
    }

    #[test]
    fn rejects_adjacent_factors() {
        assert!(matches!(
            Strategy::parse("a b").unwrap_err(),
            ParseError::TrailingInput { .. }
        ));
        assert!(matches!(
            Strategy::parse("(a-b)(c-d)").unwrap_err(),
            ParseError::TrailingInput { .. }
        ));
    }

    #[test]
    fn rejects_duplicate_microservice() {
        assert!(matches!(
            Strategy::parse("a-b*a").unwrap_err(),
            ParseError::Invalid(_)
        ));
    }

    #[test]
    fn custom_names() {
        let names = ["cam", "smoke", "flame"];
        let s = Strategy::parse_with_names("cam*smoke-flame", &names).unwrap();
        assert_eq!(s.leaves(), vec![MsId(0), MsId(1), MsId(2)]);
        assert!(matches!(
            Strategy::parse_with_names("cam-gas", &names).unwrap_err(),
            ParseError::UnknownMicroservice { .. }
        ));
    }

    #[test]
    fn from_str_trait() {
        let s: Strategy = "a*b".parse().unwrap();
        assert_eq!(s.len(), 2);
        assert!("a**b".parse::<Strategy>().is_err());
    }

    /// Builds `"("×depth ++ "a-b" ++ ")"×depth`: a valid expression wrapped
    /// in `depth` redundant parenthesis levels.
    fn nested(depth: usize) -> String {
        let mut s = "(".repeat(depth);
        s.push_str("a-b");
        s.push_str(&")".repeat(depth));
        s
    }

    #[test]
    fn nesting_at_the_limit_parses() {
        let s = Strategy::parse(&nested(MAX_NESTING_DEPTH)).unwrap();
        assert_eq!(s, Strategy::parse("a-b").unwrap());
    }

    #[test]
    fn nesting_over_the_limit_is_rejected_not_a_stack_overflow() {
        // Regression test for the unbounded recursive descent: pre-fix this
        // parsed fine at limit+1 (and overflowed the stack for inputs a few
        // thousand levels deep); post-fix it reports a typed error naming
        // the offending offset.
        assert_eq!(
            Strategy::parse(&nested(MAX_NESTING_DEPTH + 1)).unwrap_err(),
            ParseError::TooDeep {
                at: MAX_NESTING_DEPTH,
                limit: MAX_NESTING_DEPTH
            }
        );
        // Adversarial input far past the limit errors the same way instead
        // of exhausting the stack.
        let hostile = "(".repeat(100_000);
        assert!(matches!(
            Strategy::parse(&hostile).unwrap_err(),
            ParseError::TooDeep { .. }
        ));
    }

    #[test]
    fn underscore_identifiers_tokenize() {
        let names = ["read_temp", "est_temp"];
        let s = Strategy::parse_with_names("read_temp-est_temp", &names).unwrap();
        assert_eq!(s.len(), 2);
    }
}

//! Minimal-parenthesis rendering of strategies.
//!
//! The printer inserts parentheses only where Observation 3 of the paper
//! requires them: around a sequential sub-expression that appears as an
//! operand of the `*` operator. Everything else renders bare, so
//! `Seq[a, Par[b, c], d]` prints as `a-b*c-d` while `Par[Seq[a, b], c]`
//! prints as `(a-b)*c`.
//!
//! `parse(display(s)) == s` holds for every canonical strategy (covered by a
//! property test in the crate's test suite).

use std::fmt;

use crate::expr::ast::{Node, Strategy};

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_node(self.node(), f, false)
    }
}

impl Strategy {
    /// Renders the strategy with microservice names in place of the default
    /// letters: `names[i]` replaces `MsId(i)`. Ids beyond `names` fall back
    /// to their default rendering.
    ///
    /// This is the inverse of
    /// [`Strategy::parse_with_names`](crate::Strategy::parse_with_names) and
    /// is what gateways log (`readTempSensor-estTemp-readLocTemp` rather
    /// than `a-b-c`).
    ///
    /// # Examples
    ///
    /// ```
    /// use qce_strategy::Strategy;
    ///
    /// let s = Strategy::parse("a-b*c")?;
    /// let names = ["readTempSensor", "estTemp", "readLocTemp"];
    /// assert_eq!(
    ///     s.to_string_with_names(&names),
    ///     "readTempSensor-estTemp*readLocTemp"
    /// );
    /// # Ok::<(), qce_strategy::ParseError>(())
    /// ```
    #[must_use]
    pub fn to_string_with_names<S: AsRef<str>>(&self, names: &[S]) -> String {
        let mut out = String::new();
        write_named(self.node(), names, &mut out, false);
        out
    }
}

fn write_named<S: AsRef<str>>(node: &Node, names: &[S], out: &mut String, parenthesize_seq: bool) {
    match node {
        Node::Leaf(id) => match names.get(id.index()) {
            Some(name) => out.push_str(name.as_ref()),
            None => out.push_str(&id.to_string()),
        },
        Node::Seq(children) => {
            if parenthesize_seq {
                out.push('(');
            }
            for (i, child) in children.iter().enumerate() {
                if i > 0 {
                    out.push('-');
                }
                write_named(child, names, out, false);
            }
            if parenthesize_seq {
                out.push(')');
            }
        }
        Node::Par(children) => {
            for (i, child) in children.iter().enumerate() {
                if i > 0 {
                    out.push('*');
                }
                write_named(child, names, out, true);
            }
        }
    }
}

/// Writes `node`; `parenthesize_seq` is `true` when the node appears as an
/// operand of `*` and therefore needs parentheses if it is sequential.
fn write_node(node: &Node, f: &mut fmt::Formatter<'_>, parenthesize_seq: bool) -> fmt::Result {
    match node {
        Node::Leaf(id) => write!(f, "{id}"),
        Node::Seq(children) => {
            if parenthesize_seq {
                f.write_str("(")?;
            }
            for (i, child) in children.iter().enumerate() {
                if i > 0 {
                    f.write_str("-")?;
                }
                // A Seq child is never itself a Seq (canonical form); a Par
                // child binds tighter than '-' so it needs no parentheses.
                write_node(child, f, false)?;
            }
            if parenthesize_seq {
                f.write_str(")")?;
            }
            Ok(())
        }
        Node::Par(children) => {
            for (i, child) in children.iter().enumerate() {
                if i > 0 {
                    f.write_str("*")?;
                }
                // A Par child is a Leaf or a Seq; a Seq operand of '*' is the
                // one case where parentheses are semantically required.
                write_node(child, f, true)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{MsId, Strategy};

    fn leaf(i: usize) -> Strategy {
        Strategy::leaf(MsId(i))
    }

    #[test]
    fn leaf_displays_as_letter() {
        assert_eq!(leaf(0).to_string(), "a");
        assert_eq!(leaf(25).to_string(), "z");
        assert_eq!(leaf(26).to_string(), "ms26");
    }

    #[test]
    fn failover_and_parallel_display() {
        let fo = Strategy::seq((0..5).map(leaf)).unwrap();
        assert_eq!(fo.to_string(), "a-b-c-d-e");
        let sp = Strategy::par((0..5).map(leaf)).unwrap();
        assert_eq!(sp.to_string(), "a*b*c*d*e");
    }

    #[test]
    fn par_inside_seq_needs_no_parens() {
        let s = Strategy::seq([
            leaf(0),
            Strategy::par([leaf(1), leaf(2)]).unwrap(),
            leaf(3),
            leaf(4),
        ])
        .unwrap();
        assert_eq!(s.to_string(), "a-b*c-d-e");
    }

    #[test]
    fn seq_inside_par_needs_parens() {
        let s = Strategy::par([Strategy::seq([leaf(0), leaf(1)]).unwrap(), leaf(2)]).unwrap();
        assert_eq!(s.to_string(), "c*(a-b)");
    }

    #[test]
    fn nested_structure_display() {
        // Table II strategy 4: c*(a*b-d*e); Par children sort Leaf < Seq.
        let s = Strategy::parse("c*(a*b-d*e)").unwrap();
        assert_eq!(s.to_string(), "c*(a*b-d*e)");
        // Round-trips to the same strategy.
        assert_eq!(Strategy::parse(&s.to_string()).unwrap(), s);
    }

    #[test]
    fn display_round_trips_through_parser() {
        for text in [
            "a",
            "a-b",
            "a*b",
            "a-b*c",
            "(a-b)*c",
            "a*b-c*d*e",
            "c*(a*b-d*e)",
            "((a-b)*c)-d",
            "(a-b*c)*(d-e)",
            "a-(b-c)*d",
        ] {
            let s = Strategy::parse(text).unwrap();
            let rendered = s.to_string();
            let reparsed = Strategy::parse(&rendered).unwrap();
            assert_eq!(s, reparsed, "{text} -> {rendered}");
        }
    }

    #[test]
    fn rendered_form_is_canonical_and_stable() {
        let s1 = Strategy::parse("b*a-c").unwrap();
        let s2 = Strategy::parse("a*b-c").unwrap();
        assert_eq!(s1.to_string(), s2.to_string());
        assert_eq!(s1.to_string(), "a*b-c");
    }
}

#[cfg(test)]
mod named_tests {
    use crate::Strategy;

    #[test]
    fn named_rendering_round_trips_through_named_parser() {
        let names = ["cam", "smoke", "flame", "gas"];
        for text in [
            "cam-smoke*flame-gas",
            "(cam-smoke)*flame",
            "cam*smoke*flame*gas",
        ] {
            let s = Strategy::parse_with_names(text, &names).unwrap();
            let rendered = s.to_string_with_names(&names);
            let reparsed = Strategy::parse_with_names(&rendered, &names).unwrap();
            assert_eq!(s, reparsed, "{text} -> {rendered}");
        }
    }

    #[test]
    fn missing_names_fall_back_to_default() {
        let s = Strategy::parse("a-c").unwrap();
        assert_eq!(s.to_string_with_names(&["first"]), "first-c");
    }

    #[test]
    fn parens_preserved_in_named_rendering() {
        let names = ["x", "y", "z"];
        let s = Strategy::parse_with_names("(x-y)*z", &names).unwrap();
        assert_eq!(s.to_string_with_names(&names), "z*(x-y)");
    }
}

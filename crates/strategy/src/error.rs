//! Error types for the strategy algebra.

use std::error::Error as StdError;
use std::fmt;

use crate::MsId;

/// Error produced when constructing a [`Strategy`](crate::Strategy) from
/// parts that violate its invariants.
///
/// A strategy is a composition of *distinct* equivalent microservices: every
/// leaf must be unique, and every composite node must have at least two
/// operands.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A sequential or parallel combination was given fewer than two operands.
    TooFewOperands {
        /// Number of operands that were supplied.
        got: usize,
    },
    /// The same microservice appears more than once in the expression.
    DuplicateMicroservice(MsId),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::TooFewOperands { got } => {
                write!(f, "combination requires at least 2 operands, got {got}")
            }
            BuildError::DuplicateMicroservice(id) => {
                write!(
                    f,
                    "microservice {id} appears more than once in the strategy"
                )
            }
        }
    }
}

impl StdError for BuildError {}

/// Error produced when parsing a strategy expression fails.
///
/// Reported positions are zero-based byte offsets into the input string.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// An unexpected character was encountered.
    UnexpectedChar {
        /// Byte offset of the offending character.
        at: usize,
        /// The character found.
        found: char,
    },
    /// The input ended before the expression was complete.
    UnexpectedEnd,
    /// A closing parenthesis had no matching opening parenthesis, or vice
    /// versa.
    UnbalancedParenthesis {
        /// Byte offset of the offending parenthesis (or end of input).
        at: usize,
    },
    /// An identifier did not resolve to a known microservice.
    UnknownMicroservice {
        /// Byte offset where the identifier starts.
        at: usize,
        /// The identifier text.
        name: String,
    },
    /// Extra input remained after a complete expression.
    TrailingInput {
        /// Byte offset where the trailing input starts.
        at: usize,
    },
    /// Parentheses were nested deeper than the parser's recursion limit.
    ///
    /// The recursive-descent parser bounds its depth so adversarial input
    /// (`((((…`) cannot overflow the stack.
    TooDeep {
        /// Byte offset of the parenthesis that exceeded the limit.
        at: usize,
        /// The maximum permitted nesting depth.
        limit: usize,
    },
    /// The parsed expression violates a structural invariant.
    Invalid(BuildError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedChar { at, found } => {
                write!(f, "unexpected character {found:?} at offset {at}")
            }
            ParseError::UnexpectedEnd => write!(f, "unexpected end of input"),
            ParseError::UnbalancedParenthesis { at } => {
                write!(f, "unbalanced parenthesis at offset {at}")
            }
            ParseError::UnknownMicroservice { at, name } => {
                write!(f, "unknown microservice {name:?} at offset {at}")
            }
            ParseError::TrailingInput { at } => {
                write!(f, "trailing input at offset {at}")
            }
            ParseError::TooDeep { at, limit } => {
                write!(
                    f,
                    "parentheses nested deeper than {limit} levels at offset {at}"
                )
            }
            ParseError::Invalid(err) => write!(f, "invalid strategy: {err}"),
        }
    }
}

impl StdError for ParseError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ParseError::Invalid(err) => Some(err),
            _ => None,
        }
    }
}

impl From<BuildError> for ParseError {
    fn from(err: BuildError) -> Self {
        ParseError::Invalid(err)
    }
}

/// Error produced when a QoS value is out of its legal domain.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QosError {
    /// Reliability must be a probability in `[0, 1]`.
    ReliabilityOutOfRange(f64),
    /// Latency must be finite and non-negative.
    InvalidLatency(f64),
    /// Cost must be finite and non-negative.
    InvalidCost(f64),
    /// The utility penalty factor `k` must be greater than 1 (Equation 1 of
    /// the paper requires `k > 1`).
    InvalidPenalty(f64),
    /// A QoS requirement used for normalization must be finite and positive.
    InvalidRequirement(f64),
    /// A textual QoS value (e.g. a `"cost,latency,reliability"` requirement
    /// triple) could not be parsed.
    Parse(String),
}

impl fmt::Display for QosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosError::ReliabilityOutOfRange(v) => {
                write!(f, "reliability must be within [0, 1], got {v}")
            }
            QosError::InvalidLatency(v) => {
                write!(f, "latency must be finite and non-negative, got {v}")
            }
            QosError::InvalidCost(v) => {
                write!(f, "cost must be finite and non-negative, got {v}")
            }
            QosError::InvalidPenalty(v) => {
                write!(f, "utility penalty k must be greater than 1, got {v}")
            }
            QosError::InvalidRequirement(v) => {
                write!(f, "QoS requirement must be finite and positive, got {v}")
            }
            QosError::Parse(reason) => write!(f, "{reason}"),
        }
    }
}

impl StdError for QosError {}

/// Error produced when estimating the QoS of a strategy against an
/// environment that does not provide all referenced microservices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EstimateError {
    /// The environment has no QoS entry for the given microservice.
    MissingMicroservice(MsId),
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::MissingMicroservice(id) => {
                write!(f, "environment provides no QoS for microservice {id}")
            }
        }
    }
}

impl StdError for EstimateError {}

/// Error produced by strategy generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GenerateError {
    /// Generation needs at least one microservice to work with.
    NoMicroservices,
    /// A microservice referenced by the generator is missing from the
    /// environment.
    Estimate(EstimateError),
    /// The QoS requirements are degenerate (zero, negative, or non-finite
    /// attributes): Equation 1 divides by each requirement, so such inputs
    /// would produce NaN/∞ utilities that poison the ranking.
    InvalidRequirements(QosError),
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::NoMicroservices => {
                write!(f, "cannot generate a strategy for zero microservices")
            }
            GenerateError::Estimate(err) => write!(f, "estimation failed: {err}"),
            GenerateError::InvalidRequirements(err) => {
                write!(f, "invalid QoS requirements: {err}")
            }
        }
    }
}

impl StdError for GenerateError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            GenerateError::Estimate(err) => Some(err),
            GenerateError::InvalidRequirements(err) => Some(err),
            GenerateError::NoMicroservices => None,
        }
    }
}

impl From<EstimateError> for GenerateError {
    fn from(err: EstimateError) -> Self {
        GenerateError::Estimate(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_error_display() {
        let err = BuildError::TooFewOperands { got: 1 };
        assert_eq!(
            err.to_string(),
            "combination requires at least 2 operands, got 1"
        );
        let err = BuildError::DuplicateMicroservice(MsId(0));
        assert!(err.to_string().contains('a'));
    }

    #[test]
    fn parse_error_display_and_source() {
        let err = ParseError::UnexpectedChar { at: 3, found: '+' };
        assert!(err.to_string().contains("offset 3"));
        let err = ParseError::Invalid(BuildError::TooFewOperands { got: 0 });
        assert!(StdError::source(&err).is_some());
        assert!(StdError::source(&ParseError::UnexpectedEnd).is_none());
    }

    #[test]
    fn qos_error_display() {
        assert!(QosError::ReliabilityOutOfRange(1.5)
            .to_string()
            .contains("1.5"));
        assert!(QosError::InvalidPenalty(0.5)
            .to_string()
            .contains("greater than 1"));
    }

    #[test]
    fn generate_error_from_estimate() {
        let err: GenerateError = EstimateError::MissingMicroservice(MsId(7)).into();
        assert!(matches!(err, GenerateError::Estimate(_)));
        assert!(StdError::source(&err).is_some());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BuildError>();
        assert_send_sync::<ParseError>();
        assert_send_sync::<QosError>();
        assert_send_sync::<EstimateError>();
        assert_send_sync::<GenerateError>();
    }
}

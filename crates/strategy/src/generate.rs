//! Execution-strategy generation (paper Section IV.D, Algorithm 2).
//!
//! Two generation algorithms are provided, as in the paper:
//!
//! * **Exhaustive search** — estimate the QoS of every strategy in `F(M)`
//!   and pick the one with the highest utility index. Exact but exponential
//!   in `M` (Table I), so only practical for small equivalent sets.
//! * **Approximation heuristic** — sort the microservices by their
//!   individual utility; start from the best one and, for each next
//!   microservice `m`, keep the better of `es - m` (sequential append) and
//!   `(es) * m` (parallel wrap).
//!
//! [`Generator`] combines them behind the paper's threshold rule: use the
//! exhaustive search while `|M| ≤ θ`, switch to the approximation beyond.
//! (Algorithm 2's line 1 prints the comparison inverted; we follow the
//! prose — see `DESIGN.md`.)
//!
//! Two *subset* ablations discussed in the paper are also implemented:
//! searching `F'(M)` instead of `F(M)`, and stopping the approximation as
//! soon as including another microservice stops improving the utility. The
//! paper advises against both in dynamic environments (microservices left
//! out of the strategy never get fresh QoS observations), but they are
//! useful baselines.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::enumerate::{failover, for_each_full, for_each_with_subsets, speculative_parallel};
use crate::error::GenerateError;
use crate::estimate::estimate;
use crate::expr::Strategy;
use crate::qos::{EnvQos, MsId, Qos, Requirements};
use crate::utility::UtilityIndex;

/// Which algorithm produced a generated strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Exhaustive search over `F(M)` (all microservices).
    Exhaustive,
    /// Exhaustive search over `F'(M)` (subsets allowed).
    ExhaustiveSubsets,
    /// Greedy approximation over all microservices (Algorithm 2).
    Approximation,
    /// Multi-start hill climbing over leaf swaps, seeded by the
    /// approximation and the two predefined patterns.
    LocalSearch,
    /// Greedy approximation that stops early when utility stops improving.
    ApproximationEarlyStop,
    /// Predefined fail-over pattern (`a-b-…`), microservices ordered by
    /// individual utility.
    Failover,
    /// Predefined speculative-parallel pattern (`a*b*…`).
    SpeculativeParallel,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Method::Exhaustive => "exhaustive",
            Method::ExhaustiveSubsets => "exhaustive-subsets",
            Method::Approximation => "approximation",
            Method::LocalSearch => "local-search",
            Method::ApproximationEarlyStop => "approximation-early-stop",
            Method::Failover => "failover",
            Method::SpeculativeParallel => "speculative-parallel",
        };
        f.write_str(name)
    }
}

/// A generated strategy together with its estimated QoS and utility.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Generated {
    /// The synthesized execution strategy.
    pub strategy: Strategy,
    /// Its estimated QoS (Algorithm 1).
    pub qos: Qos,
    /// Its utility index against the requirements used during generation.
    pub utility: f64,
    /// How many candidate strategies were QoS-estimated.
    pub evaluated: usize,
    /// Which algorithm produced it.
    pub method: Method,
}

impl fmt::Display for Generated {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (U={:.3}, {}, via {})",
            self.strategy, self.utility, self.qos, self.method
        )
    }
}

/// Strategy generator configured with a utility index and the exhaustive /
/// approximation threshold `θ`.
///
/// # Examples
///
/// ```
/// use qce_strategy::{EnvQos, Generator, Requirements};
///
/// // Fire detection (Section III.D) under Qc=100, Ql=100, Qr=97%.
/// let env = EnvQos::from_triples(&[
///     (50.0, 50.0, 0.6),
///     (100.0, 100.0, 0.6),
///     (150.0, 150.0, 0.7),
///     (200.0, 200.0, 0.7),
///     (250.0, 250.0, 0.8),
/// ])?;
/// let req = Requirements::new(100.0, 100.0, 0.97)?;
/// let best = Generator::default().generate(&env, &env.ids(), &req)?;
/// // The custom strategy beats both predefined patterns on utility.
/// let failover = Generator::default().failover(&env, &env.ids(), &req)?;
/// let parallel = Generator::default().speculative_parallel(&env, &env.ids(), &req)?;
/// assert!(best.utility >= failover.utility);
/// assert!(best.utility >= parallel.utility);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Generator {
    utility: UtilityIndex,
    threshold: usize,
}

/// Default exhaustive/approximation switch-over: `F(6) = 64 743` candidates
/// estimate in tens of milliseconds, `F(7) ≈ 1.6 M` takes seconds.
pub const DEFAULT_THRESHOLD: usize = 6;

impl Default for Generator {
    fn default() -> Self {
        Generator {
            utility: UtilityIndex::default(),
            threshold: DEFAULT_THRESHOLD,
        }
    }
}

impl Generator {
    /// Creates a generator with the given utility index and threshold `θ`.
    #[must_use]
    pub fn new(utility: UtilityIndex, threshold: usize) -> Self {
        Generator { utility, threshold }
    }

    /// The configured utility index.
    #[must_use]
    pub fn utility_index(&self) -> UtilityIndex {
        self.utility
    }

    /// The configured threshold `θ`.
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Algorithm 2: exhaustive search while `|M| ≤ θ`, greedy approximation
    /// beyond.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::NoMicroservices`] for an empty id list, or
    /// an estimation error if `env` lacks an entry for some id.
    pub fn generate(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        if ids.len() <= self.threshold {
            self.exhaustive(env, ids, req)
        } else {
            self.approximation(env, ids, req)
        }
    }

    /// Exhaustive search over `F(M)`: estimates every strategy that uses
    /// all of `ids` and returns the utility-maximal one.
    ///
    /// Ties break deterministically: lower cost, then lower latency, then
    /// the lexicographically smaller rendering.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::NoMicroservices`] for an empty id list, or
    /// an estimation error if `env` lacks an entry for some id.
    pub fn exhaustive(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        self.search(env, ids, req, Method::Exhaustive)
    }

    /// Exhaustive search over `F'(M)`: like [`Generator::exhaustive`] but
    /// candidate strategies may use any non-empty subset of `ids`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Generator::exhaustive`].
    pub fn exhaustive_subsets(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        self.search(env, ids, req, Method::ExhaustiveSubsets)
    }

    fn search(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
        method: Method,
    ) -> Result<Generated, GenerateError> {
        if ids.is_empty() {
            return Err(GenerateError::NoMicroservices);
        }
        // Validate availability up front so the streaming closure below can
        // rely on successful estimation.
        for &id in ids {
            if env.get(id).is_none() {
                return Err(crate::error::EstimateError::MissingMicroservice(id).into());
            }
        }
        let mut best: Option<Generated> = None;
        let mut evaluated = 0usize;
        let mut consider = |s: Strategy| {
            let qos = estimate(&s, env).expect("ids validated above");
            let utility = self.utility.utility(&qos, req);
            evaluated += 1;
            let better = match &best {
                None => true,
                Some(current) => {
                    utility > current.utility
                        || (utility == current.utility
                            && better_tiebreak(&s, &qos, &current.strategy, &current.qos))
                }
            };
            if better {
                best = Some(Generated {
                    strategy: s,
                    qos,
                    utility,
                    evaluated: 0,
                    method,
                });
            }
        };
        match method {
            Method::ExhaustiveSubsets => for_each_with_subsets(ids, &mut consider),
            _ => for_each_full(ids, &mut consider),
        }
        let mut best = best.expect("non-empty id list yields at least one strategy");
        best.evaluated = evaluated;
        Ok(best)
    }

    /// The greedy approximation heuristic of Algorithm 2 (lines 4–13).
    ///
    /// Microservices are sorted by individual utility (best first); the
    /// strategy grows one microservice at a time, keeping the better of the
    /// sequential append `es - m` and the parallel wrap `(es) * m`.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::NoMicroservices`] for an empty id list, or
    /// an estimation error if `env` lacks an entry for some id.
    pub fn approximation(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        self.greedy(env, ids, req, false)
    }

    /// The subset variant of the approximation heuristic: stops as soon as
    /// including the next microservice no longer improves the utility.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Generator::approximation`].
    pub fn approximation_early_stop(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        self.greedy(env, ids, req, true)
    }

    fn greedy(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
        early_stop: bool,
    ) -> Result<Generated, GenerateError> {
        if ids.is_empty() {
            return Err(GenerateError::NoMicroservices);
        }
        let order = self.sort_by_utility(env, ids, req)?;
        let mut evaluated = order.len(); // individual estimates for sorting
        let mut es = Strategy::leaf(order[0]);
        let mut qos = estimate(&es, env)?;
        let mut utility = self.utility.utility(&qos, req);
        for &next in &order[1..] {
            let seq = es
                .clone()
                .then(Strategy::leaf(next))
                .expect("ids are distinct");
            let par = es
                .clone()
                .race(Strategy::leaf(next))
                .expect("ids are distinct");
            let seq_qos = estimate(&seq, env)?;
            let par_qos = estimate(&par, env)?;
            let seq_u = self.utility.utility(&seq_qos, req);
            let par_u = self.utility.utility(&par_qos, req);
            evaluated += 2;
            // Paper, Algorithm 2 line 8: strict '>' — ties go parallel.
            let (cand, cand_qos, cand_u) = if seq_u > par_u {
                (seq, seq_qos, seq_u)
            } else {
                (par, par_qos, par_u)
            };
            if early_stop && cand_u <= utility {
                break;
            }
            es = cand;
            qos = cand_qos;
            utility = cand_u;
        }
        Ok(Generated {
            strategy: es,
            qos,
            utility,
            evaluated,
            method: if early_stop {
                Method::ApproximationEarlyStop
            } else {
                Method::Approximation
            },
        })
    }

    /// Multi-start hill climbing: an extension beyond the paper that sits
    /// between the exhaustive search (optimal, exponential) and the greedy
    /// approximation (fast, shape-committed).
    ///
    /// Starting from the approximation result, the fail-over chain, and the
    /// speculative-parallel pattern, the search repeatedly moves to the best
    /// *leaf-swap* neighbour (exchange the positions of two microservices in
    /// the strategy tree) while utility improves. Leaf swaps explore
    /// assignments of microservices to tree positions that the greedy
    /// construction can never reach, at `O(M²)` estimates per step instead
    /// of `F(M)`.
    ///
    /// The result is never worse than [`Generator::approximation`] (it is
    /// one of the starts) and never better than [`Generator::exhaustive`]
    /// (which scans the full space).
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::NoMicroservices`] for an empty id list, or
    /// an estimation error if `env` lacks an entry for some id.
    pub fn local_search(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        if ids.is_empty() {
            return Err(GenerateError::NoMicroservices);
        }
        let order = self.sort_by_utility(env, ids, req)?;
        let mut evaluated = order.len();
        let mut starts = vec![self.approximation(env, ids, req)?];
        evaluated += starts[0].evaluated;
        if ids.len() >= 2 {
            starts.push(self.failover(env, ids, req)?);
            starts.push(self.speculative_parallel(env, ids, req)?);
            evaluated += 2;
        }

        let mut best: Option<(Strategy, Qos, f64)> = None;
        for start in starts {
            let mut current = (start.strategy, start.qos, start.utility);
            // Hill climb: move to the best improving leaf-swap neighbour.
            loop {
                let mut improved: Option<(Strategy, Qos, f64)> = None;
                for i in 0..ids.len() {
                    for j in (i + 1)..ids.len() {
                        let (a, b) = (ids[i], ids[j]);
                        let swapped = current
                            .0
                            .map_ids(|id| {
                                if id == a {
                                    b
                                } else if id == b {
                                    a
                                } else {
                                    id
                                }
                            })
                            .expect("transpositions are bijections");
                        if swapped == current.0 {
                            continue; // Par-sibling swap: same strategy
                        }
                        let qos = estimate(&swapped, env)?;
                        let utility = self.utility.utility(&qos, req);
                        evaluated += 1;
                        let beats_improved = improved.as_ref().is_none_or(|(_, _, u)| utility > *u);
                        if utility > current.2 && beats_improved {
                            improved = Some((swapped, qos, utility));
                        }
                    }
                }
                match improved {
                    Some(next) => current = next,
                    None => break,
                }
            }
            let better = match &best {
                None => true,
                Some((bs, bq, bu)) => {
                    current.2 > *bu
                        || (current.2 == *bu && better_tiebreak(&current.0, &current.1, bs, bq))
                }
            };
            if better {
                best = Some(current);
            }
        }
        let (strategy, qos, utility) = best.expect("at least one start");
        Ok(Generated {
            strategy,
            qos,
            utility,
            evaluated,
            method: Method::LocalSearch,
        })
    }

    /// The predefined fail-over pattern over `ids`, ordered by individual
    /// utility (the priority order a MOLE script would specify), with its
    /// estimated QoS.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::NoMicroservices`] for an empty id list, or
    /// an estimation error if `env` lacks an entry for some id.
    pub fn failover(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        let order = self.sort_by_utility(env, ids, req)?;
        let strategy = failover(&order).expect("ids are distinct and non-empty");
        let qos = estimate(&strategy, env)?;
        let utility = self.utility.utility(&qos, req);
        Ok(Generated {
            strategy,
            qos,
            utility,
            evaluated: 1,
            method: Method::Failover,
        })
    }

    /// The predefined fail-over pattern in the *given* order — the chain a
    /// MOLE script pins at development time, oblivious to the environment's
    /// actual QoS. This is the "predefined sequential" baseline of the
    /// paper's Fig. 6/Fig. 7 comparisons.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::NoMicroservices`] for an empty id list, or
    /// an estimation error if `env` lacks an entry for some id.
    pub fn failover_in_order(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        if ids.is_empty() {
            return Err(GenerateError::NoMicroservices);
        }
        let strategy = failover(ids).map_err(|_| GenerateError::NoMicroservices)?;
        let qos = estimate(&strategy, env)?;
        let utility = self.utility.utility(&qos, req);
        Ok(Generated {
            strategy,
            qos,
            utility,
            evaluated: 1,
            method: Method::Failover,
        })
    }

    /// The predefined speculative-parallel pattern over `ids`, with its
    /// estimated QoS.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Generator::failover`].
    pub fn speculative_parallel(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        if ids.is_empty() {
            return Err(GenerateError::NoMicroservices);
        }
        let strategy = speculative_parallel(ids).expect("ids are distinct and non-empty");
        let qos = estimate(&strategy, env)?;
        let utility = self.utility.utility(&qos, req);
        Ok(Generated {
            strategy,
            qos,
            utility,
            evaluated: 1,
            method: Method::SpeculativeParallel,
        })
    }

    /// Sorts `ids` by individual (single-microservice) utility, best first —
    /// the `sortByUtility` step of Algorithm 2. Ties break on the id.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::NoMicroservices`] for an empty id list, or
    /// an estimation error if `env` lacks an entry for some id.
    pub fn sort_by_utility(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Vec<MsId>, GenerateError> {
        if ids.is_empty() {
            return Err(GenerateError::NoMicroservices);
        }
        let mut scored: Vec<(MsId, f64)> = ids
            .iter()
            .map(|&id| {
                let qos = estimate(&Strategy::leaf(id), env)?;
                Ok((id, self.utility.utility(&qos, req)))
            })
            .collect::<Result<_, GenerateError>>()?;
        scored.sort_by(|(id_a, u_a), (id_b, u_b)| {
            u_b.partial_cmp(u_a)
                .expect("utilities are finite")
                .then_with(|| id_a.cmp(id_b))
        });
        Ok(scored.into_iter().map(|(id, _)| id).collect())
    }
}

/// Deterministic tie-break for equal utilities: lower cost, then lower
/// latency, then the lexicographically smaller rendering.
fn better_tiebreak(s: &Strategy, qos: &Qos, cur_s: &Strategy, cur_qos: &Qos) -> bool {
    if qos.cost != cur_qos.cost {
        return qos.cost < cur_qos.cost;
    }
    if qos.latency != cur_qos.latency {
        return qos.latency < cur_qos.latency;
    }
    s.to_string() < cur_s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Section III.D fire-detection environment.
    fn env5() -> EnvQos {
        EnvQos::from_triples(&[
            (50.0, 50.0, 0.6),
            (100.0, 100.0, 0.6),
            (150.0, 150.0, 0.7),
            (200.0, 200.0, 0.7),
            (250.0, 250.0, 0.8),
        ])
        .unwrap()
    }

    fn req() -> Requirements {
        Requirements::new(100.0, 100.0, 0.97).unwrap()
    }

    #[test]
    fn exhaustive_beats_predefined_patterns() {
        let gen = Generator::default();
        let env = env5();
        let ids = env.ids();
        let best = gen.exhaustive(&env, &ids, &req()).unwrap();
        let fo = gen.failover(&env, &ids, &req()).unwrap();
        let sp = gen.speculative_parallel(&env, &ids, &req()).unwrap();
        assert!(best.utility >= fo.utility);
        assert!(best.utility >= sp.utility);
        assert_eq!(best.evaluated, 2791, "F(5) candidates");
        assert_eq!(best.method, Method::Exhaustive);
    }

    #[test]
    fn exhaustive_single_microservice() {
        let gen = Generator::default();
        let env = EnvQos::from_triples(&[(10.0, 10.0, 0.9)]).unwrap();
        let best = gen.exhaustive(&env, &[MsId(0)], &req()).unwrap();
        assert_eq!(best.strategy, Strategy::leaf(MsId(0)));
        assert_eq!(best.evaluated, 1);
    }

    #[test]
    fn exhaustive_is_optimal_by_construction() {
        // Verify the streaming argmax against a collected argmax.
        let gen = Generator::default();
        let env = env5();
        let ids: Vec<MsId> = (0..4).map(MsId).collect();
        let best = gen.exhaustive(&env, &ids, &req()).unwrap();
        let mut max_u = f64::NEG_INFINITY;
        for s in crate::enumerate::enumerate_full(&ids) {
            let qos = estimate(&s, &env).unwrap();
            max_u = max_u.max(gen.utility_index().utility(&qos, &req()));
        }
        assert!((best.utility - max_u).abs() < 1e-12);
    }

    #[test]
    fn exhaustive_subsets_at_least_as_good() {
        let gen = Generator::default();
        let env = env5();
        let ids: Vec<MsId> = (0..4).map(MsId).collect();
        let full = gen.exhaustive(&env, &ids, &req()).unwrap();
        let subsets = gen.exhaustive_subsets(&env, &ids, &req()).unwrap();
        assert!(subsets.utility >= full.utility);
        assert_eq!(subsets.evaluated, 293, "F'(4) candidates");
        assert_eq!(subsets.method, Method::ExhaustiveSubsets);
    }

    #[test]
    fn approximation_uses_all_microservices() {
        let gen = Generator::default();
        let env = env5();
        let ids = env.ids();
        let approx = gen.approximation(&env, &ids, &req()).unwrap();
        assert_eq!(approx.strategy.len(), 5);
        assert_eq!(approx.method, Method::Approximation);
    }

    #[test]
    fn approximation_never_beats_exhaustive() {
        let gen = Generator::default();
        let env = env5();
        let ids = env.ids();
        let approx = gen.approximation(&env, &ids, &req()).unwrap();
        let exact = gen.exhaustive(&env, &ids, &req()).unwrap();
        assert!(approx.utility <= exact.utility + 1e-12);
    }

    #[test]
    fn approximation_at_least_matches_both_defaults_seeded_from_best_leaf() {
        // The greedy chain explores es-m and (es)*m at each step, which
        // includes the pure fail-over chain (all-sequential choices) and the
        // pure parallel strategy (all-parallel choices) over the same
        // utility-sorted order, so it can't be worse than either.
        let gen = Generator::default();
        let env = env5();
        let ids = env.ids();
        let approx = gen.approximation(&env, &ids, &req()).unwrap();
        let fo = gen.failover(&env, &ids, &req()).unwrap();
        let sp = gen.speculative_parallel(&env, &ids, &req()).unwrap();
        assert!(approx.utility >= fo.utility.min(sp.utility) - 1e-12);
    }

    #[test]
    fn early_stop_yields_subset_when_extra_ms_hurts() {
        // One excellent microservice + one terrible one: including the bad
        // one can only lower utility, so the early-stop variant keeps just
        // the good one.
        let env = EnvQos::from_triples(&[(10.0, 10.0, 0.99), (500.0, 500.0, 0.2)]).unwrap();
        let gen = Generator::default();
        let out = gen
            .approximation_early_stop(&env, &env.ids(), &req())
            .unwrap();
        assert_eq!(out.strategy, Strategy::leaf(MsId(0)));
        assert_eq!(out.method, Method::ApproximationEarlyStop);
        let full = gen.approximation(&env, &env.ids(), &req()).unwrap();
        assert_eq!(full.strategy.len(), 2, "plain approximation keeps both");
        assert!(out.utility >= full.utility);
    }

    #[test]
    fn generate_switches_on_threshold() {
        let gen = Generator::new(UtilityIndex::default(), 3);
        let env = env5();
        let small: Vec<MsId> = (0..3).map(MsId).collect();
        let large: Vec<MsId> = (0..5).map(MsId).collect();
        assert_eq!(
            gen.generate(&env, &small, &req()).unwrap().method,
            Method::Exhaustive
        );
        assert_eq!(
            gen.generate(&env, &large, &req()).unwrap().method,
            Method::Approximation
        );
    }

    #[test]
    fn sort_by_utility_orders_best_first() {
        let gen = Generator::default();
        let env = env5();
        let order = gen.sort_by_utility(&env, &env.ids(), &req()).unwrap();
        // a dominates every other microservice here (cheapest, fastest; its
        // lower reliability costs less utility than the others' overruns).
        assert_eq!(order[0], MsId(0));
        let utilities: Vec<f64> = order
            .iter()
            .map(|&id| {
                let qos = estimate(&Strategy::leaf(id), &env).unwrap();
                gen.utility_index().utility(&qos, &req())
            })
            .collect();
        for pair in utilities.windows(2) {
            assert!(pair[0] >= pair[1], "not sorted: {utilities:?}");
        }
    }

    #[test]
    fn empty_ids_rejected_everywhere() {
        let gen = Generator::default();
        let env = env5();
        let r = req();
        assert!(matches!(
            gen.generate(&env, &[], &r),
            Err(GenerateError::NoMicroservices)
        ));
        assert!(gen.exhaustive(&env, &[], &r).is_err());
        assert!(gen.approximation(&env, &[], &r).is_err());
        assert!(gen.failover(&env, &[], &r).is_err());
        assert!(gen.speculative_parallel(&env, &[], &r).is_err());
        assert!(gen.sort_by_utility(&env, &[], &r).is_err());
    }

    #[test]
    fn missing_environment_entry_rejected() {
        let gen = Generator::default();
        let env = EnvQos::from_triples(&[(1.0, 1.0, 0.5)]).unwrap();
        let ids = [MsId(0), MsId(9)];
        assert!(matches!(
            gen.exhaustive(&env, &ids, &req()),
            Err(GenerateError::Estimate(_))
        ));
        assert!(gen.approximation(&env, &ids, &req()).is_err());
    }

    #[test]
    fn generated_display_mentions_method() {
        let gen = Generator::default();
        let env = env5();
        let out = gen.failover(&env, &env.ids(), &req()).unwrap();
        let text = out.to_string();
        assert!(text.contains("failover"), "{text}");
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = Generator::default();
        let env = env5();
        let a = gen.exhaustive(&env, &env.ids(), &req()).unwrap();
        let b = gen.exhaustive(&env, &env.ids(), &req()).unwrap();
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod local_search_tests {
    use super::*;

    fn env5() -> EnvQos {
        EnvQos::from_triples(&[
            (50.0, 50.0, 0.6),
            (100.0, 100.0, 0.6),
            (150.0, 150.0, 0.7),
            (200.0, 200.0, 0.7),
            (250.0, 250.0, 0.8),
        ])
        .unwrap()
    }

    fn req(c: f64, l: f64) -> Requirements {
        Requirements::new(c, l, 0.97).unwrap()
    }

    #[test]
    fn never_worse_than_approximation_never_better_than_exhaustive() {
        let gen = Generator::default();
        let env = env5();
        let ids = env.ids();
        for requirements in [req(100.0, 100.0), req(400.0, 90.0), req(150.0, 200.0)] {
            let approx = gen.approximation(&env, &ids, &requirements).unwrap();
            let local = gen.local_search(&env, &ids, &requirements).unwrap();
            let exact = gen.exhaustive(&env, &ids, &requirements).unwrap();
            assert!(local.utility >= approx.utility - 1e-12, "{requirements}");
            assert!(local.utility <= exact.utility + 1e-12, "{requirements}");
            assert_eq!(local.method, Method::LocalSearch);
        }
    }

    #[test]
    fn improves_on_approximation_somewhere() {
        // Across random environments, the leaf-swap search must find at
        // least one case where it strictly beats the greedy construction —
        // otherwise it adds nothing.
        use rand::SeedableRng;
        let gen = Generator::default();
        let requirements = req(400.0, 90.0);
        let mut improvements = 0usize;
        for seed in 0..30u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            use rand::Rng;
            let env: EnvQos = (0..6)
                .map(|_| {
                    Qos::new(
                        rng.gen_range(20.0..200.0),
                        rng.gen_range(20.0..200.0),
                        rng.gen_range(0.3..0.95),
                    )
                    .unwrap()
                })
                .collect();
            let ids = env.ids();
            let approx = gen.approximation(&env, &ids, &requirements).unwrap();
            let local = gen.local_search(&env, &ids, &requirements).unwrap();
            if local.utility > approx.utility + 1e-9 {
                improvements += 1;
            }
        }
        assert!(improvements > 0, "local search never improved in 30 trials");
    }

    #[test]
    fn single_microservice_is_trivial() {
        let gen = Generator::default();
        let env = EnvQos::from_triples(&[(10.0, 10.0, 0.9)]).unwrap();
        let local = gen
            .local_search(&env, &[MsId(0)], &req(100.0, 100.0))
            .unwrap();
        assert_eq!(local.strategy, Strategy::leaf(MsId(0)));
    }

    #[test]
    fn empty_ids_rejected() {
        let gen = Generator::default();
        assert!(matches!(
            gen.local_search(&env5(), &[], &req(100.0, 100.0)),
            Err(GenerateError::NoMicroservices)
        ));
    }

    #[test]
    fn deterministic() {
        let gen = Generator::default();
        let env = env5();
        let a = gen
            .local_search(&env, &env.ids(), &req(400.0, 90.0))
            .unwrap();
        let b = gen
            .local_search(&env, &env.ids(), &req(400.0, 90.0))
            .unwrap();
        assert_eq!(a, b);
    }
}

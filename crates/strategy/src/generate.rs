//! Execution-strategy generation (paper Section IV.D, Algorithm 2).
//!
//! Two generation algorithms are provided, as in the paper:
//!
//! * **Exhaustive search** — estimate the QoS of every strategy in `F(M)`
//!   and pick the one with the highest utility index. Exact but exponential
//!   in `M` (Table I), so only practical for small equivalent sets.
//! * **Approximation heuristic** — sort the microservices by their
//!   individual utility; start from the best one and, for each next
//!   microservice `m`, keep the better of `es - m` (sequential append) and
//!   `(es) * m` (parallel wrap).
//!
//! [`Generator`] combines them behind the paper's threshold rule: use the
//! exhaustive search while `|M| ≤ θ`, switch to the approximation beyond.
//! (Algorithm 2's line 1 prints the comparison inverted; we follow the
//! prose — see `DESIGN.md`.)
//!
//! Two *subset* ablations discussed in the paper are also implemented:
//! searching `F'(M)` instead of `F(M)`, and stopping the approximation as
//! soon as including another microservice stops improving the utility. The
//! paper advises against both in dynamic environments (microservices left
//! out of the strategy never get fresh QoS observations), but they are
//! useful baselines.
//!
//! ## The synthesis engine
//!
//! Generators are configured through [`GeneratorBuilder`]. When the
//! configured [`Estimator`] is the paper's Algorithm 1 (the default), the
//! exhaustive searches run on the branch-and-bound engine in `synth`:
//! utility-bound pruning plus a work-stealing thread pool, with results —
//! winning strategy, QoS bits, utility, and tie-breaks — provably
//! identical to the plain sequential scan. Any other estimator falls back
//! to a generic scan (optionally chunk-parallel over [`StrategyIter`]).
//! Either way [`Generated::report`] records how many candidates were
//! estimated, how many the bounds pruned, and the wall-clock time.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::enumerate::{
    failover, for_each_full, for_each_with_subsets, speculative_parallel, StrategyIter, MAX_COUNT_M,
};
use crate::error::GenerateError;
use crate::estimate::{Algorithm1, Estimator};
use crate::expr::Strategy;
use crate::plan_cache::{PlanCache, PlanSource};
use crate::qos::{EnvQos, MsId, Qos, Requirements};
use crate::synth;
use crate::utility::UtilityIndex;

/// Which algorithm produced a generated strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Exhaustive search over `F(M)` (all microservices).
    Exhaustive,
    /// Exhaustive search over `F'(M)` (subsets allowed).
    ExhaustiveSubsets,
    /// Greedy approximation over all microservices (Algorithm 2).
    Approximation,
    /// Multi-start hill climbing over leaf swaps, seeded by the
    /// approximation and the two predefined patterns.
    LocalSearch,
    /// Greedy approximation that stops early when utility stops improving.
    ApproximationEarlyStop,
    /// Predefined fail-over pattern (`a-b-…`), microservices ordered by
    /// individual utility.
    Failover,
    /// Predefined speculative-parallel pattern (`a*b*…`).
    SpeculativeParallel,
    /// Width-`W` beam search ([`Generator::beam`]): greedy at width 1,
    /// exhaustive in the limit. The width is carried by the backend
    /// identity ([`crate::backend::BackendId`]), not the method.
    Beam,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Method::Exhaustive => "exhaustive",
            Method::ExhaustiveSubsets => "exhaustive-subsets",
            Method::Approximation => "approximation",
            Method::LocalSearch => "local-search",
            Method::ApproximationEarlyStop => "approximation-early-stop",
            Method::Failover => "failover",
            Method::SpeculativeParallel => "speculative-parallel",
            Method::Beam => "beam",
        };
        f.write_str(name)
    }
}

/// How a [`Generated`] strategy was found: candidate counts and timing.
///
/// Effort accounting is unified across every backend: for a fresh
/// (non-cached) result, `candidates_seen + candidates_pruned ==
/// `[`Generated::evaluated`], the number of candidate strategies
/// *considered*. Auxiliary estimates — the per-leaf ranking behind
/// `sortByUtility`, the exhaustive engine's seed bounds — are never
/// counted by any backend. For the exhaustive methods the sum equals the
/// full search-space size (`F(M)` or `F'(M)`): pruning skips estimation
/// work, never candidates' consideration. Heuristic methods report their
/// estimate count as `candidates_seen` with zero pruned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SynthesisReport {
    /// Candidates whose QoS was actually estimated.
    pub candidates_seen: u64,
    /// Candidates skipped by branch-and-bound utility bounds.
    pub candidates_pruned: u64,
    /// Wall-clock time of the generation call.
    pub elapsed: Duration,
}

/// A generated strategy together with its estimated QoS and utility.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Generated {
    /// The synthesized execution strategy.
    pub strategy: Strategy,
    /// Its estimated QoS (Algorithm 1).
    pub qos: Qos,
    /// Its utility index against the requirements used during generation.
    pub utility: f64,
    /// How many candidate strategies were *considered* (estimated plus
    /// pruned) — stable across pruning/parallelism settings, matching the
    /// historical "every candidate was estimated" semantics.
    pub evaluated: usize,
    /// Which algorithm produced it.
    pub method: Method,
    /// Counts and timing of the synthesis run.
    #[serde(default)]
    pub report: SynthesisReport,
    /// Whether this result came from a cold search, a warm-started search,
    /// or the plan cache.
    #[serde(default)]
    pub source: PlanSource,
}

/// Equality ignores [`Generated::report`] and [`Generated::source`]: two
/// runs that pick the same strategy with the same QoS are the same result
/// even when their timings (or pruning ratios / plan provenance, across
/// different settings) differ.
impl PartialEq for Generated {
    fn eq(&self, other: &Self) -> bool {
        self.strategy == other.strategy
            && self.qos == other.qos
            && self.utility == other.utility
            && self.evaluated == other.evaluated
            && self.method == other.method
    }
}

impl fmt::Display for Generated {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (U={:.3}, {}, via {})",
            self.strategy, self.utility, self.qos, self.method
        )
    }
}

/// Strategy generator configured with a utility index and the exhaustive /
/// approximation threshold `θ`.
///
/// # Examples
///
/// ```
/// use qce_strategy::{EnvQos, Generator, Requirements};
///
/// // Fire detection (Section III.D) under Qc=100, Ql=100, Qr=97%.
/// let env = EnvQos::from_triples(&[
///     (50.0, 50.0, 0.6),
///     (100.0, 100.0, 0.6),
///     (150.0, 150.0, 0.7),
///     (200.0, 200.0, 0.7),
///     (250.0, 250.0, 0.8),
/// ])?;
/// let req = Requirements::new(100.0, 100.0, 0.97)?;
/// let best = Generator::default().generate(&env, &env.ids(), &req)?;
/// // The custom strategy beats both predefined patterns on utility.
/// let failover = Generator::default().failover(&env, &env.ids(), &req)?;
/// let parallel = Generator::default().speculative_parallel(&env, &env.ids(), &req)?;
/// assert!(best.utility >= failover.utility);
/// assert!(best.utility >= parallel.utility);
///
/// // Tuning the engine goes through the builder:
/// let tuned = Generator::builder()
///     .threshold(6)
///     .parallelism(2)
///     .pruning(true)
///     .build();
/// assert_eq!(tuned.generate(&env, &env.ids(), &req)?.strategy, best.strategy);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Generator {
    utility: UtilityIndex,
    threshold: usize,
    parallelism: usize,
    pruning: bool,
    warm_start: bool,
    estimator: Arc<dyn Estimator>,
    /// Environment-independent candidate-tree caches for the synthesis
    /// engine, keyed by the searched id list and shared across searches
    /// (and across clones of this generator). See [`synth::NodeCache`].
    caches: Arc<Mutex<HashMap<Vec<MsId>, Arc<synth::NodeCache>>>>,
    /// Cross-slot plan memo, consulted before searching and filled after.
    plan_cache: Option<Arc<PlanCache>>,
    /// Last winner per `(ids, subsets)` searched — the warm-start
    /// incumbents, shared across clones like [`Generator::caches`].
    incumbents: Arc<Mutex<IncumbentMap>>,
}

/// Warm-start incumbent memo: the last winner per searched `(ids,
/// subsets)` pair.
type IncumbentMap = HashMap<(Vec<MsId>, bool), Strategy>;

/// How many `(ids, subsets)` keys the warm-start incumbent memo retains.
/// Like [`NODE_CACHE_LISTS`], runtimes re-search the same few equivalent
/// sets; past the cap an arbitrary entry is replaced.
const INCUMBENT_LISTS: usize = 16;

/// How many distinct id lists [`Generator`] keeps candidate-tree caches
/// for. Runtimes search the same equivalent set over and over, so a small
/// cap suffices; searches past the cap still run (with a private,
/// single-search cache) — they just rebuild the trees next time.
const NODE_CACHE_LISTS: usize = 8;

/// Default exhaustive/approximation switch-over: `F(6) = 64 743` candidates
/// estimate in tens of milliseconds, `F(7) ≈ 1.6 M` takes seconds.
pub const DEFAULT_THRESHOLD: usize = 6;

impl Default for Generator {
    fn default() -> Self {
        GeneratorBuilder::default().build()
    }
}

/// Builder for [`Generator`] — the one place to configure the utility
/// index, the exhaustive/approximation threshold, and the synthesis
/// engine's parallelism, pruning, and estimator.
///
/// # Examples
///
/// ```
/// use qce_strategy::{Generator, UtilityIndex};
///
/// let gen = Generator::builder()
///     .utility(UtilityIndex::default())
///     .threshold(6)
///     .parallelism(0) // 0 = one worker per available core
///     .pruning(true)
///     .build();
/// assert_eq!(gen.threshold(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct GeneratorBuilder {
    utility: UtilityIndex,
    threshold: usize,
    parallelism: usize,
    pruning: bool,
    warm_start: bool,
    estimator: Option<Arc<dyn Estimator>>,
    plan_cache: Option<Arc<PlanCache>>,
}

impl Default for GeneratorBuilder {
    fn default() -> Self {
        GeneratorBuilder {
            utility: UtilityIndex::default(),
            threshold: DEFAULT_THRESHOLD,
            parallelism: 0,
            pruning: true,
            warm_start: false,
            estimator: None,
            plan_cache: None,
        }
    }
}

impl GeneratorBuilder {
    /// The utility index that ranks candidate strategies (Equation 1).
    #[must_use]
    pub fn utility(mut self, utility: UtilityIndex) -> Self {
        self.utility = utility;
        self
    }

    /// The exhaustive/approximation switch-over `θ` (Algorithm 2 line 1).
    #[must_use]
    pub fn threshold(mut self, threshold: usize) -> Self {
        self.threshold = threshold;
        self
    }

    /// Worker threads for the exhaustive searches; `0` (the default)
    /// resolves to the number of available cores at search time.
    #[must_use]
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Enables (default) or disables branch-and-bound pruning. Pruning
    /// never changes the generated strategy, its QoS bits, or
    /// [`Generated::evaluated`] — only how many candidates are actually
    /// estimated ([`SynthesisReport::candidates_seen`]).
    #[must_use]
    pub fn pruning(mut self, enabled: bool) -> Self {
        self.pruning = enabled;
        self
    }

    /// Enables incumbent warm-starting (off by default): each exhaustive
    /// search re-estimates the *previous* winner over the same `(ids,
    /// subsets)` under the current environment and seeds the
    /// branch-and-bound bar with its utility, so pruning bites from the
    /// first candidate. The winner stays bit-identical to a cold search —
    /// the bound is the exact utility of a member of the search space (see
    /// `DESIGN.md` §11) — only [`SynthesisReport::candidates_seen`]
    /// shrinks. No effect when pruning is disabled or the estimator routes
    /// through the generic scan.
    #[must_use]
    pub fn warm_start(mut self, enabled: bool) -> Self {
        self.warm_start = enabled;
        self
    }

    /// Installs a shared [`PlanCache`] (none by default): exhaustive
    /// searches first look up the winner memoized for these exact (or,
    /// with a positive quantum, near-identical quantized) inputs, and
    /// store their result on a miss. See the [`crate::plan_cache`] module
    /// docs for the keying and staleness rules.
    #[must_use]
    pub fn plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// The QoS estimator. Defaults to a fresh memoizing
    /// [`Algorithm1`]; supplying anything that is not bit-for-bit
    /// Algorithm 1 routes the exhaustive searches through the generic
    /// (unpruned) scan.
    #[must_use]
    pub fn estimator(mut self, estimator: Arc<dyn Estimator>) -> Self {
        self.estimator = Some(estimator);
        self
    }

    /// Builds the configured [`Generator`].
    #[must_use]
    pub fn build(self) -> Generator {
        Generator {
            utility: self.utility,
            threshold: self.threshold,
            parallelism: self.parallelism,
            pruning: self.pruning,
            warm_start: self.warm_start,
            estimator: self
                .estimator
                .unwrap_or_else(|| Arc::new(Algorithm1::new())),
            caches: Arc::new(Mutex::new(HashMap::new())),
            plan_cache: self.plan_cache,
            incumbents: Arc::new(Mutex::new(HashMap::new())),
        }
    }
}

impl Generator {
    /// Creates a generator with the given utility index and threshold `θ`,
    /// with default parallelism (auto), pruning (on), and estimator
    /// (Algorithm 1).
    ///
    /// **Deprecated** in favour of [`Generator::builder`], which exposes
    /// the remaining knobs; kept as a thin stable wrapper (without a
    /// `#[deprecated]` attribute, so existing builds stay warning-free).
    #[must_use]
    pub fn new(utility: UtilityIndex, threshold: usize) -> Self {
        Generator::builder()
            .utility(utility)
            .threshold(threshold)
            .build()
    }

    /// Starts building a generator; see [`GeneratorBuilder`].
    #[must_use]
    pub fn builder() -> GeneratorBuilder {
        GeneratorBuilder::default()
    }

    /// The configured utility index.
    #[must_use]
    pub fn utility_index(&self) -> UtilityIndex {
        self.utility
    }

    /// The configured threshold `θ`.
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The configured worker count (`0` = auto).
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Whether branch-and-bound pruning is enabled.
    #[must_use]
    pub fn pruning(&self) -> bool {
        self.pruning
    }

    /// Whether incumbent warm-starting is enabled.
    #[must_use]
    pub fn warm_start(&self) -> bool {
        self.warm_start
    }

    /// The installed plan cache, if any.
    #[must_use]
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plan_cache.as_ref()
    }

    /// The configured estimator.
    #[must_use]
    pub fn estimator(&self) -> &Arc<dyn Estimator> {
        &self.estimator
    }

    /// Forgets every warm-start incumbent. Callers use this when the
    /// inputs the incumbents were won under stop being representative —
    /// e.g. a live requirement override — so the next search runs truly
    /// cold instead of warm-started from a winner for the old inputs.
    /// Returns how many incumbents were dropped.
    pub fn clear_incumbents(&self) -> usize {
        let mut incumbents = self
            .incumbents
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let dropped = incumbents.len();
        incumbents.clear();
        dropped
    }

    /// Estimates through the configured estimator; ids are pre-validated
    /// by every public entry point, but custom estimators may still fail.
    fn est(&self, s: &Strategy, env: &EnvQos) -> Result<Qos, GenerateError> {
        Ok(self.estimator.estimate(s, env)?)
    }

    /// `parallelism` with `0` resolved to the available cores.
    fn resolved_parallelism(&self) -> usize {
        if self.parallelism != 0 {
            self.parallelism
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Algorithm 2: exhaustive search while `|M| ≤ θ`, greedy approximation
    /// beyond.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::NoMicroservices`] for an empty id list, or
    /// an estimation error if `env` lacks an entry for some id.
    pub fn generate(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        if ids.len() <= self.threshold {
            self.exhaustive(env, ids, req)
        } else {
            self.approximation(env, ids, req)
        }
    }

    /// Runs the search backend selected by `choice` — the pluggable entry
    /// point behind the CLI's `--planner` flag.
    /// [`BackendChoice::Threshold`](crate::backend::BackendChoice) (the
    /// default) reproduces [`Generator::generate`]'s paper rule exactly;
    /// `Auto` also falls back to that rule here, because the runtime's
    /// bandit resolves `Auto` to a concrete arm *before* calling the
    /// generator.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Generator::generate`].
    pub fn generate_with(
        &self,
        choice: crate::backend::BackendChoice,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        crate::backend::resolve(choice, ids.len(), self.threshold).search(self, env, ids, req)
    }

    /// Exhaustive search over `F(M)`: estimates every strategy that uses
    /// all of `ids` and returns the utility-maximal one.
    ///
    /// Ties break deterministically: lower cost, then lower latency, then
    /// the lexicographically smaller rendering.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::NoMicroservices`] for an empty id list, or
    /// an estimation error if `env` lacks an entry for some id.
    pub fn exhaustive(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        self.search(env, ids, req, Method::Exhaustive)
    }

    /// Exhaustive search over `F'(M)`: like [`Generator::exhaustive`] but
    /// candidate strategies may use any non-empty subset of `ids`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Generator::exhaustive`].
    pub fn exhaustive_subsets(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        self.search(env, ids, req, Method::ExhaustiveSubsets)
    }

    fn search(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
        method: Method,
    ) -> Result<Generated, GenerateError> {
        if ids.is_empty() {
            return Err(GenerateError::NoMicroservices);
        }
        req.validate().map_err(GenerateError::InvalidRequirements)?;
        // Validate availability up front so the scan paths below can rely
        // on successful estimation.
        for &id in ids {
            if env.get(id).is_none() {
                return Err(crate::error::EstimateError::MissingMicroservice(id).into());
            }
        }
        let start = Instant::now();
        let subsets = method == Method::ExhaustiveSubsets;
        if let Some(cache) = &self.plan_cache {
            if let Some(mut hit) = cache.lookup(
                env,
                ids,
                req,
                subsets,
                self.utility.k(),
                self.estimator.name(),
                crate::backend::BackendId::EXHAUSTIVE,
            ) {
                // The stored winner (and its `evaluated` space size) is
                // what a fresh search over these keyed inputs would have
                // produced; only the effort counters describe *this* call.
                hit.source = PlanSource::Cached;
                hit.report = SynthesisReport {
                    candidates_seen: 0,
                    candidates_pruned: 0,
                    elapsed: start.elapsed(),
                };
                return Ok(hit);
            }
        }
        let workers = self.resolved_parallelism();
        let mut source = PlanSource::Cold;
        let (strategy, qos, utility, seen, pruned) =
            if self.estimator.is_algorithm1() && ids.len() <= MAX_COUNT_M {
                let initial_bound = if self.pruning {
                    let mut bound = self.seed_bound(env, ids, req)?;
                    if let Some(incumbent) = self.incumbent_utility(env, ids, req, subsets) {
                        bound = synth::fold_incumbent(bound, incumbent);
                        source = PlanSource::WarmStart;
                    }
                    bound
                } else {
                    f64::NEG_INFINITY
                };
                let cache = self.node_cache(ids);
                let outcome = synth::search(&synth::SearchSpec {
                    env,
                    ids,
                    req,
                    utility: self.utility,
                    subsets,
                    pruning: self.pruning,
                    parallelism: workers,
                    initial_bound,
                    cache: &cache,
                });
                (
                    outcome.strategy,
                    outcome.qos,
                    outcome.utility,
                    outcome.seen,
                    outcome.pruned,
                )
            } else {
                self.generic_scan(env, ids, req, subsets, workers)?
            };
        let generated = Generated {
            strategy,
            qos,
            utility,
            evaluated: usize::try_from(seen + pruned).unwrap_or(usize::MAX),
            method,
            report: SynthesisReport {
                candidates_seen: seen,
                candidates_pruned: pruned,
                elapsed: start.elapsed(),
            },
            source,
        };
        if self.warm_start {
            self.remember_incumbent(ids, subsets, &generated.strategy);
        }
        if let Some(cache) = &self.plan_cache {
            cache.store(
                env,
                ids,
                req,
                subsets,
                self.utility.k(),
                self.estimator.name(),
                crate::backend::BackendId::EXHAUSTIVE,
                &generated,
            );
        }
        Ok(generated)
    }

    /// The warm-start incumbent bound: the previous winner over the same
    /// `(ids, subsets)`, re-estimated under the *current* environment and
    /// requirements. The previous winner is by construction a member of
    /// the current search space, so its exact utility is an admissible
    /// initial bar (see [`synth::fold_incumbent`]).
    fn incumbent_utility(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
        subsets: bool,
    ) -> Option<f64> {
        if !self.warm_start {
            return None;
        }
        let previous = {
            let incumbents = self
                .incumbents
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            incumbents.get(&(ids.to_vec(), subsets)).cloned()?
        };
        // The incumbent's leaves are a subset of `ids`, all validated
        // against `env` by the caller, so estimation cannot fail — but a
        // custom estimator may still object; a bound is optional, so any
        // failure just degrades to a cold search.
        let qos = self.est(&previous, env).ok()?;
        Some(self.utility.utility(&qos, req))
    }

    /// Records `winner` as the warm-start incumbent for `(ids, subsets)`.
    fn remember_incumbent(&self, ids: &[MsId], subsets: bool, winner: &Strategy) {
        let mut incumbents = self
            .incumbents
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let key = (ids.to_vec(), subsets);
        if incumbents.len() >= INCUMBENT_LISTS && !incumbents.contains_key(&key) {
            let victim = incumbents.keys().next().cloned();
            if let Some(victim) = victim {
                incumbents.remove(&victim);
            }
        }
        incumbents.insert(key, winner.clone());
    }

    /// The shared candidate-tree cache for `ids`, created on first use.
    /// Candidate trees depend only on the id list — not on the environment
    /// — so one cache serves every search (and every worker) over the same
    /// equivalent set. Past [`NODE_CACHE_LISTS`] distinct lists a fresh
    /// single-search cache is handed out instead of growing the map.
    fn node_cache(&self, ids: &[MsId]) -> Arc<synth::NodeCache> {
        let mut caches = self
            .caches
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(cache) = caches.get(ids) {
            return Arc::clone(cache);
        }
        let cache = Arc::new(synth::NodeCache::new(ids.len()));
        if caches.len() < NODE_CACHE_LISTS {
            caches.insert(ids.to_vec(), Arc::clone(&cache));
        }
        cache
    }

    /// Utility of the best *seed* candidate — the greedy approximation and
    /// the two predefined patterns, all of which are members of `F(M)`
    /// (and hence of `F'(M)`) — used as the engine's initial pruning bar.
    /// Seed estimates are not counted in [`Generated::evaluated`].
    fn seed_bound(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<f64, GenerateError> {
        let mut bound = self.failover(env, ids, req)?.utility;
        if ids.len() >= 2 {
            bound = bound.max(self.speculative_parallel(env, ids, req)?.utility);
        }
        bound = bound.max(self.approximation(env, ids, req)?.utility);
        Ok(bound)
    }

    /// Exhaustive scan through an arbitrary estimator: no pruning (the
    /// branch-and-bound bounds are only admissible against Algorithm 1's
    /// formulas), optionally chunked across worker threads with
    /// [`StrategyIter`]. The winner is identical for any worker count
    /// because the per-candidate comparison is a strict total order.
    fn generic_scan(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
        subsets: bool,
        workers: usize,
    ) -> Result<(Strategy, Qos, f64, u64, u64), GenerateError> {
        type Local = (Option<(Strategy, Qos, f64)>, u64);
        let merge = |best: &mut Option<(Strategy, Qos, f64)>, s: Strategy, qos: Qos, u: f64| {
            let better = match &best {
                None => true,
                Some((bs, bq, bu)) => u > *bu || (u == *bu && better_tiebreak(&s, &qos, bs, bq)),
            };
            if better {
                *best = Some((s, qos, u));
            }
        };
        let consider = |best: &mut Option<(Strategy, Qos, f64)>, seen: &mut u64, s: Strategy| {
            let qos = self
                .estimator
                .estimate_uncached(&s, env)
                .expect("ids validated above");
            let u = self.utility.utility(&qos, req);
            *seen += 1;
            merge(best, s, qos, u);
        };
        let locals: Vec<Local> = if workers > 1 && ids.len() <= MAX_COUNT_M {
            let iter = if subsets {
                StrategyIter::with_subsets(ids)
            } else {
                StrategyIter::full(ids)
            };
            let consider = &consider;
            std::thread::scope(|scope| {
                let handles: Vec<_> = iter
                    .chunks(workers)
                    .into_iter()
                    .map(|chunk| {
                        scope.spawn(move || {
                            let mut best = None;
                            let mut seen = 0u64;
                            for s in chunk {
                                consider(&mut best, &mut seen, s);
                            }
                            (best, seen)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scan worker panicked"))
                    .collect()
            })
        } else {
            // `for_each_*` has no `MAX_COUNT_M` ceiling, so very large id
            // lists still scan (sequentially), exactly as before.
            let mut best = None;
            let mut seen = 0u64;
            let mut visit = |s: Strategy| consider(&mut best, &mut seen, s);
            if subsets {
                for_each_with_subsets(ids, &mut visit);
            } else {
                for_each_full(ids, &mut visit);
            }
            vec![(best, seen)]
        };
        let mut seen = 0u64;
        let mut best: Option<(Strategy, Qos, f64)> = None;
        for (local, n) in locals {
            seen += n;
            if let Some((s, qos, u)) = local {
                merge(&mut best, s, qos, u);
            }
        }
        let (strategy, qos, u) = best.expect("non-empty id list yields at least one strategy");
        Ok((strategy, qos, u, seen, 0))
    }

    /// The greedy approximation heuristic of Algorithm 2 (lines 4–13).
    ///
    /// Microservices are sorted by individual utility (best first); the
    /// strategy grows one microservice at a time, keeping the better of the
    /// sequential append `es - m` and the parallel wrap `(es) * m`.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::NoMicroservices`] for an empty id list, or
    /// an estimation error if `env` lacks an entry for some id.
    pub fn approximation(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        self.greedy(env, ids, req, false)
    }

    /// The subset variant of the approximation heuristic: stops as soon as
    /// including the next microservice no longer improves the utility.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Generator::approximation`].
    pub fn approximation_early_stop(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        self.greedy(env, ids, req, true)
    }

    fn greedy(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
        early_stop: bool,
    ) -> Result<Generated, GenerateError> {
        if ids.is_empty() {
            return Err(GenerateError::NoMicroservices);
        }
        let start = Instant::now();
        let order = self.sort_by_utility(env, ids, req)?;
        // Unified effort accounting: the per-leaf estimates behind the
        // sort are auxiliary and not counted (matching the exhaustive
        // engine, whose seed estimates are likewise free); the best-leaf
        // incumbent is the first candidate considered.
        let mut evaluated = 1;
        let mut es = Strategy::leaf(order[0]);
        let mut qos = self.est(&es, env)?;
        let mut utility = self.utility.utility(&qos, req);
        for &next in &order[1..] {
            let seq = es
                .clone()
                .then(Strategy::leaf(next))
                .expect("ids are distinct");
            let par = es
                .clone()
                .race(Strategy::leaf(next))
                .expect("ids are distinct");
            let seq_qos = self.est(&seq, env)?;
            let par_qos = self.est(&par, env)?;
            let seq_u = self.utility.utility(&seq_qos, req);
            let par_u = self.utility.utility(&par_qos, req);
            evaluated += 2;
            // Paper, Algorithm 2 line 8: strict '>' — ties go parallel.
            let (cand, cand_qos, cand_u) = if seq_u > par_u {
                (seq, seq_qos, seq_u)
            } else {
                (par, par_qos, par_u)
            };
            if early_stop && cand_u <= utility {
                break;
            }
            es = cand;
            qos = cand_qos;
            utility = cand_u;
        }
        Ok(Generated {
            strategy: es,
            qos,
            utility,
            evaluated,
            method: if early_stop {
                Method::ApproximationEarlyStop
            } else {
                Method::Approximation
            },
            report: SynthesisReport {
                candidates_seen: evaluated as u64,
                candidates_pruned: 0,
                elapsed: start.elapsed(),
            },
            source: PlanSource::Cold,
        })
    }

    /// Multi-start hill climbing: an extension beyond the paper that sits
    /// between the exhaustive search (optimal, exponential) and the greedy
    /// approximation (fast, shape-committed).
    ///
    /// Starting from the approximation result, the fail-over chain, and the
    /// speculative-parallel pattern, the search repeatedly moves to the best
    /// *leaf-swap* neighbour (exchange the positions of two microservices in
    /// the strategy tree) while utility improves. Leaf swaps explore
    /// assignments of microservices to tree positions that the greedy
    /// construction can never reach, at `O(M²)` estimates per step instead
    /// of `F(M)`.
    ///
    /// The result is never worse than [`Generator::approximation`] (it is
    /// one of the starts) and never better than [`Generator::exhaustive`]
    /// (which scans the full space).
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::NoMicroservices`] for an empty id list, or
    /// an estimation error if `env` lacks an entry for some id.
    pub fn local_search(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        if ids.is_empty() {
            return Err(GenerateError::NoMicroservices);
        }
        let start_time = Instant::now();
        // Unified effort accounting: only candidates considered count —
        // the starts' own estimates plus every leaf-swap neighbour; the
        // sorting estimates inside the starts are auxiliary.
        let mut evaluated = 0;
        let mut starts = vec![self.approximation(env, ids, req)?];
        evaluated += starts[0].evaluated;
        if ids.len() >= 2 {
            starts.push(self.failover(env, ids, req)?);
            starts.push(self.speculative_parallel(env, ids, req)?);
            evaluated += 2;
        }

        let mut best: Option<(Strategy, Qos, f64)> = None;
        for start in starts {
            let mut current = (start.strategy, start.qos, start.utility);
            // Hill climb: move to the best improving leaf-swap neighbour.
            loop {
                let mut improved: Option<(Strategy, Qos, f64)> = None;
                for i in 0..ids.len() {
                    for j in (i + 1)..ids.len() {
                        let (a, b) = (ids[i], ids[j]);
                        let swapped = current
                            .0
                            .map_ids(|id| {
                                if id == a {
                                    b
                                } else if id == b {
                                    a
                                } else {
                                    id
                                }
                            })
                            .expect("transpositions are bijections");
                        if swapped == current.0 {
                            continue; // Par-sibling swap: same strategy
                        }
                        let qos = self.est(&swapped, env)?;
                        let utility = self.utility.utility(&qos, req);
                        evaluated += 1;
                        let beats_improved = improved.as_ref().is_none_or(|(_, _, u)| utility > *u);
                        if utility > current.2 && beats_improved {
                            improved = Some((swapped, qos, utility));
                        }
                    }
                }
                match improved {
                    Some(next) => current = next,
                    None => break,
                }
            }
            let better = match &best {
                None => true,
                Some((bs, bq, bu)) => {
                    current.2 > *bu
                        || (current.2 == *bu && better_tiebreak(&current.0, &current.1, bs, bq))
                }
            };
            if better {
                best = Some(current);
            }
        }
        let (strategy, qos, utility) = best.expect("at least one start");
        Ok(Generated {
            strategy,
            qos,
            utility,
            evaluated,
            method: Method::LocalSearch,
            report: SynthesisReport {
                candidates_seen: evaluated as u64,
                candidates_pruned: 0,
                elapsed: start_time.elapsed(),
            },
            source: PlanSource::Cold,
        })
    }

    /// The predefined fail-over pattern over `ids`, ordered by individual
    /// utility (the priority order a MOLE script would specify), with its
    /// estimated QoS.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::NoMicroservices`] for an empty id list, or
    /// an estimation error if `env` lacks an entry for some id.
    pub fn failover(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        let start = Instant::now();
        let order = self.sort_by_utility(env, ids, req)?;
        let strategy = failover(&order).expect("ids are distinct and non-empty");
        let qos = self.est(&strategy, env)?;
        let utility = self.utility.utility(&qos, req);
        Ok(Generated {
            strategy,
            qos,
            utility,
            evaluated: 1,
            method: Method::Failover,
            report: SynthesisReport {
                candidates_seen: 1,
                candidates_pruned: 0,
                elapsed: start.elapsed(),
            },
            source: PlanSource::Cold,
        })
    }

    /// The predefined fail-over pattern in the *given* order — the chain a
    /// MOLE script pins at development time, oblivious to the environment's
    /// actual QoS. This is the "predefined sequential" baseline of the
    /// paper's Fig. 6/Fig. 7 comparisons.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::NoMicroservices`] for an empty id list, or
    /// an estimation error if `env` lacks an entry for some id.
    pub fn failover_in_order(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        if ids.is_empty() {
            return Err(GenerateError::NoMicroservices);
        }
        req.validate().map_err(GenerateError::InvalidRequirements)?;
        let start = Instant::now();
        let strategy = failover(ids).map_err(|_| GenerateError::NoMicroservices)?;
        let qos = self.est(&strategy, env)?;
        let utility = self.utility.utility(&qos, req);
        Ok(Generated {
            strategy,
            qos,
            utility,
            evaluated: 1,
            method: Method::Failover,
            report: SynthesisReport {
                candidates_seen: 1,
                candidates_pruned: 0,
                elapsed: start.elapsed(),
            },
            source: PlanSource::Cold,
        })
    }

    /// The predefined speculative-parallel pattern over `ids`, with its
    /// estimated QoS.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Generator::failover`].
    pub fn speculative_parallel(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        if ids.is_empty() {
            return Err(GenerateError::NoMicroservices);
        }
        req.validate().map_err(GenerateError::InvalidRequirements)?;
        let start = Instant::now();
        let strategy = speculative_parallel(ids).expect("ids are distinct and non-empty");
        let qos = self.est(&strategy, env)?;
        let utility = self.utility.utility(&qos, req);
        Ok(Generated {
            strategy,
            qos,
            utility,
            evaluated: 1,
            method: Method::SpeculativeParallel,
            report: SynthesisReport {
                candidates_seen: 1,
                candidates_pruned: 0,
                elapsed: start.elapsed(),
            },
            source: PlanSource::Cold,
        })
    }

    /// Sorts `ids` by individual (single-microservice) utility, best first —
    /// the `sortByUtility` step of Algorithm 2. Ties break on the id.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::NoMicroservices`] for an empty id list, or
    /// an estimation error if `env` lacks an entry for some id.
    pub fn sort_by_utility(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Vec<MsId>, GenerateError> {
        if ids.is_empty() {
            return Err(GenerateError::NoMicroservices);
        }
        req.validate().map_err(GenerateError::InvalidRequirements)?;
        let mut scored: Vec<(MsId, f64)> = ids
            .iter()
            .map(|&id| {
                let qos = self.est(&Strategy::leaf(id), env)?;
                Ok((id, self.utility.utility(&qos, req)))
            })
            .collect::<Result<_, GenerateError>>()?;
        // `total_cmp`, not `partial_cmp`: validated requirements keep
        // utilities finite, but ranking must stay a total order even if a
        // custom estimator smuggles a NaN through.
        scored.sort_by(|(id_a, u_a), (id_b, u_b)| u_b.total_cmp(u_a).then_with(|| id_a.cmp(id_b)));
        Ok(scored.into_iter().map(|(id, _)| id).collect())
    }
}

/// Deterministic tie-break for equal utilities: lower cost, then lower
/// latency, then the lexicographically smaller rendering.
///
/// Together with the utility this is a *strict total order* on distinct
/// canonical strategies (the rendering is injective), which is what lets
/// the parallel engine in [`crate::synth`] merge per-worker maxima in any
/// order and still reproduce the sequential scan's winner.
pub(crate) fn better_tiebreak(s: &Strategy, qos: &Qos, cur_s: &Strategy, cur_qos: &Qos) -> bool {
    if qos.cost != cur_qos.cost {
        return qos.cost < cur_qos.cost;
    }
    if qos.latency != cur_qos.latency {
        return qos.latency < cur_qos.latency;
    }
    s.to_string() < cur_s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate;

    /// The Section III.D fire-detection environment.
    fn env5() -> EnvQos {
        EnvQos::from_triples(&[
            (50.0, 50.0, 0.6),
            (100.0, 100.0, 0.6),
            (150.0, 150.0, 0.7),
            (200.0, 200.0, 0.7),
            (250.0, 250.0, 0.8),
        ])
        .unwrap()
    }

    fn req() -> Requirements {
        Requirements::new(100.0, 100.0, 0.97).unwrap()
    }

    #[test]
    fn exhaustive_beats_predefined_patterns() {
        let gen = Generator::default();
        let env = env5();
        let ids = env.ids();
        let best = gen.exhaustive(&env, &ids, &req()).unwrap();
        let fo = gen.failover(&env, &ids, &req()).unwrap();
        let sp = gen.speculative_parallel(&env, &ids, &req()).unwrap();
        assert!(best.utility >= fo.utility);
        assert!(best.utility >= sp.utility);
        assert_eq!(best.evaluated, 2791, "F(5) candidates");
        assert_eq!(best.method, Method::Exhaustive);
    }

    #[test]
    fn exhaustive_single_microservice() {
        let gen = Generator::default();
        let env = EnvQos::from_triples(&[(10.0, 10.0, 0.9)]).unwrap();
        let best = gen.exhaustive(&env, &[MsId(0)], &req()).unwrap();
        assert_eq!(best.strategy, Strategy::leaf(MsId(0)));
        assert_eq!(best.evaluated, 1);
    }

    #[test]
    fn exhaustive_is_optimal_by_construction() {
        // Verify the streaming argmax against a collected argmax.
        let gen = Generator::default();
        let env = env5();
        let ids: Vec<MsId> = (0..4).map(MsId).collect();
        let best = gen.exhaustive(&env, &ids, &req()).unwrap();
        let mut max_u = f64::NEG_INFINITY;
        for s in crate::enumerate::enumerate_full(&ids) {
            let qos = estimate(&s, &env).unwrap();
            max_u = max_u.max(gen.utility_index().utility(&qos, &req()));
        }
        assert!((best.utility - max_u).abs() < 1e-12);
    }

    #[test]
    fn exhaustive_subsets_at_least_as_good() {
        let gen = Generator::default();
        let env = env5();
        let ids: Vec<MsId> = (0..4).map(MsId).collect();
        let full = gen.exhaustive(&env, &ids, &req()).unwrap();
        let subsets = gen.exhaustive_subsets(&env, &ids, &req()).unwrap();
        assert!(subsets.utility >= full.utility);
        assert_eq!(subsets.evaluated, 293, "F'(4) candidates");
        assert_eq!(subsets.method, Method::ExhaustiveSubsets);
    }

    #[test]
    fn approximation_uses_all_microservices() {
        let gen = Generator::default();
        let env = env5();
        let ids = env.ids();
        let approx = gen.approximation(&env, &ids, &req()).unwrap();
        assert_eq!(approx.strategy.len(), 5);
        assert_eq!(approx.method, Method::Approximation);
    }

    #[test]
    fn approximation_never_beats_exhaustive() {
        let gen = Generator::default();
        let env = env5();
        let ids = env.ids();
        let approx = gen.approximation(&env, &ids, &req()).unwrap();
        let exact = gen.exhaustive(&env, &ids, &req()).unwrap();
        assert!(approx.utility <= exact.utility + 1e-12);
    }

    #[test]
    fn approximation_at_least_matches_both_defaults_seeded_from_best_leaf() {
        // The greedy chain explores es-m and (es)*m at each step, which
        // includes the pure fail-over chain (all-sequential choices) and the
        // pure parallel strategy (all-parallel choices) over the same
        // utility-sorted order, so it can't be worse than either.
        let gen = Generator::default();
        let env = env5();
        let ids = env.ids();
        let approx = gen.approximation(&env, &ids, &req()).unwrap();
        let fo = gen.failover(&env, &ids, &req()).unwrap();
        let sp = gen.speculative_parallel(&env, &ids, &req()).unwrap();
        assert!(approx.utility >= fo.utility.min(sp.utility) - 1e-12);
    }

    #[test]
    fn early_stop_yields_subset_when_extra_ms_hurts() {
        // One excellent microservice + one terrible one: including the bad
        // one can only lower utility, so the early-stop variant keeps just
        // the good one.
        let env = EnvQos::from_triples(&[(10.0, 10.0, 0.99), (500.0, 500.0, 0.2)]).unwrap();
        let gen = Generator::default();
        let out = gen
            .approximation_early_stop(&env, &env.ids(), &req())
            .unwrap();
        assert_eq!(out.strategy, Strategy::leaf(MsId(0)));
        assert_eq!(out.method, Method::ApproximationEarlyStop);
        let full = gen.approximation(&env, &env.ids(), &req()).unwrap();
        assert_eq!(full.strategy.len(), 2, "plain approximation keeps both");
        assert!(out.utility >= full.utility);
    }

    #[test]
    fn generate_switches_on_threshold() {
        let gen = Generator::new(UtilityIndex::default(), 3);
        let env = env5();
        let small: Vec<MsId> = (0..3).map(MsId).collect();
        let large: Vec<MsId> = (0..5).map(MsId).collect();
        assert_eq!(
            gen.generate(&env, &small, &req()).unwrap().method,
            Method::Exhaustive
        );
        assert_eq!(
            gen.generate(&env, &large, &req()).unwrap().method,
            Method::Approximation
        );
    }

    #[test]
    fn sort_by_utility_orders_best_first() {
        let gen = Generator::default();
        let env = env5();
        let order = gen.sort_by_utility(&env, &env.ids(), &req()).unwrap();
        // a dominates every other microservice here (cheapest, fastest; its
        // lower reliability costs less utility than the others' overruns).
        assert_eq!(order[0], MsId(0));
        let utilities: Vec<f64> = order
            .iter()
            .map(|&id| {
                let qos = estimate(&Strategy::leaf(id), &env).unwrap();
                gen.utility_index().utility(&qos, &req())
            })
            .collect();
        for pair in utilities.windows(2) {
            assert!(pair[0] >= pair[1], "not sorted: {utilities:?}");
        }
    }

    #[test]
    fn empty_ids_rejected_everywhere() {
        let gen = Generator::default();
        let env = env5();
        let r = req();
        assert!(matches!(
            gen.generate(&env, &[], &r),
            Err(GenerateError::NoMicroservices)
        ));
        assert!(gen.exhaustive(&env, &[], &r).is_err());
        assert!(gen.approximation(&env, &[], &r).is_err());
        assert!(gen.failover(&env, &[], &r).is_err());
        assert!(gen.speculative_parallel(&env, &[], &r).is_err());
        assert!(gen.sort_by_utility(&env, &[], &r).is_err());
    }

    #[test]
    fn missing_environment_entry_rejected() {
        let gen = Generator::default();
        let env = EnvQos::from_triples(&[(1.0, 1.0, 0.5)]).unwrap();
        let ids = [MsId(0), MsId(9)];
        assert!(matches!(
            gen.exhaustive(&env, &ids, &req()),
            Err(GenerateError::Estimate(_))
        ));
        assert!(gen.approximation(&env, &ids, &req()).is_err());
    }

    #[test]
    fn generated_display_mentions_method() {
        let gen = Generator::default();
        let env = env5();
        let out = gen.failover(&env, &env.ids(), &req()).unwrap();
        let text = out.to_string();
        assert!(text.contains("failover"), "{text}");
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = Generator::default();
        let env = env5();
        let a = gen.exhaustive(&env, &env.ids(), &req()).unwrap();
        let b = gen.exhaustive(&env, &env.ids(), &req()).unwrap();
        assert_eq!(a, b);
    }

    /// Satellite: effort accounting is unified across every backend — a
    /// fresh (non-cached) result always satisfies `candidates_seen +
    /// candidates_pruned == evaluated`, with auxiliary estimates (leaf
    /// ranking, seed bounds) excluded everywhere. The greedy approximation
    /// is pinned to its closed form `1 + 2(M-1)`.
    #[test]
    fn effort_accounting_invariant_across_backends() {
        let gen = Generator::default();
        let env = env5();
        let ids = env.ids();
        let r = req();
        let outputs = vec![
            gen.exhaustive(&env, &ids, &r).unwrap(),
            gen.exhaustive_subsets(&env, &ids, &r).unwrap(),
            gen.approximation(&env, &ids, &r).unwrap(),
            gen.approximation_early_stop(&env, &ids, &r).unwrap(),
            gen.local_search(&env, &ids, &r).unwrap(),
            gen.failover(&env, &ids, &r).unwrap(),
            gen.failover_in_order(&env, &ids, &r).unwrap(),
            gen.speculative_parallel(&env, &ids, &r).unwrap(),
            gen.beam(&env, &ids, &r, 1).unwrap(),
            gen.beam(&env, &ids, &r, 3).unwrap(),
        ];
        for out in &outputs {
            assert_eq!(
                out.report.candidates_seen + out.report.candidates_pruned,
                out.evaluated as u64,
                "{}: seen + pruned must equal evaluated",
                out.method
            );
        }
        let approx = &outputs[2];
        assert_eq!(
            approx.evaluated,
            1 + 2 * (ids.len() - 1),
            "greedy counts the best-leaf incumbent plus two per step"
        );
        assert_eq!(approx.evaluated, outputs[8].evaluated, "beam(1) matches");
    }

    #[test]
    fn generate_with_reproduces_every_backend() {
        use crate::backend::BackendChoice;
        let gen = Generator::new(UtilityIndex::default(), 3);
        let env = env5();
        let ids = env.ids();
        let r = req();
        // Threshold and Auto follow the paper rule (M=5 > θ=3 ⇒ greedy).
        for choice in [BackendChoice::Threshold, BackendChoice::Auto] {
            let out = gen.generate_with(choice, &env, &ids, &r).unwrap();
            assert_eq!(out, gen.generate(&env, &ids, &r).unwrap(), "{choice}");
            assert_eq!(out.method, Method::Approximation);
        }
        let exact = gen
            .generate_with(BackendChoice::Exhaustive, &env, &ids, &r)
            .unwrap();
        assert_eq!(exact, gen.exhaustive(&env, &ids, &r).unwrap());
        let greedy = gen
            .generate_with(BackendChoice::Greedy, &env, &ids, &r)
            .unwrap();
        assert_eq!(greedy, gen.approximation(&env, &ids, &r).unwrap());
        let beam = gen
            .generate_with(BackendChoice::Beam(2), &env, &ids, &r)
            .unwrap();
        assert_eq!(beam, gen.beam(&env, &ids, &r, 2).unwrap());
        assert_eq!(beam.method, Method::Beam);
    }
}

#[cfg(test)]
mod local_search_tests {
    use super::*;

    fn env5() -> EnvQos {
        EnvQos::from_triples(&[
            (50.0, 50.0, 0.6),
            (100.0, 100.0, 0.6),
            (150.0, 150.0, 0.7),
            (200.0, 200.0, 0.7),
            (250.0, 250.0, 0.8),
        ])
        .unwrap()
    }

    fn req(c: f64, l: f64) -> Requirements {
        Requirements::new(c, l, 0.97).unwrap()
    }

    #[test]
    fn never_worse_than_approximation_never_better_than_exhaustive() {
        let gen = Generator::default();
        let env = env5();
        let ids = env.ids();
        for requirements in [req(100.0, 100.0), req(400.0, 90.0), req(150.0, 200.0)] {
            let approx = gen.approximation(&env, &ids, &requirements).unwrap();
            let local = gen.local_search(&env, &ids, &requirements).unwrap();
            let exact = gen.exhaustive(&env, &ids, &requirements).unwrap();
            assert!(local.utility >= approx.utility - 1e-12, "{requirements}");
            assert!(local.utility <= exact.utility + 1e-12, "{requirements}");
            assert_eq!(local.method, Method::LocalSearch);
        }
    }

    #[test]
    fn improves_on_approximation_somewhere() {
        // Across random environments, the leaf-swap search must find at
        // least one case where it strictly beats the greedy construction —
        // otherwise it adds nothing.
        use rand::SeedableRng;
        let gen = Generator::default();
        let requirements = req(400.0, 90.0);
        let mut improvements = 0usize;
        for seed in 0..30u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            use rand::Rng;
            let env: EnvQos = (0..6)
                .map(|_| {
                    Qos::new(
                        rng.gen_range(20.0..200.0),
                        rng.gen_range(20.0..200.0),
                        rng.gen_range(0.3..0.95),
                    )
                    .unwrap()
                })
                .collect();
            let ids = env.ids();
            let approx = gen.approximation(&env, &ids, &requirements).unwrap();
            let local = gen.local_search(&env, &ids, &requirements).unwrap();
            if local.utility > approx.utility + 1e-9 {
                improvements += 1;
            }
        }
        assert!(improvements > 0, "local search never improved in 30 trials");
    }

    #[test]
    fn single_microservice_is_trivial() {
        let gen = Generator::default();
        let env = EnvQos::from_triples(&[(10.0, 10.0, 0.9)]).unwrap();
        let local = gen
            .local_search(&env, &[MsId(0)], &req(100.0, 100.0))
            .unwrap();
        assert_eq!(local.strategy, Strategy::leaf(MsId(0)));
    }

    #[test]
    fn empty_ids_rejected() {
        let gen = Generator::default();
        assert!(matches!(
            gen.local_search(&env5(), &[], &req(100.0, 100.0)),
            Err(GenerateError::NoMicroservices)
        ));
    }

    #[test]
    fn deterministic() {
        let gen = Generator::default();
        let env = env5();
        let a = gen
            .local_search(&env, &env.ids(), &req(400.0, 90.0))
            .unwrap();
        let b = gen
            .local_search(&env, &env.ids(), &req(400.0, 90.0))
            .unwrap();
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod engine_equivalence_tests {
    use super::*;
    use crate::error::EstimateError;
    use crate::plan_cache::PlanCacheConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Algorithm 1 *not* advertising itself as such: forces the generic
    /// scan path, which is the pre-engine sequential code path.
    #[derive(Debug)]
    struct PlainAlg1;

    impl Estimator for PlainAlg1 {
        fn estimate(&self, s: &Strategy, env: &EnvQos) -> Result<Qos, EstimateError> {
            crate::estimate::estimate(s, env)
        }

        fn name(&self) -> &'static str {
            "plain-algorithm1"
        }
    }

    fn random_env(rng: &mut ChaCha8Rng, m: usize) -> EnvQos {
        (0..m)
            .map(|_| {
                Qos::new(
                    rng.gen_range(10.0..300.0),
                    rng.gen_range(10.0..300.0),
                    rng.gen_range(0.05..0.99),
                )
                .unwrap()
            })
            .collect()
    }

    fn assert_bit_identical(a: &Generated, b: &Generated, what: &str) {
        assert_eq!(a.strategy, b.strategy, "{what}: strategy");
        assert_eq!(
            a.qos.cost.to_bits(),
            b.qos.cost.to_bits(),
            "{what}: cost bits"
        );
        assert_eq!(
            a.qos.latency.to_bits(),
            b.qos.latency.to_bits(),
            "{what}: latency bits"
        );
        assert_eq!(
            a.qos.reliability.value().to_bits(),
            b.qos.reliability.value().to_bits(),
            "{what}: reliability bits"
        );
        assert_eq!(a.utility.to_bits(), b.utility.to_bits(), "{what}: utility");
        assert_eq!(a.evaluated, b.evaluated, "{what}: evaluated");
    }

    /// Satellite (d): the pruned, parallel engine returns exactly the same
    /// result — strategy, QoS bits, utility, evaluated count — as the
    /// unpruned sequential scan, for every seeded environment at M ≤ 4,
    /// in both `F(M)` and `F'(M)` modes; and `seen + pruned` always covers
    /// the whole space.
    #[test]
    fn pruned_parallel_engine_matches_unpruned_sequential_scan() {
        let requirements = Requirements::new(150.0, 150.0, 0.95).unwrap();
        let ground_truth = Generator::builder()
            .estimator(Arc::new(PlainAlg1))
            .parallelism(1)
            .build();
        let configs: Vec<(&str, Generator)> = vec![
            (
                "engine unpruned sequential",
                Generator::builder().pruning(false).parallelism(1).build(),
            ),
            (
                "engine pruned sequential",
                Generator::builder().pruning(true).parallelism(1).build(),
            ),
            (
                "engine pruned parallel",
                Generator::builder().pruning(true).parallelism(4).build(),
            ),
            (
                "generic parallel scan",
                Generator::builder()
                    .estimator(Arc::new(PlainAlg1))
                    .parallelism(3)
                    .build(),
            ),
        ];
        for m in 1..=4usize {
            for seed in 0..10u64 {
                let mut rng = ChaCha8Rng::seed_from_u64(seed * 37 + m as u64);
                let env = random_env(&mut rng, m);
                let ids = env.ids();
                for subsets in [false, true] {
                    let run = |g: &Generator| {
                        if subsets {
                            g.exhaustive_subsets(&env, &ids, &requirements).unwrap()
                        } else {
                            g.exhaustive(&env, &ids, &requirements).unwrap()
                        }
                    };
                    let truth = run(&ground_truth);
                    assert_eq!(truth.report.candidates_pruned, 0);
                    for (name, g) in &configs {
                        let out = run(g);
                        let what = format!("m={m} seed={seed} subsets={subsets} config={name}");
                        assert_bit_identical(&truth, &out, &what);
                        assert_eq!(
                            out.report.candidates_seen + out.report.candidates_pruned,
                            truth.report.candidates_seen,
                            "{what}: seen+pruned must cover the space"
                        );
                    }
                }
            }
        }
    }

    /// Pruning does real work on the paper's fire-detection environment:
    /// with the seeded bar a solid chunk of `F(5)` never gets estimated.
    /// (The engine only bothers bounding families of at least
    /// `MIN_PRUNE_COUNT` candidates — bounding tiny families costs more
    /// than enumerating them — so the pruned count is deliberately far
    /// from the theoretical maximum.)
    #[test]
    fn pruning_skips_most_of_the_space_yet_counts_everything() {
        let env = EnvQos::from_triples(&[
            (50.0, 50.0, 0.6),
            (100.0, 100.0, 0.6),
            (150.0, 150.0, 0.7),
            (200.0, 200.0, 0.7),
            (250.0, 250.0, 0.8),
        ])
        .unwrap();
        let requirements = Requirements::new(100.0, 100.0, 0.97).unwrap();
        let gen = Generator::builder().pruning(true).parallelism(1).build();
        let out = gen.exhaustive(&env, &env.ids(), &requirements).unwrap();
        assert_eq!(out.evaluated, 2791, "F(5) candidates considered");
        assert_eq!(
            out.report.candidates_seen + out.report.candidates_pruned,
            2791
        );
        assert!(
            out.report.candidates_pruned > 500,
            "bounds should prune a solid fraction, pruned only {}",
            out.report.candidates_pruned
        );
    }

    /// Zero-latency leaves void the bound derivation; the engine must
    /// detect that and fall back to an unpruned (still correct) scan.
    #[test]
    fn zero_latency_disables_pruning_but_stays_correct() {
        let env = EnvQos::from_triples(&[(10.0, 0.0, 0.6), (20.0, 30.0, 0.7), (30.0, 40.0, 0.8)])
            .unwrap();
        let requirements = Requirements::new(50.0, 50.0, 0.9).unwrap();
        let truth = Generator::builder()
            .estimator(Arc::new(PlainAlg1))
            .parallelism(1)
            .build()
            .exhaustive(&env, &env.ids(), &requirements)
            .unwrap();
        let out = Generator::builder()
            .pruning(true)
            .parallelism(2)
            .build()
            .exhaustive(&env, &env.ids(), &requirements)
            .unwrap();
        assert_bit_identical(&truth, &out, "zero-latency env");
        assert_eq!(out.report.candidates_pruned, 0, "pruning must disengage");
    }

    /// A non-Algorithm-1 estimator must never enter the pruned fast path:
    /// the folding estimator's winner can differ from Algorithm 1's, and
    /// the scan must faithfully optimize the configured estimator.
    #[test]
    fn folding_estimator_routes_through_generic_scan() {
        let env =
            EnvQos::from_triples(&[(50.0, 50.0, 0.6), (100.0, 100.0, 0.6), (150.0, 150.0, 0.7)])
                .unwrap();
        let requirements = Requirements::new(100.0, 100.0, 0.97).unwrap();
        let gen = Generator::builder()
            .estimator(Arc::new(crate::estimate::Folding::new()))
            .parallelism(1)
            .build();
        let out = gen.exhaustive(&env, &env.ids(), &requirements).unwrap();
        assert_eq!(out.report.candidates_pruned, 0);
        assert_eq!(out.evaluated, 19, "F(3)");
        // The reported QoS is the folding estimate of the winner.
        assert_eq!(
            out.qos,
            crate::estimate::estimate_folding(&out.strategy, &env).unwrap()
        );
    }

    /// Tentpole property test: a *persistent* generator with the plan
    /// cache and warm-start both enabled selects a winner bit-identical to
    /// a fresh, cold, unpruned exhaustive search at every slot of every
    /// seeded slot sequence — in both `F(M)` and `F'(M)` modes. Slot
    /// sequences cycle through a few exact-repeat environments so cache
    /// hits genuinely occur (`quantum = 0` ⇒ exact-match keys).
    #[test]
    fn plan_cache_and_warm_start_match_cold_exhaustive_search() {
        let requirements = Requirements::new(150.0, 150.0, 0.95).unwrap();
        for m in 1..=4usize {
            for seed in 0..4u64 {
                let mut rng = ChaCha8Rng::seed_from_u64(seed * 101 + m as u64);
                let phases: Vec<EnvQos> = (0..3).map(|_| random_env(&mut rng, m)).collect();
                for subsets in [false, true] {
                    let cache = Arc::new(PlanCache::new(PlanCacheConfig::default()));
                    let warm = Generator::builder()
                        .pruning(true)
                        .parallelism(2)
                        .warm_start(true)
                        .plan_cache(Arc::clone(&cache))
                        .build();
                    for slot in 0..9usize {
                        let env = &phases[slot % phases.len()];
                        let ids = env.ids();
                        let run = |g: &Generator| {
                            if subsets {
                                g.exhaustive_subsets(env, &ids, &requirements).unwrap()
                            } else {
                                g.exhaustive(env, &ids, &requirements).unwrap()
                            }
                        };
                        // Fresh cold ground truth every slot: generic
                        // unpruned sequential scan.
                        let truth = run(&Generator::builder()
                            .estimator(Arc::new(PlainAlg1))
                            .parallelism(1)
                            .build());
                        let out = run(&warm);
                        let what =
                            format!("m={m} seed={seed} subsets={subsets} slot={slot} (cache+warm)");
                        assert_bit_identical(&truth, &out, &what);
                        if slot >= phases.len() {
                            // Every environment repeats exactly from the
                            // second cycle on, so the plan must come
                            // straight from the cache.
                            assert_eq!(out.source, PlanSource::Cached, "{what}: source");
                            assert_eq!(out.report.candidates_seen, 0, "{what}: no search work");
                        }
                    }
                    let stats = cache.stats();
                    assert_eq!(stats.hits, 6, "two full repeat cycles hit");
                    assert_eq!(stats.misses, 3, "one miss per distinct env");
                }
            }
        }
    }

    /// Warm-start alone (no cache) must also stay bit-identical to a cold
    /// search, and later slots over the same id list must actually report
    /// `WarmStart` provenance.
    #[test]
    fn warm_start_without_cache_matches_cold_search() {
        let requirements = Requirements::new(150.0, 150.0, 0.95).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let warm = Generator::builder()
            .pruning(true)
            .parallelism(1)
            .warm_start(true)
            .build();
        for slot in 0..6usize {
            let env = random_env(&mut rng, 4);
            let ids = env.ids();
            let truth = Generator::builder()
                .estimator(Arc::new(PlainAlg1))
                .parallelism(1)
                .build()
                .exhaustive(&env, &ids, &requirements)
                .unwrap();
            let out = warm.exhaustive(&env, &ids, &requirements).unwrap();
            assert_bit_identical(&truth, &out, &format!("warm-only slot={slot}"));
            if slot == 0 {
                assert_eq!(out.source, PlanSource::Cold, "no incumbent yet");
            } else {
                assert_eq!(out.source, PlanSource::WarmStart, "slot={slot}");
            }
        }
    }

    /// Satellite: with `quantum = 0` the cache keys on exact bit patterns —
    /// perturbing a single environment attribute by one ULP forces a miss,
    /// and the re-search still matches a cold search of the perturbed env.
    #[test]
    fn quantum_zero_cache_misses_on_one_ulp_perturbation() {
        let requirements = Requirements::new(150.0, 150.0, 0.95).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let env = random_env(&mut rng, 3);
        let ids = env.ids();
        let cache = Arc::new(PlanCache::new(PlanCacheConfig::default()));
        let gen = Generator::builder()
            .pruning(true)
            .parallelism(1)
            .plan_cache(Arc::clone(&cache))
            .build();
        let first = gen.exhaustive(&env, &ids, &requirements).unwrap();
        assert_eq!(first.source, PlanSource::Cold);
        let repeat = gen.exhaustive(&env, &ids, &requirements).unwrap();
        assert_eq!(repeat.source, PlanSource::Cached, "exact repeat must hit");
        assert_bit_identical(&first, &repeat, "cached repeat");

        let mut perturbed = env.clone();
        let old = perturbed.get(ids[0]).unwrap();
        let nudged = Qos::new(
            f64::from_bits(old.cost.to_bits() + 1),
            old.latency,
            old.reliability.value(),
        )
        .unwrap();
        perturbed.set(ids[0], nudged);
        let out = gen.exhaustive(&perturbed, &ids, &requirements).unwrap();
        assert_ne!(out.source, PlanSource::Cached, "one ULP apart must miss");
        let truth = Generator::builder()
            .estimator(Arc::new(PlainAlg1))
            .parallelism(1)
            .build()
            .exhaustive(&perturbed, &ids, &requirements)
            .unwrap();
        assert_bit_identical(&truth, &out, "post-perturbation re-search");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 2);
    }

    /// Satellite: a zero (or otherwise degenerate) requirement used to
    /// reach the utility index and divide by zero, poisoning the ranking
    /// with NaN. It must now surface as a typed error from every entry
    /// point that ranks by utility.
    #[test]
    fn degenerate_requirements_are_a_typed_error_not_nan_poison() {
        let env =
            EnvQos::from_triples(&[(50.0, 50.0, 0.6), (100.0, 100.0, 0.6), (150.0, 150.0, 0.7)])
                .unwrap();
        let ids = env.ids();
        let gen = Generator::builder().parallelism(1).build();
        // `Requirements`' fields are public, so a zero cost requirement can
        // bypass the validating constructor (e.g. via deserialization).
        let zero_cost = Requirements {
            cost: 0.0,
            latency: 150.0,
            reliability: crate::qos::Reliability::new(0.95).unwrap(),
        };
        let inf_latency = Requirements {
            cost: 150.0,
            latency: f64::INFINITY,
            reliability: crate::qos::Reliability::new(0.95).unwrap(),
        };
        for req in [&zero_cost, &inf_latency] {
            assert!(matches!(
                gen.exhaustive(&env, &ids, req),
                Err(GenerateError::InvalidRequirements(_))
            ));
            assert!(matches!(
                gen.generate(&env, &ids, req),
                Err(GenerateError::InvalidRequirements(_))
            ));
            assert!(matches!(
                gen.sort_by_utility(&env, &ids, req),
                Err(GenerateError::InvalidRequirements(_))
            ));
            assert!(matches!(
                gen.failover_in_order(&env, &ids, req),
                Err(GenerateError::InvalidRequirements(_))
            ));
            assert!(matches!(
                gen.speculative_parallel(&env, &ids, req),
                Err(GenerateError::InvalidRequirements(_))
            ));
        }
        // And the validating constructor refuses them outright.
        assert!(Requirements::new(0.0, 150.0, 0.95).is_err());
        assert!(Requirements::new(150.0, f64::INFINITY, 0.95).is_err());
        assert!(Requirements::new(150.0, 150.0, 0.0).is_err());
    }

    /// Satellite: when *nothing* in the environment can meet the
    /// requirements every utility is negative, but the ranking stays a
    /// total order and the winner still matches the cold ground truth.
    #[test]
    fn all_infeasible_environment_still_ranks_totally() {
        let env = EnvQos::from_triples(&[
            (900.0, 900.0, 0.10),
            (800.0, 950.0, 0.15),
            (700.0, 990.0, 0.05),
        ])
        .unwrap();
        let requirements = Requirements::new(10.0, 10.0, 0.999).unwrap();
        let ids = env.ids();
        let truth = Generator::builder()
            .estimator(Arc::new(PlainAlg1))
            .parallelism(1)
            .build()
            .exhaustive(&env, &ids, &requirements)
            .unwrap();
        let out = Generator::builder()
            .pruning(true)
            .parallelism(2)
            .build()
            .exhaustive(&env, &ids, &requirements)
            .unwrap();
        assert_bit_identical(&truth, &out, "all-infeasible env");
        assert!(out.utility.is_finite());
        assert!(out.utility < 0.0, "everything violates the requirements");
        let ranked = Generator::default()
            .sort_by_utility(&env, &ids, &requirements)
            .unwrap();
        assert_eq!(ranked.len(), ids.len());
    }

    /// The builder's knobs round-trip and `Generator::new` still works.
    #[test]
    fn builder_configures_and_legacy_constructor_still_works() {
        let gen = Generator::builder()
            .utility(UtilityIndex::default())
            .threshold(4)
            .parallelism(8)
            .pruning(false)
            .build();
        assert_eq!(gen.threshold(), 4);
        assert_eq!(gen.parallelism(), 8);
        assert!(!gen.pruning());
        assert_eq!(gen.estimator().name(), "algorithm1");
        let legacy = Generator::new(UtilityIndex::default(), 4);
        assert_eq!(legacy.threshold(), 4);
        assert_eq!(legacy.parallelism(), 0, "legacy constructor: auto");
        assert!(legacy.pruning(), "legacy constructor: pruning on");
    }
}

//! Pluggable search backends and the adaptive backend selector.
//!
//! Strategy synthesis historically offered one hard-coded policy: the
//! paper's threshold rule (exhaustive search while `|M| ≤ θ`, greedy
//! approximation beyond). This module re-expresses every search path as a
//! [`SearchBackend`] behind a common trait so the runtime can pick a
//! backend per re-plan:
//!
//! * [`ExhaustiveBackend`] — the branch-and-bound engine over `F(M)`
//!   ([`Generator::exhaustive`]), exact but exponential in `M`;
//! * [`GreedyBackend`] — Algorithm 2's approximation
//!   ([`Generator::approximation`]), `O(M)` estimates, shape-committed;
//! * [`BeamBackend`] — the width-`W` beam search ([`Generator::beam`])
//!   that interpolates between the two: width 1 *is* the greedy
//!   trajectory, width ∞ is bit-identical to the exhaustive winner.
//!
//! [`BackendChoice`] is the operator-facing selection (`--planner`), with
//! [`BackendChoice::Threshold`] preserving the historical behaviour and
//! [`BackendChoice::Auto`] delegating to a deterministic UCB1 bandit
//! ([`BackendSelector`]) that learns, per service, which backend yields
//! the best realized utility per unit of search effort.
//!
//! [`BackendId`] is the compact identity that keys the plan cache: two
//! backends may disagree on the winner for identical inputs, so cached
//! plans must never cross backend boundaries.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::GenerateError;
use crate::generate::{Generated, Generator, SynthesisReport};
use crate::qos::{EnvQos, MsId, Requirements};

/// Default beam width for `--planner beam` without an explicit `:W`.
pub const DEFAULT_BEAM_WIDTH: usize = 4;

/// The compact identity of a search backend, used to key the plan cache.
///
/// Different backends can return different winners for identical inputs
/// (greedy is an approximation; beam quality depends on the width), so the
/// cache key must carry which backend — and for beam, which width —
/// produced an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BackendId {
    /// Stable backend name (`"exhaustive"`, `"greedy"`, `"beam"`, …).
    pub name: &'static str,
    /// Beam width for the beam backend; `0` for widthless backends.
    pub width: u64,
}

impl BackendId {
    /// The exhaustive branch-and-bound engine (both `F(M)` and `F'(M)`
    /// modes — the cache key carries the subsets flag separately).
    pub const EXHAUSTIVE: BackendId = BackendId {
        name: "exhaustive",
        width: 0,
    };

    /// The greedy approximation (Algorithm 2).
    pub const GREEDY: BackendId = BackendId {
        name: "greedy",
        width: 0,
    };

    /// The beam-search backend at the given width.
    #[must_use]
    pub fn beam(width: usize) -> BackendId {
        BackendId {
            name: "beam",
            width: width as u64,
        }
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width > 0 {
            write!(f, "{}:{}", self.name, self.width)
        } else {
            f.write_str(self.name)
        }
    }
}

/// Which planning backend a generator (or the runtime's planner) should
/// run. Parsed from `--planner` on the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BackendChoice {
    /// The paper's Algorithm 2 rule: exhaustive while `|M| ≤ θ`, greedy
    /// beyond. The default — preserves historical behaviour.
    #[default]
    Threshold,
    /// Always the exhaustive branch-and-bound search.
    Exhaustive,
    /// Always the greedy approximation.
    Greedy,
    /// Beam search at the given width (≥ 1).
    Beam(usize),
    /// Let the runtime's UCB1 bandit ([`BackendSelector`]) pick per
    /// re-plan. A bare [`Generator`] resolves this like `Threshold`; the
    /// runtime resolves it to a concrete arm before searching.
    Auto,
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendChoice::Threshold => f.write_str("threshold"),
            BackendChoice::Exhaustive => f.write_str("exhaustive"),
            BackendChoice::Greedy => f.write_str("greedy"),
            BackendChoice::Beam(w) => write!(f, "beam:{w}"),
            BackendChoice::Auto => f.write_str("auto"),
        }
    }
}

/// Error from parsing a [`BackendChoice`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError {
    input: String,
}

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown planner '{}' (expected threshold|exhaustive|greedy|beam[:W]|auto, W >= 1)",
            self.input
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for BackendChoice {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseBackendError {
            input: s.to_string(),
        };
        match s {
            "threshold" => Ok(BackendChoice::Threshold),
            "exhaustive" => Ok(BackendChoice::Exhaustive),
            "greedy" => Ok(BackendChoice::Greedy),
            "auto" => Ok(BackendChoice::Auto),
            "beam" => Ok(BackendChoice::Beam(DEFAULT_BEAM_WIDTH)),
            _ => {
                let width = s.strip_prefix("beam:").ok_or_else(err)?;
                let width: usize = width.parse().map_err(|_| err())?;
                if width == 0 {
                    return Err(err());
                }
                Ok(BackendChoice::Beam(width))
            }
        }
    }
}

/// A pluggable strategy-search backend: a stable name/identity plus a
/// search entry point. Every backend returns a [`Generated`] whose
/// [`SynthesisReport`] follows the unified effort accounting
/// (`candidates_seen + candidates_pruned == evaluated`, auxiliary
/// estimates excluded — see [`SynthesisReport`]).
pub trait SearchBackend: fmt::Debug + Send + Sync {
    /// Stable backend name (matches [`BackendId::name`]).
    fn name(&self) -> &'static str;

    /// The cache-keying identity of this backend.
    fn id(&self) -> BackendId;

    /// Runs the search over `ids` under `env`/`req` using `generator`'s
    /// configuration (utility index, estimator, parallelism, caches).
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::NoMicroservices`] for an empty id list, or
    /// an estimation error if `env` lacks an entry for some id.
    fn search(
        &self,
        generator: &Generator,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError>;

    /// The effort report of a result this backend produced.
    fn report(&self, generated: &Generated) -> SynthesisReport {
        generated.report
    }
}

/// The exhaustive branch-and-bound backend ([`Generator::exhaustive`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveBackend;

impl SearchBackend for ExhaustiveBackend {
    fn name(&self) -> &'static str {
        BackendId::EXHAUSTIVE.name
    }

    fn id(&self) -> BackendId {
        BackendId::EXHAUSTIVE
    }

    fn search(
        &self,
        generator: &Generator,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        generator.exhaustive(env, ids, req)
    }
}

/// The greedy-approximation backend ([`Generator::approximation`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyBackend;

impl SearchBackend for GreedyBackend {
    fn name(&self) -> &'static str {
        BackendId::GREEDY.name
    }

    fn id(&self) -> BackendId {
        BackendId::GREEDY
    }

    fn search(
        &self,
        generator: &Generator,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        generator.approximation(env, ids, req)
    }
}

/// The beam-search backend ([`Generator::beam`]) at a fixed width.
#[derive(Debug, Clone, Copy)]
pub struct BeamBackend {
    /// Beam width `W ≥ 1`.
    pub width: usize,
}

impl SearchBackend for BeamBackend {
    fn name(&self) -> &'static str {
        "beam"
    }

    fn id(&self) -> BackendId {
        BackendId::beam(self.width)
    }

    fn search(
        &self,
        generator: &Generator,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
    ) -> Result<Generated, GenerateError> {
        generator.beam(env, ids, req, self.width)
    }
}

/// Resolves a [`BackendChoice`] to a concrete backend for a search over
/// `m` microservices under threshold `θ`. `Threshold` and `Auto` both
/// resolve via the paper rule here — the runtime's bandit replaces `Auto`
/// with a concrete arm *before* reaching the generator.
#[must_use]
pub fn resolve(choice: BackendChoice, m: usize, threshold: usize) -> Box<dyn SearchBackend> {
    match choice {
        BackendChoice::Threshold | BackendChoice::Auto => {
            if m <= threshold {
                Box::new(ExhaustiveBackend)
            } else {
                Box::new(GreedyBackend)
            }
        }
        BackendChoice::Exhaustive => Box::new(ExhaustiveBackend),
        BackendChoice::Greedy => Box::new(GreedyBackend),
        BackendChoice::Beam(width) => Box::new(BeamBackend { width }),
    }
}

/// A deterministic UCB1 bandit over search backends.
///
/// One selector per service; each re-plan under `--planner auto` pulls an
/// arm, runs that backend, and feeds back the realized utility and search
/// effort. The reward of a pull is the utility squashed into `(0, 1)` and
/// damped by the logarithm of the search effort:
///
/// ```text
/// reward = (0.5 + 0.5·U/(1+|U|)) / (1 + ln(1 + evaluated))
/// ```
///
/// so an arm only justifies a large search space by a materially better
/// utility. The effort term uses [`Generated::evaluated`] — the
/// *considered* candidate count, which is deterministic across pruning and
/// parallelism settings — never wall-clock time, keeping two identical
/// runs byte-identical.
///
/// Arm selection is fully deterministic: untried eligible arms are pulled
/// first in arm order, then the arm maximizing `mean + sqrt(2·ln(total) /
/// pulls)` with ties broken toward the lowest arm index. There is no
/// random exploration, so replaying a run reproduces every choice.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendSelector {
    arms: Vec<BackendChoice>,
    pulls: Vec<u64>,
    means: Vec<f64>,
}

impl Default for BackendSelector {
    fn default() -> Self {
        BackendSelector::new(vec![
            BackendChoice::Exhaustive,
            BackendChoice::Greedy,
            BackendChoice::Beam(DEFAULT_BEAM_WIDTH),
        ])
    }
}

impl BackendSelector {
    /// Creates a selector over the given concrete arms (callers should
    /// not include `Threshold` or `Auto` — arms are what `Auto` resolves
    /// *to*).
    #[must_use]
    pub fn new(arms: Vec<BackendChoice>) -> Self {
        let n = arms.len();
        BackendSelector {
            arms,
            pulls: vec![0; n],
            means: vec![0.0; n],
        }
    }

    /// The configured arms.
    #[must_use]
    pub fn arms(&self) -> &[BackendChoice] {
        &self.arms
    }

    /// How often `arm` has been pulled.
    #[must_use]
    pub fn pulls(&self, arm: usize) -> u64 {
        self.pulls.get(arm).copied().unwrap_or(0)
    }

    /// The running mean reward of `arm`.
    #[must_use]
    pub fn mean(&self, arm: usize) -> f64 {
        self.means.get(arm).copied().unwrap_or(0.0)
    }

    /// Which arms are eligible for a search over `m` microservices under
    /// threshold `θ`: the exhaustive arm only below the threshold (its
    /// cost is exponential in `m`), every other arm always.
    #[must_use]
    pub fn eligibility(&self, m: usize, threshold: usize) -> Vec<bool> {
        self.arms
            .iter()
            .map(|arm| !matches!(arm, BackendChoice::Exhaustive) || m <= threshold)
            .collect()
    }

    /// Picks the next arm among the `eligible` ones (parallel to
    /// [`BackendSelector::arms`]); `None` if nothing is eligible.
    #[must_use]
    pub fn choose(&self, eligible: &[bool]) -> Option<usize> {
        let live = |i: usize| eligible.get(i).copied().unwrap_or(false);
        // Untried arms first, in fixed arm order — deterministic
        // round-robin exploration.
        if let Some(i) = (0..self.arms.len()).find(|&i| live(i) && self.pulls[i] == 0) {
            return Some(i);
        }
        let total: u64 = (0..self.arms.len())
            .filter(|&i| live(i))
            .map(|i| self.pulls[i])
            .sum();
        let total = total.max(1) as f64;
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.arms.len() {
            if !live(i) {
                continue;
            }
            let bonus = (2.0 * total.ln() / self.pulls[i] as f64).sqrt();
            let score = self.means[i] + bonus;
            // Strict '>' keeps ties on the lowest arm index.
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((i, score));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Feeds back one pull's outcome: the realized utility of the chosen
    /// plan and the search effort ([`Generated::evaluated`]) it took.
    pub fn record(&mut self, arm: usize, utility: f64, evaluated: u64) {
        if arm >= self.arms.len() {
            return;
        }
        let reward = Self::reward(utility, evaluated);
        self.pulls[arm] += 1;
        let n = self.pulls[arm] as f64;
        self.means[arm] += (reward - self.means[arm]) / n;
    }

    /// The reward function (see the type docs): utility squashed into
    /// `(0, 1)`, log-damped by search effort.
    #[must_use]
    pub fn reward(utility: f64, evaluated: u64) -> f64 {
        let squashed = 0.5 + 0.5 * utility / (1.0 + utility.abs());
        squashed / (1.0 + (1.0 + evaluated as f64).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_choice_parse_and_display_round_trip() {
        for (text, choice) in [
            ("threshold", BackendChoice::Threshold),
            ("exhaustive", BackendChoice::Exhaustive),
            ("greedy", BackendChoice::Greedy),
            ("beam:7", BackendChoice::Beam(7)),
            ("auto", BackendChoice::Auto),
        ] {
            assert_eq!(text.parse::<BackendChoice>().unwrap(), choice);
            assert_eq!(choice.to_string(), text);
        }
        assert_eq!(
            "beam".parse::<BackendChoice>().unwrap(),
            BackendChoice::Beam(DEFAULT_BEAM_WIDTH)
        );
        for bad in ["beam:0", "beam:", "beam:x", "dfs", ""] {
            assert!(bad.parse::<BackendChoice>().is_err(), "{bad}");
        }
        assert_eq!(BackendChoice::default(), BackendChoice::Threshold);
    }

    #[test]
    fn backend_id_display_and_cache_identity() {
        assert_eq!(BackendId::EXHAUSTIVE.to_string(), "exhaustive");
        assert_eq!(BackendId::beam(3).to_string(), "beam:3");
        assert_ne!(BackendId::beam(3), BackendId::beam(4));
        assert_ne!(BackendId::GREEDY, BackendId::EXHAUSTIVE);
    }

    #[test]
    fn resolve_follows_the_threshold_rule() {
        for choice in [BackendChoice::Threshold, BackendChoice::Auto] {
            assert_eq!(resolve(choice, 4, 6).id(), BackendId::EXHAUSTIVE);
            assert_eq!(resolve(choice, 8, 6).id(), BackendId::GREEDY);
        }
        assert_eq!(
            resolve(BackendChoice::Beam(2), 8, 6).id(),
            BackendId::beam(2)
        );
        assert_eq!(
            resolve(BackendChoice::Exhaustive, 99, 6).id(),
            BackendId::EXHAUSTIVE
        );
    }

    #[test]
    fn selector_pulls_untried_arms_first_in_order() {
        let mut sel = BackendSelector::default();
        let all = vec![true; sel.arms().len()];
        assert_eq!(sel.choose(&all), Some(0));
        sel.record(0, 1.0, 64_743);
        assert_eq!(sel.choose(&all), Some(1));
        sel.record(1, 0.9, 10);
        assert_eq!(sel.choose(&all), Some(2));
        sel.record(2, 0.95, 40);
        // All arms tried: UCB1 takes over; the greedy arm's cheap effort
        // gives it the best damped reward here.
        assert_eq!(sel.choose(&all), Some(1));
    }

    #[test]
    fn selector_respects_eligibility_mask() {
        let mut sel = BackendSelector::default();
        let masked = sel.eligibility(10, 6);
        assert_eq!(masked, vec![false, true, true]);
        assert_eq!(sel.choose(&masked), Some(1), "exhaustive masked out");
        sel.record(1, 0.5, 18);
        assert_eq!(sel.choose(&masked), Some(2));
        sel.record(2, 0.5, 60);
        assert_ne!(sel.choose(&masked), Some(0));
        assert_eq!(sel.choose(&[false, false, false]), None);
    }

    #[test]
    fn reward_prefers_cheap_searches_at_equal_utility() {
        let cheap = BackendSelector::reward(0.8, 10);
        let dear = BackendSelector::reward(0.8, 64_743);
        assert!(cheap > dear);
        // …but a large utility edge still wins against log-damped cost.
        assert!(BackendSelector::reward(5.0, 64_743) > BackendSelector::reward(-5.0, 10));
        // Squashing keeps every reward positive and bounded.
        for u in [-1e9, -1.0, 0.0, 1.0, 1e9] {
            let r = BackendSelector::reward(u, 1);
            assert!(r > 0.0 && r < 1.0, "u={u} r={r}");
        }
    }

    #[test]
    fn selector_is_deterministic_under_replay() {
        let run = || {
            let mut sel = BackendSelector::default();
            let mut picks = Vec::new();
            for step in 0..20u64 {
                let eligible = sel.eligibility(if step % 3 == 0 { 8 } else { 5 }, 6);
                let arm = sel.choose(&eligible).unwrap();
                picks.push(arm);
                let utility = 0.5 + (step as f64) * 0.01 - (arm as f64) * 0.05;
                sel.record(arm, utility, 10 + 100 * arm as u64);
            }
            (picks, sel)
        };
        let (picks_a, sel_a) = run();
        let (picks_b, sel_b) = run();
        assert_eq!(picks_a, picks_b);
        assert_eq!(sel_a, sel_b);
    }
}

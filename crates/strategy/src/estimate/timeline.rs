//! Timeline construction — the `GetTimelines` function of the paper's
//! Algorithm 1 (lines 15–33).
//!
//! A *timeline* `τ = (m, s, e)` assigns each microservice of a strategy its
//! scheduled start time `s` and end time `e`, assuming average latencies and
//! assuming execution proceeds until everything fails:
//!
//! * a **leaf** runs `[0, l_m)`;
//! * a **sequential** node delays its right part by the *makespan* (largest
//!   end time) of its left part — the right part only ever runs after every
//!   microservice on the left has had the chance to fail;
//! * a **parallel** node overlays its children.

use crate::error::EstimateError;
use crate::expr::{Node, Strategy};
use crate::{EnvQos, MsId};

/// Scheduled execution window of one microservice within a strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timeline {
    /// The microservice.
    pub ms: MsId,
    /// Scheduled start time (0 = strategy invocation).
    pub start: f64,
    /// Scheduled end time (`start` + average latency).
    pub end: f64,
}

/// Computes the timeline of every microservice in `strategy`, using the
/// average latencies from `env`.
///
/// Timelines are returned in left-to-right leaf order.
///
/// # Errors
///
/// Returns [`EstimateError::MissingMicroservice`] if `env` lacks an entry
/// for any microservice in the strategy.
///
/// # Examples
///
/// ```
/// use qce_strategy::estimate::timelines;
/// use qce_strategy::{EnvQos, Strategy};
///
/// let env = EnvQos::from_triples(&[
///     (50.0, 50.0, 0.6),
///     (100.0, 100.0, 0.6),
///     (150.0, 150.0, 0.7),
/// ])?;
/// let s = Strategy::parse("a-b*c")?;
/// let tl = timelines(&s, &env)?;
/// // a: [0, 50); b and c start when a's window ends.
/// assert_eq!(tl[0].start, 0.0);
/// assert_eq!(tl[0].end, 50.0);
/// assert!(tl.iter().all(|t| t.ms.index() == 0 || t.start == 50.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn timelines(strategy: &Strategy, env: &EnvQos) -> Result<Vec<Timeline>, EstimateError> {
    let mut out = Vec::with_capacity(strategy.len());
    walk(strategy.node(), 0.0, env, &mut out)?;
    Ok(out)
}

/// Recursively schedules `node` starting at `offset`, appending timelines to
/// `out` and returning the subtree's makespan (largest end time).
///
/// `pub(crate)` so the branch-and-bound engine in [`crate::synth`] can
/// schedule a candidate's final block onto an already-walked chain prefix
/// with bit-identical arithmetic.
pub(crate) fn walk(
    node: &Node,
    offset: f64,
    env: &EnvQos,
    out: &mut Vec<Timeline>,
) -> Result<f64, EstimateError> {
    match node {
        Node::Leaf(id) => {
            let qos = env
                .get(*id)
                .ok_or(EstimateError::MissingMicroservice(*id))?;
            let end = offset + qos.latency;
            out.push(Timeline {
                ms: *id,
                start: offset,
                end,
            });
            Ok(end)
        }
        Node::Seq(children) => {
            let mut cursor = offset;
            for child in children {
                cursor = walk(child, cursor, env, out)?;
            }
            Ok(cursor)
        }
        Node::Par(children) => {
            let mut makespan = offset;
            for child in children {
                let end = walk(child, offset, env, out)?;
                makespan = makespan.max(end);
            }
            Ok(makespan)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Qos;

    fn env5() -> EnvQos {
        // The Section III.D fire-detection microservices a–e.
        EnvQos::from_triples(&[
            (50.0, 50.0, 0.6),
            (100.0, 100.0, 0.6),
            (150.0, 150.0, 0.7),
            (200.0, 200.0, 0.7),
            (250.0, 250.0, 0.8),
        ])
        .unwrap()
    }

    fn windows(text: &str) -> Vec<(usize, f64, f64)> {
        let s = Strategy::parse(text).unwrap();
        timelines(&s, &env5())
            .unwrap()
            .into_iter()
            .map(|t| (t.ms.index(), t.start, t.end))
            .collect()
    }

    #[test]
    fn leaf_timeline() {
        assert_eq!(windows("a"), vec![(0, 0.0, 50.0)]);
    }

    #[test]
    fn failover_chains_sequentially() {
        assert_eq!(
            windows("a-b-c-d-e"),
            vec![
                (0, 0.0, 50.0),
                (1, 50.0, 150.0),
                (2, 150.0, 300.0),
                (3, 300.0, 500.0),
                (4, 500.0, 750.0),
            ]
        );
    }

    #[test]
    fn parallel_overlays_children() {
        assert_eq!(
            windows("a*b*c"),
            vec![(0, 0.0, 50.0), (1, 0.0, 100.0), (2, 0.0, 150.0)]
        );
    }

    #[test]
    fn sequential_waits_for_parallel_makespan() {
        // a - b*c - d: d starts at max(end(b), end(c)) = 50 + 150 = 200.
        assert_eq!(
            windows("a-b*c-d"),
            vec![
                (0, 0.0, 50.0),
                (1, 50.0, 150.0),
                (2, 50.0, 200.0),
                (3, 200.0, 400.0),
            ]
        );
    }

    #[test]
    fn table2_strategy4_timelines() {
        // c*(a*b-d*e): c runs [0,150); a [0,50); b [0,100);
        // d and e start at max(50,100) = 100.
        let mut got = windows("c*(a*b-d*e)");
        got.sort_by_key(|&(id, _, _)| id);
        assert_eq!(
            got,
            vec![
                (0, 0.0, 50.0),
                (1, 0.0, 100.0),
                (2, 0.0, 150.0),
                (3, 100.0, 300.0),
                (4, 100.0, 350.0),
            ]
        );
    }

    #[test]
    fn grouped_sequential_in_parallel() {
        // (a-b)*c: a [0,50), b [50,150), c [0,150).
        let mut got = windows("(a-b)*c");
        got.sort_by_key(|&(id, _, _)| id);
        assert_eq!(got, vec![(0, 0.0, 50.0), (1, 50.0, 150.0), (2, 0.0, 150.0)]);
    }

    #[test]
    fn missing_microservice_is_reported() {
        let env = EnvQos::from_qos(vec![Qos::new(1.0, 1.0, 0.5).unwrap()]);
        let s = Strategy::parse("a-b").unwrap();
        assert_eq!(
            timelines(&s, &env).unwrap_err(),
            EstimateError::MissingMicroservice(MsId(1))
        );
    }

    #[test]
    fn zero_latency_microservice() {
        let env = EnvQos::from_triples(&[(1.0, 0.0, 0.5), (1.0, 10.0, 0.5)]).unwrap();
        let s = Strategy::parse("a-b").unwrap();
        let tl = timelines(&s, &env).unwrap();
        assert_eq!(tl[0].end, 0.0);
        assert_eq!(tl[1].start, 0.0);
    }
}

//! QoS estimation for execution strategies (paper Section III.C).
//!
//! * [`timelines`] — the `GetTimelines` scheduling pass (Algorithm 1,
//!   lines 15–33);
//! * [`estimate`] — the paper's Algorithm 1 (average cost / latency /
//!   reliability over repeated executions);
//! * [`estimate_folding`] — the pairwise folding baseline from prior work
//!   \[15\], kept for comparison benchmarks;
//! * [`latency_mixture`] — the exact completion-time *distribution*
//!   (Algorithm 1's mean is its first moment), enabling percentile SLAs.

mod algorithm1;
mod folding;
mod mixture;
mod timeline;

pub use algorithm1::{estimate, estimate_from_timelines};
pub use folding::estimate_folding;
pub use mixture::{latency_mixture, LatencyMixture};
pub use timeline::{timelines, Timeline};

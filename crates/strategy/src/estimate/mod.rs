//! QoS estimation for execution strategies (paper Section III.C).
//!
//! * [`timelines`] — the `GetTimelines` scheduling pass (Algorithm 1,
//!   lines 15–33);
//! * [`Estimator`] — the estimation trait; [`Algorithm1`] (memoizing) and
//!   [`Folding`] are the built-in implementations;
//! * [`estimate`] — the paper's Algorithm 1 (average cost / latency /
//!   reliability over repeated executions);
//! * [`estimate_folding`] — the pairwise folding baseline from prior work
//!   \[15\], kept for comparison benchmarks;
//! * [`latency_mixture`] — the exact completion-time *distribution*
//!   (Algorithm 1's mean is its first moment), enabling percentile SLAs.
//!
//! New code should prefer the [`Estimator`] trait over the free functions:
//! the free [`estimate`]/[`estimate_folding`] wrappers are kept for
//! backwards compatibility and doc-deprecated in place.

mod algorithm1;
mod estimator;
mod folding;
mod mixture;
mod timeline;

pub use algorithm1::{estimate, estimate_from_timelines};
pub use estimator::{Algorithm1, Estimator, Folding};
pub use folding::estimate_folding;
pub use mixture::{latency_mixture, LatencyMixture};
pub(crate) use timeline::walk;
pub use timeline::{timelines, Timeline};

//! The paper's Algorithm 1: average cost, latency, and reliability of an
//! execution strategy.
//!
//! Given the timelines of all microservices (see
//! [`timeline`](crate::estimate::timelines)):
//!
//! * **latency** — sort timelines by end time into `φ`; the strategy
//!   finishes at `φ(i).end` with probability *all earlier-finishing
//!   microservices fail and `φ(i)` succeeds*; if everything fails, it
//!   finishes at the last end time;
//! * **cost** — per Assumption 2, a microservice is charged in full as soon
//!   as it starts; `m` starts iff every microservice finishing *at or
//!   before* `m`'s start has failed;
//! * **reliability** — the strategy fails only if every microservice fails:
//!   `r = 1 − Π (1 − r_m)`.
//!
//! ### Erratum handled here
//!
//! Algorithm 1 line 10 filters the gating set with `e < s` (strictly
//! before). The paper's own Table II values (cost 162 for `a-b*c-d-e`, 372
//! for `c*(a*b-d*e)`) require `e ≤ s`: in a sequential chain the fall-back
//! microservice starts exactly when its predecessor's window ends, and it
//! must only be charged when that predecessor failed. We therefore use
//! `e ≤ s` (excluding the microservice itself); `tests` pin every Table II
//! row.

use crate::error::EstimateError;
use crate::estimate::timeline::{timelines, Timeline};
use crate::expr::Strategy;
use crate::qos::{EnvQos, Qos, Reliability};

/// Estimates the average QoS of executing `strategy` repeatedly in an
/// environment whose per-microservice QoS is `env` (the paper's
/// Algorithm 1).
///
/// **Deprecated** in favour of the [`Estimator`](crate::estimate::Estimator)
/// trait: construct an [`Algorithm1`](crate::estimate::Algorithm1) (which
/// additionally memoizes per environment) and call
/// [`estimate`](crate::estimate::Estimator::estimate) on it. This free
/// function is kept as a thin, stable wrapper; no `#[deprecated]` attribute
/// is attached so existing builds stay warning-free.
///
/// # Errors
///
/// Returns [`EstimateError::MissingMicroservice`] if `env` lacks an entry
/// for any microservice of the strategy.
///
/// # Examples
///
/// The worked example from Section III.C.3 — `a*b*c` with
/// `l = (10, 90, 70)` and `r = (10%, 90%, 70%)` has an average latency of
/// 69.4 (the folding method of prior work over-estimates it at 73.6):
///
/// ```
/// use qce_strategy::estimate::estimate;
/// use qce_strategy::{EnvQos, Strategy};
///
/// let env = EnvQos::from_triples(&[
///     (1.0, 10.0, 0.1),
///     (1.0, 90.0, 0.9),
///     (1.0, 70.0, 0.7),
/// ])?;
/// let qos = estimate(&Strategy::parse("a*b*c")?, &env)?;
/// assert!((qos.latency - 69.4).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn estimate(strategy: &Strategy, env: &EnvQos) -> Result<Qos, EstimateError> {
    let tl = timelines(strategy, env)?;
    Ok(estimate_from_timelines(&tl, env))
}

/// Estimates QoS from precomputed timelines (all referenced microservices
/// must be present in `env`).
///
/// Exposed separately so callers that need the timelines anyway (e.g. the
/// virtual-time executor's sanity checks) avoid recomputing them.
///
/// # Panics
///
/// Panics if a timeline references a microservice missing from `env`.
#[must_use]
pub fn estimate_from_timelines(tl: &[Timeline], env: &EnvQos) -> Qos {
    let reliability_of = |t: &Timeline| -> Reliability {
        env.get(t.ms)
            .unwrap_or_else(|| panic!("environment lacks QoS for {}", t.ms))
            .reliability
    };

    // Reliability: fails only when every microservice fails.
    let all_fail: f64 = tl
        .iter()
        .map(|t| reliability_of(t).failure_probability())
        .product();
    let reliability = Reliability::clamped(1.0 - all_fail);

    // Latency: lines 3–7 of Algorithm 1.
    let mut by_end: Vec<&Timeline> = tl.iter().collect();
    by_end.sort_by(|x, y| x.end.partial_cmp(&y.end).expect("latency must not be NaN"));
    let mut latency = 0.0;
    let mut prefix_fail = 1.0; // probability that φ(0..i) all failed
    for (i, t) in by_end.iter().enumerate() {
        let r = reliability_of(t).value();
        if i + 1 == by_end.len() {
            // Last to finish: the execution ends here whether it succeeds
            // or not (everything earlier already failed).
            latency += prefix_fail * t.end;
        } else {
            latency += prefix_fail * r * t.end;
            prefix_fail *= 1.0 - r;
        }
    }

    // Cost: lines 9–12. A microservice is charged iff every microservice
    // finishing at or before its start failed (erratum: `e ≤ s`).
    let mut cost = 0.0;
    for t in tl {
        let p_started: f64 = tl
            .iter()
            .filter(|other| !std::ptr::eq(*other, t) && other.end <= t.start)
            .map(|other| reliability_of(other).failure_probability())
            .product();
        let c = env
            .get(t.ms)
            .unwrap_or_else(|| panic!("environment lacks QoS for {}", t.ms))
            .cost;
        cost += p_started * c;
    }

    Qos {
        cost,
        latency,
        reliability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MsId;

    /// Section III.D / Table II microservices a–e:
    /// QoS [cost, latency, reliability] = [50,50,60%] … [250,250,80%].
    fn env5() -> EnvQos {
        EnvQos::from_triples(&[
            (50.0, 50.0, 0.6),
            (100.0, 100.0, 0.6),
            (150.0, 150.0, 0.7),
            (200.0, 200.0, 0.7),
            (250.0, 250.0, 0.8),
        ])
        .unwrap()
    }

    fn est(text: &str) -> Qos {
        estimate(&Strategy::parse(text).unwrap(), &env5()).unwrap()
    }

    const EPS: f64 = 1e-9;

    #[test]
    fn single_leaf_is_its_own_qos() {
        let q = est("c");
        assert!((q.cost - 150.0).abs() < EPS);
        assert!((q.latency - 150.0).abs() < EPS);
        assert!((q.reliability.value() - 0.7).abs() < EPS);
    }

    #[test]
    fn section3c3_worked_example() {
        // a*b*c with l=(10,90,70), r=(10%,90%,70%): latency 69.4.
        let env =
            EnvQos::from_triples(&[(1.0, 10.0, 0.1), (1.0, 90.0, 0.9), (1.0, 70.0, 0.7)]).unwrap();
        let q = estimate(&Strategy::parse("a*b*c").unwrap(), &env).unwrap();
        assert!((q.latency - 69.4).abs() < 1e-9, "got {}", q.latency);
        // All three start immediately, so all are charged.
        assert!((q.cost - 3.0).abs() < EPS);
        // r = 1 - 0.9*0.1*0.3 = 0.973
        assert!((q.reliability.value() - 0.973).abs() < EPS);
    }

    #[test]
    fn table2_strategy1_failover() {
        // Exact arithmetic gives 127.2 for both cost and latency (the paper
        // rounds to 126); reliability 99.7%.
        let q = est("a-b-c-d-e");
        assert!((q.cost - 127.2).abs() < 1e-6, "cost {}", q.cost);
        assert!((q.latency - 127.2).abs() < 1e-6, "latency {}", q.latency);
        assert!((q.reliability.value() - 0.99712).abs() < 1e-9);
    }

    #[test]
    fn table2_strategy2_parallel() {
        // Paper: cost 750, latency 81, reliability 99.7%.
        let q = est("a*b*c*d*e");
        assert!((q.cost - 750.0).abs() < EPS, "cost {}", q.cost);
        // 0.6*50 + 0.4*0.6*100 + 0.16*0.7*150 + 0.048*0.7*200 + 0.0144*250
        let expected = 0.6 * 50.0
            + 0.4 * 0.6 * 100.0
            + 0.4 * 0.4 * 0.7 * 150.0
            + 0.4 * 0.4 * 0.3 * 0.7 * 200.0
            + 0.4 * 0.4 * 0.3 * 0.3 * 250.0;
        assert!((q.latency - expected).abs() < EPS);
        assert!((q.latency - 81.0).abs() < 0.5, "latency {}", q.latency);
        assert!((q.reliability.value() - 0.99712).abs() < 1e-9);
    }

    #[test]
    fn table2_strategy3_custom() {
        // Paper: cost 162, latency 111, reliability 99.7%.
        // Exact: cost 163.2, latency 111.2.
        let q = est("a-b*c-d-e");
        assert!((q.cost - 163.2).abs() < 1e-6, "cost {}", q.cost);
        assert!((q.latency - 111.2).abs() < 1e-6, "latency {}", q.latency);
        assert!((q.reliability.value() - 0.99712).abs() < 1e-9);
    }

    #[test]
    fn table2_strategy4_custom() {
        // Paper: cost 372, latency 85, reliability 99.7%.
        // Exact: cost 372 exactly, latency 85.92.
        let q = est("c*(a*b-d*e)");
        assert!((q.cost - 372.0).abs() < 1e-6, "cost {}", q.cost);
        assert!((q.latency - 85.92).abs() < 1e-6, "latency {}", q.latency);
        assert!((q.reliability.value() - 0.99712).abs() < 1e-9);
    }

    #[test]
    fn reliability_is_order_independent() {
        let strategies = [
            "a-b-c-d-e",
            "a*b*c*d*e",
            "a-b*c-d-e",
            "c*(a*b-d*e)",
            "(a-b)*(c-d)*e",
        ];
        for text in strategies {
            let q = est(text);
            assert!(
                (q.reliability.value() - 0.99712).abs() < 1e-9,
                "{text}: {}",
                q.reliability
            );
        }
    }

    #[test]
    fn failover_cost_is_conditional() {
        // a-b: cost = 50 + 0.4*100 = 90; latency = 0.6*50 + 0.4*150 = 90.
        let q = est("a-b");
        assert!((q.cost - 90.0).abs() < EPS);
        assert!((q.latency - 90.0).abs() < EPS);
    }

    #[test]
    fn parallel_cost_charges_everyone() {
        let q = est("a*b");
        assert!((q.cost - 150.0).abs() < EPS);
        // 0.6*50 + 0.4*100 = 70
        assert!((q.latency - 70.0).abs() < EPS);
    }

    #[test]
    fn perfectly_reliable_head_shields_tail() {
        let env = EnvQos::from_triples(&[(10.0, 5.0, 1.0), (99.0, 99.0, 0.5)]).unwrap();
        let q = estimate(&Strategy::parse("a-b").unwrap(), &env).unwrap();
        assert!((q.cost - 10.0).abs() < EPS, "b never starts");
        assert!((q.latency - 5.0).abs() < EPS);
        assert_eq!(q.reliability, Reliability::ALWAYS);
    }

    #[test]
    fn zero_reliability_head_always_falls_through() {
        let env = EnvQos::from_triples(&[(10.0, 5.0, 0.0), (20.0, 7.0, 0.8)]).unwrap();
        let q = estimate(&Strategy::parse("a-b").unwrap(), &env).unwrap();
        assert!((q.cost - 30.0).abs() < EPS);
        assert!((q.latency - 12.0).abs() < EPS);
        assert!((q.reliability.value() - 0.8).abs() < EPS);
    }

    #[test]
    fn equal_end_times_share_the_tie_consistently() {
        // Two parallel microservices with identical latency: expected
        // latency is that latency regardless of sort order.
        let env = EnvQos::from_triples(&[(1.0, 40.0, 0.5), (1.0, 40.0, 0.9)]).unwrap();
        let q = estimate(&Strategy::parse("a*b").unwrap(), &env).unwrap();
        assert!((q.latency - 40.0).abs() < EPS);
    }

    #[test]
    fn missing_entry_error() {
        let env = EnvQos::from_triples(&[(1.0, 1.0, 0.5)]).unwrap();
        let s = Strategy::parse("a*b").unwrap();
        assert_eq!(
            estimate(&s, &env).unwrap_err(),
            EstimateError::MissingMicroservice(MsId(1))
        );
    }

    #[test]
    fn grouped_vs_ungrouped_differ_in_qos() {
        // Observation 3's semantic distinction shows up in the estimates.
        let grouped = est("(a-b)*c");
        let ungrouped = est("a-b*c");
        assert!((grouped.cost - ungrouped.cost).abs() > 1.0);
        assert!((grouped.latency - ungrouped.latency).abs() > 1.0);
    }

    #[test]
    fn estimate_from_timelines_matches_estimate() {
        let s = Strategy::parse("a-b*c-d").unwrap();
        let env = env5();
        let tl = crate::estimate::timelines(&s, &env).unwrap();
        let via_tl = estimate_from_timelines(&tl, &env);
        let direct = estimate(&s, &env).unwrap();
        assert_eq!(via_tl, direct);
    }
}

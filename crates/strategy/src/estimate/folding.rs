//! The folding-based QoS estimator from the web-services literature
//! (Hiratsuka et al., ICWS 2011 — reference [15] of the paper), used as the
//! baseline that Algorithm 1 improves upon.
//!
//! The folding method collapses an execution strategy bottom-up: each
//! composite node is replaced by a single *virtual* microservice whose QoS
//! is computed pairwise from its children's QoS:
//!
//! * sequential `x - y`: `l = l_x + (1-r_x)·l_y`, `c = c_x + (1-r_x)·c_y`,
//!   `r = 1-(1-r_x)(1-r_y)`;
//! * parallel `x * y` (fold the faster one first):
//!   `l = l_f·r_f + l_s·(1-r_f)`, `c = c_x + c_y`,
//!   `r = 1-(1-r_x)(1-r_y)`.
//!
//! As the paper's Section III.C.3 shows, folding ignores that a *later*
//! sibling can short-circuit microservices folded earlier: for `a*b*c` with
//! `l=(10,90,70)`, `r=(10%,90%,70%)` folding yields 73.6 while the true
//! average latency is 69.4. This module exists so benchmarks can quantify
//! that gap.

use crate::error::EstimateError;
use crate::expr::{Node, Strategy};
use crate::qos::{EnvQos, Qos, Reliability};

/// Estimates strategy QoS with the folding method of prior work \[15\].
///
/// Prefer [`estimate`](crate::estimate::estimate) (the paper's Algorithm 1)
/// for accurate numbers; this exists as a comparison baseline.
///
/// **Deprecated** in favour of the [`Estimator`](crate::estimate::Estimator)
/// trait: use the [`Folding`](crate::estimate::Folding) implementation. This
/// free function is kept as a thin, stable wrapper; no `#[deprecated]`
/// attribute is attached so existing builds stay warning-free.
///
/// # Errors
///
/// Returns [`EstimateError::MissingMicroservice`] if `env` lacks an entry
/// for any microservice of the strategy.
///
/// # Examples
///
/// ```
/// use qce_strategy::estimate::{estimate, estimate_folding};
/// use qce_strategy::{EnvQos, Strategy};
///
/// let env = EnvQos::from_triples(&[
///     (1.0, 10.0, 0.1),
///     (1.0, 90.0, 0.9),
///     (1.0, 70.0, 0.7),
/// ])?;
/// let s = Strategy::parse("a*b*c")?;
/// let folded = estimate_folding(&s, &env)?;
/// let exact = estimate(&s, &env)?;
/// assert!((folded.latency - 73.6).abs() < 1e-9); // the paper's Section III.C.3
/// assert!((exact.latency - 69.4).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn estimate_folding(strategy: &Strategy, env: &EnvQos) -> Result<Qos, EstimateError> {
    fold(strategy.node(), env)
}

fn fold(node: &Node, env: &EnvQos) -> Result<Qos, EstimateError> {
    match node {
        Node::Leaf(id) => env
            .get(*id)
            .copied()
            .ok_or(EstimateError::MissingMicroservice(*id)),
        Node::Seq(children) => {
            let mut iter = children.iter();
            let first = fold(iter.next().expect("Seq has children"), env)?;
            iter.try_fold(first, |acc, child| {
                let next = fold(child, env)?;
                Ok(fold_seq(&acc, &next))
            })
        }
        Node::Par(children) => {
            let mut iter = children.iter();
            let first = fold(iter.next().expect("Par has children"), env)?;
            iter.try_fold(first, |acc, child| {
                let next = fold(child, env)?;
                Ok(fold_par(&acc, &next))
            })
        }
    }
}

fn fold_seq(x: &Qos, y: &Qos) -> Qos {
    let fx = x.reliability.failure_probability();
    Qos {
        cost: x.cost + fx * y.cost,
        latency: x.latency + fx * y.latency,
        reliability: Reliability::clamped(1.0 - fx * y.reliability.failure_probability()),
    }
}

fn fold_par(x: &Qos, y: &Qos) -> Qos {
    // Order the pair by latency: the faster one "wins" with its own
    // reliability, otherwise the slower one's latency is paid.
    let (fast, slow) = if x.latency <= y.latency {
        (x, y)
    } else {
        (y, x)
    };
    let rf = fast.reliability.value();
    Qos {
        cost: x.cost + y.cost,
        latency: fast.latency * rf + slow.latency * (1.0 - rf),
        reliability: Reliability::clamped(
            1.0 - x.reliability.failure_probability() * y.reliability.failure_probability(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate;

    const EPS: f64 = 1e-9;

    fn env_3c3() -> EnvQos {
        EnvQos::from_triples(&[(1.0, 10.0, 0.1), (1.0, 90.0, 0.9), (1.0, 70.0, 0.7)]).unwrap()
    }

    #[test]
    fn paper_folding_example() {
        // θ = a*b: l = 10·10% + 90·90% = 82, r = 91%.
        // θ*c: l = 70·70% + 82·30% = 73.6.
        let q = estimate_folding(&Strategy::parse("a*b*c").unwrap(), &env_3c3()).unwrap();
        assert!((q.latency - 73.6).abs() < EPS, "latency {}", q.latency);
        assert!((q.reliability.value() - 0.973).abs() < EPS);
        assert!((q.cost - 3.0).abs() < EPS);
    }

    #[test]
    fn folding_overestimates_parallel_latency() {
        let s = Strategy::parse("a*b*c").unwrap();
        let folded = estimate_folding(&s, &env_3c3()).unwrap();
        let exact = estimate(&s, &env_3c3()).unwrap();
        assert!(folded.latency > exact.latency);
    }

    #[test]
    fn folding_matches_algorithm1_on_leaves_and_pairs() {
        // For a single leaf, a two-element Seq, and a two-element Par the
        // folding recurrence is exact.
        let env = EnvQos::from_triples(&[(50.0, 50.0, 0.6), (100.0, 100.0, 0.6)]).unwrap();
        for text in ["a", "a-b", "b-a", "a*b"] {
            let s = Strategy::parse(text).unwrap();
            let folded = estimate_folding(&s, &env).unwrap();
            let exact = estimate(&s, &env).unwrap();
            assert!((folded.cost - exact.cost).abs() < EPS, "{text}");
            assert!((folded.latency - exact.latency).abs() < EPS, "{text}");
            assert!(
                (folded.reliability.value() - exact.reliability.value()).abs() < EPS,
                "{text}"
            );
        }
    }

    #[test]
    fn folding_matches_reliability_always() {
        // Reliability only depends on the set of microservices, so folding
        // gets it right even where latency drifts.
        let env = EnvQos::from_triples(&[
            (50.0, 50.0, 0.6),
            (100.0, 100.0, 0.6),
            (150.0, 150.0, 0.7),
            (200.0, 200.0, 0.7),
        ])
        .unwrap();
        for text in ["a*b*c*d", "a-b*c-d", "(a-b)*(c-d)"] {
            let s = Strategy::parse(text).unwrap();
            let folded = estimate_folding(&s, &env).unwrap();
            let exact = estimate(&s, &env).unwrap();
            assert!(
                (folded.reliability.value() - exact.reliability.value()).abs() < EPS,
                "{text}"
            );
        }
    }

    #[test]
    fn sequential_folding_is_exact_for_pure_failover() {
        // In a pure fail-over chain no sibling can short-circuit another,
        // so folding agrees with Algorithm 1.
        let env = EnvQos::from_triples(&[
            (50.0, 50.0, 0.6),
            (100.0, 100.0, 0.6),
            (150.0, 150.0, 0.7),
            (200.0, 200.0, 0.7),
            (250.0, 250.0, 0.8),
        ])
        .unwrap();
        let s = Strategy::parse("a-b-c-d-e").unwrap();
        let folded = estimate_folding(&s, &env).unwrap();
        let exact = estimate(&s, &env).unwrap();
        assert!((folded.cost - exact.cost).abs() < EPS);
        assert!((folded.latency - exact.latency).abs() < EPS);
    }

    #[test]
    fn missing_entry_error() {
        let env = EnvQos::from_triples(&[(1.0, 1.0, 0.5)]).unwrap();
        assert!(estimate_folding(&Strategy::parse("a*b").unwrap(), &env).is_err());
    }
}

//! The [`Estimator`] abstraction — QoS estimation behind a trait object.
//!
//! The free functions [`estimate`](crate::estimate::estimate) and
//! [`estimate_folding`](crate::estimate::estimate_folding) hard-code one
//! algorithm each. Generators, benchmark tables, and the runtime instead
//! accept `&dyn Estimator` (usually via `Arc<dyn Estimator>`), so the
//! estimation algorithm is swappable:
//!
//! * [`Algorithm1`] — the paper's Algorithm 1, with a per-environment
//!   memo cache keyed by the canonical strategy tree;
//! * [`Folding`] — the pairwise folding baseline of prior work \[15\].

use std::collections::HashMap;
use std::sync::Mutex;

use crate::error::EstimateError;
use crate::estimate::{algorithm1, folding};
use crate::expr::Strategy;
use crate::qos::{EnvQos, Qos};

/// A QoS estimator: maps a strategy and an environment to an expected
/// [`Qos`].
///
/// Implementations must be `Send + Sync` — the synthesis engine shares one
/// estimator across worker threads.
pub trait Estimator: Send + Sync + std::fmt::Debug {
    /// Estimates the QoS of `strategy` under `env`.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::MissingMicroservice`] (or an
    /// implementation-defined variant — the enum is `#[non_exhaustive]`)
    /// when the environment does not cover the strategy.
    fn estimate(&self, strategy: &Strategy, env: &EnvQos) -> Result<Qos, EstimateError>;

    /// Like [`Estimator::estimate`] but guaranteed not to populate any
    /// internal cache.
    ///
    /// Exhaustive search evaluates tens of thousands of candidates per
    /// environment; caching each one would evict the entries callers
    /// actually re-query. The default forwards to `estimate`.
    fn estimate_uncached(&self, strategy: &Strategy, env: &EnvQos) -> Result<Qos, EstimateError> {
        self.estimate(strategy, env)
    }

    /// `true` iff this estimator is bit-for-bit identical to the paper's
    /// Algorithm 1 ([`crate::estimate::estimate`]).
    ///
    /// The generator's branch-and-bound fast path derives its admissible
    /// bounds from Algorithm 1's cost/latency/reliability formulas, so it
    /// only engages when this returns `true`; other estimators fall back
    /// to the generic (unpruned, optionally chunk-parallel) search.
    fn is_algorithm1(&self) -> bool {
        false
    }

    /// A short human-readable name for reports and logs.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// Upper bound on memoized `(environment, strategy) → Qos` entries held by
/// [`Algorithm1`] before the cache is cleared wholesale.
const MEMO_CAPACITY: usize = 1 << 16;

/// Upper bound on distinct environments interned for epoch numbering; the
/// table is reset (together with the memo) when it fills up.
const ENV_CAPACITY: usize = 64;

/// The paper's Algorithm 1 behind the [`Estimator`] trait, memoizing
/// `(environment epoch, canonical strategy) → Qos`.
///
/// Environments are interned by exact equality into a small epoch table, so
/// the memo key is `(epoch, Strategy)` — the canonical strategy tree
/// ([`Strategy`] hashes its flattened, `*`-sorted [`Node`](crate::expr::Node))
/// plus a dense environment index. A cached hit returns the very `Qos`
/// produced by the original call, so memoization is bit-for-bit transparent.
///
/// The cache is bounded (`MEMO_CAPACITY` entries) and cleared wholesale
/// when full — per-slot replanning re-estimates a handful of deployed
/// strategies per environment, which fits comfortably.
#[derive(Debug, Default)]
pub struct Algorithm1 {
    inner: Mutex<Memo>,
}

#[derive(Debug, Default)]
struct Memo {
    /// Interned environments; the index is the epoch in the memo key.
    envs: Vec<EnvQos>,
    cache: HashMap<(usize, Strategy), Qos>,
    hits: u64,
    misses: u64,
}

impl Algorithm1 {
    /// Creates a fresh estimator with an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized estimates currently held.
    #[must_use]
    pub fn cached(&self) -> usize {
        self.inner.lock().expect("memo lock poisoned").cache.len()
    }

    /// `(hits, misses)` counters since construction (or the last clear has
    /// no effect on them — they are cumulative).
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        let memo = self.inner.lock().expect("memo lock poisoned");
        (memo.hits, memo.misses)
    }

    /// Drops every memoized entry and interned environment.
    pub fn clear_cache(&self) {
        let mut memo = self.inner.lock().expect("memo lock poisoned");
        memo.envs.clear();
        memo.cache.clear();
    }
}

impl Estimator for Algorithm1 {
    fn estimate(&self, strategy: &Strategy, env: &EnvQos) -> Result<Qos, EstimateError> {
        let mut memo = self.inner.lock().expect("memo lock poisoned");
        let epoch = match memo.envs.iter().position(|known| known == env) {
            Some(i) => i,
            None => {
                if memo.envs.len() >= ENV_CAPACITY {
                    memo.envs.clear();
                    memo.cache.clear();
                }
                memo.envs.push(env.clone());
                memo.envs.len() - 1
            }
        };
        if let Some(&qos) = memo.cache.get(&(epoch, strategy.clone())) {
            memo.hits += 1;
            return Ok(qos);
        }
        memo.misses += 1;
        // Estimate outside the map entry to keep the borrow simple; the
        // lock is held throughout so concurrent callers observe a
        // consistent cache.
        let qos = algorithm1::estimate(strategy, env)?;
        if memo.cache.len() >= MEMO_CAPACITY {
            memo.cache.clear();
        }
        memo.cache.insert((epoch, strategy.clone()), qos);
        Ok(qos)
    }

    fn estimate_uncached(&self, strategy: &Strategy, env: &EnvQos) -> Result<Qos, EstimateError> {
        algorithm1::estimate(strategy, env)
    }

    fn is_algorithm1(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "algorithm1"
    }
}

/// The pairwise folding baseline \[15\] behind the [`Estimator`] trait.
///
/// Stateless; exists so comparison benchmarks can drive the same generator
/// and report plumbing with the weaker estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Folding;

impl Folding {
    /// Creates the (stateless) folding estimator.
    #[must_use]
    pub fn new() -> Self {
        Folding
    }
}

impl Estimator for Folding {
    fn estimate(&self, strategy: &Strategy, env: &EnvQos) -> Result<Qos, EstimateError> {
        folding::estimate_folding(strategy, env)
    }

    fn name(&self) -> &'static str {
        "folding"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::StrategySampler;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn env5() -> EnvQos {
        EnvQos::from_triples(&[
            (50.0, 50.0, 0.6),
            (100.0, 100.0, 0.6),
            (150.0, 150.0, 0.7),
            (200.0, 200.0, 0.7),
            (250.0, 250.0, 0.8),
        ])
        .unwrap()
    }

    #[test]
    fn algorithm1_matches_free_function() {
        let est = Algorithm1::new();
        let env = env5();
        for text in ["a-b-c-d-e", "a*b*c*d*e", "c*(a*b-d*e)"] {
            let s = Strategy::parse(text).unwrap();
            let expected = crate::estimate::estimate(&s, &env).unwrap();
            assert_eq!(est.estimate(&s, &env).unwrap(), expected);
            // Second call must hit the cache and return the same value.
            assert_eq!(est.estimate(&s, &env).unwrap(), expected);
        }
        let (hits, misses) = est.cache_stats();
        assert_eq!((hits, misses), (3, 3));
    }

    #[test]
    fn memoized_estimates_are_bit_identical_over_sampled_strategies() {
        // Satellite test (b): 1,000 sampled strategies at M=5 agree
        // bit-for-bit between the memoized estimator and the plain
        // Algorithm 1 — exercised twice so the second pass is all hits.
        let env = env5();
        let ids = env.ids();
        let sampler = StrategySampler::new(&ids);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let est = Algorithm1::new();
        let samples: Vec<Strategy> = (0..1000).map(|_| sampler.sample(&mut rng)).collect();
        for pass in 0..2 {
            for s in &samples {
                let plain = crate::estimate::estimate(s, &env).unwrap();
                let memo = est.estimate(s, &env).unwrap();
                assert_eq!(
                    memo.cost.to_bits(),
                    plain.cost.to_bits(),
                    "pass {pass}: cost differs for {s}"
                );
                assert_eq!(
                    memo.latency.to_bits(),
                    plain.latency.to_bits(),
                    "pass {pass}: latency differs for {s}"
                );
                assert_eq!(
                    memo.reliability.value().to_bits(),
                    plain.reliability.value().to_bits(),
                    "pass {pass}: reliability differs for {s}"
                );
            }
        }
        let (hits, _misses) = est.cache_stats();
        assert!(hits >= 1000, "second pass should be cache hits, got {hits}");
    }

    #[test]
    fn distinct_environments_get_distinct_epochs() {
        let est = Algorithm1::new();
        let env_a = env5();
        let env_b = EnvQos::from_triples(&[(1.0, 10.0, 0.1), (1.0, 90.0, 0.9)]).unwrap();
        let s_a = Strategy::parse("a-b").unwrap();
        let qos_a = est.estimate(&s_a, &env_a).unwrap();
        let qos_b = est.estimate(&s_a, &env_b).unwrap();
        assert_ne!(qos_a, qos_b, "same strategy, different envs");
        assert_eq!(est.estimate(&s_a, &env_a).unwrap(), qos_a);
        assert_eq!(est.estimate(&s_a, &env_b).unwrap(), qos_b);
        assert_eq!(est.cached(), 2);
        est.clear_cache();
        assert_eq!(est.cached(), 0);
    }

    #[test]
    fn estimate_uncached_skips_the_cache() {
        let est = Algorithm1::new();
        let env = env5();
        let s = Strategy::parse("a*b").unwrap();
        let qos = est.estimate_uncached(&s, &env).unwrap();
        assert_eq!(qos, crate::estimate::estimate(&s, &env).unwrap());
        assert_eq!(est.cached(), 0);
    }

    #[test]
    fn folding_matches_free_function() {
        let est = Folding::new();
        let env = env5();
        let s = Strategy::parse("a*b*c").unwrap();
        assert_eq!(
            est.estimate(&s, &env).unwrap(),
            crate::estimate::estimate_folding(&s, &env).unwrap()
        );
        assert!(!est.is_algorithm1());
    }

    #[test]
    fn missing_microservice_propagates() {
        let est = Algorithm1::new();
        let env = EnvQos::from_triples(&[(1.0, 1.0, 0.5)]).unwrap();
        let s = Strategy::parse("a-b").unwrap();
        assert!(est.estimate(&s, &env).is_err());
    }
}

//! Exact latency *distribution* of a strategy — a strict generalization of
//! Algorithm 1's average.
//!
//! Under the model of Section III.C (fixed per-microservice latencies,
//! independent Bernoulli successes), a strategy's completion time is a
//! discrete random variable: it equals `φ(i).end` when every microservice
//! finishing earlier failed and `φ(i)` succeeded, and the last end time
//! when everything failed. Algorithm 1 reports only the mean of this
//! mixture; this module exposes the full mixture, from which tail
//! percentiles — the latency metric real SLAs are written against — follow
//! directly.

use serde::{Deserialize, Serialize};

use crate::error::EstimateError;
use crate::estimate::timeline::timelines;
use crate::expr::Strategy;
use crate::qos::EnvQos;

/// A discrete completion-time distribution.
///
/// # Examples
///
/// ```
/// use qce_strategy::estimate::latency_mixture;
/// use qce_strategy::{EnvQos, Strategy};
///
/// let env = EnvQos::from_triples(&[
///     (1.0, 10.0, 0.1),
///     (1.0, 90.0, 0.9),
///     (1.0, 70.0, 0.7),
/// ])?;
/// let mix = latency_mixture(&Strategy::parse("a*b*c")?, &env)?;
/// assert!((mix.mean() - 69.4).abs() < 1e-9);   // Algorithm 1's average
/// assert!((mix.quantile(0.99) - 90.0).abs() < 1e-9); // but p99 is 90 ms
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyMixture {
    /// `(completion time, probability)` pairs, sorted by time, probabilities
    /// summing to 1.
    points: Vec<(f64, f64)>,
}

impl LatencyMixture {
    /// The support points and their probabilities, sorted by time.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Mean completion time — identical to Algorithm 1's latency.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.points.iter().map(|(t, p)| t * p).sum()
    }

    /// Variance of the completion time.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        self.points
            .iter()
            .map(|(t, p)| p * (t - mean).powi(2))
            .sum()
    }

    /// Standard deviation of the completion time.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The smallest completion time `t` with `P(X ≤ t) ≥ q`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q ≤ 1`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        let mut acc = 0.0;
        for (t, p) in &self.points {
            acc += p;
            if acc >= q - 1e-12 {
                return *t;
            }
        }
        self.points.last().map_or(0.0, |(t, _)| *t)
    }

    /// `P(X ≤ t)`.
    #[must_use]
    pub fn cdf(&self, t: f64) -> f64 {
        self.points
            .iter()
            .take_while(|(time, _)| *time <= t)
            .map(|(_, p)| p)
            .sum()
    }
}

/// Computes the exact completion-time mixture of `strategy` under `env`
/// (fixed latencies, independent Bernoulli successes — the Section III.C
/// model).
///
/// # Errors
///
/// Returns [`EstimateError::MissingMicroservice`] if `env` lacks an entry
/// for any microservice of the strategy.
pub fn latency_mixture(strategy: &Strategy, env: &EnvQos) -> Result<LatencyMixture, EstimateError> {
    let mut tl = timelines(strategy, env)?;
    tl.sort_by(|a, b| a.end.partial_cmp(&b.end).expect("latency is not NaN"));

    let mut points: Vec<(f64, f64)> = Vec::with_capacity(tl.len() + 1);
    let mut prefix_fail = 1.0;
    for (i, t) in tl.iter().enumerate() {
        let r = env
            .get(t.ms)
            .expect("validated by timelines")
            .reliability
            .value();
        if i + 1 == tl.len() {
            // Last to finish: completion happens here regardless of outcome.
            points.push((t.end, prefix_fail));
        } else {
            let p = prefix_fail * r;
            if p > 0.0 {
                points.push((t.end, p));
            }
            prefix_fail *= 1.0 - r;
        }
    }
    // Merge duplicate support points (equal end times).
    points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(points.len());
    for (t, p) in points {
        match merged.last_mut() {
            Some((last_t, last_p)) if (*last_t - t).abs() < 1e-12 => *last_p += p,
            _ => merged.push((t, p)),
        }
    }
    Ok(LatencyMixture { points: merged })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate;

    fn env() -> EnvQos {
        EnvQos::from_triples(&[(1.0, 10.0, 0.1), (1.0, 90.0, 0.9), (1.0, 70.0, 0.7)]).unwrap()
    }

    #[test]
    fn probabilities_sum_to_one() {
        for text in ["a", "a-b", "a*b*c", "a-b*c", "(a-b)*c"] {
            let mix = latency_mixture(&Strategy::parse(text).unwrap(), &env()).unwrap();
            let total: f64 = mix.points().iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-12, "{text}: {total}");
        }
    }

    #[test]
    fn mean_matches_algorithm1_exactly() {
        for text in ["a", "a-b", "a*b*c", "a-b*c", "(a-b)*c", "b*(a-c)"] {
            let s = Strategy::parse(text).unwrap();
            let mix = latency_mixture(&s, &env()).unwrap();
            let alg1 = estimate(&s, &env()).unwrap();
            assert!(
                (mix.mean() - alg1.latency).abs() < 1e-9,
                "{text}: {} vs {}",
                mix.mean(),
                alg1.latency
            );
        }
    }

    #[test]
    fn worked_example_mixture() {
        // a*b*c: finish at 10 w.p. 0.1; at 70 w.p. 0.9·0.7; at 90 otherwise.
        let mix = latency_mixture(&Strategy::parse("a*b*c").unwrap(), &env()).unwrap();
        assert_eq!(mix.points().len(), 3);
        let pts = mix.points();
        assert!((pts[0].0 - 10.0).abs() < 1e-12 && (pts[0].1 - 0.1).abs() < 1e-12);
        assert!((pts[1].0 - 70.0).abs() < 1e-12 && (pts[1].1 - 0.63).abs() < 1e-12);
        assert!((pts[2].0 - 90.0).abs() < 1e-12 && (pts[2].1 - 0.27).abs() < 1e-12);
        assert!((mix.mean() - 69.4).abs() < 1e-9);
        assert!(
            (mix.variance()
                - (0.1 * 10.0f64.powi(2) + 0.63 * 70.0f64.powi(2) + 0.27 * 90.0f64.powi(2)
                    - 69.4f64.powi(2)))
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn quantiles_walk_the_support() {
        let mix = latency_mixture(&Strategy::parse("a*b*c").unwrap(), &env()).unwrap();
        assert_eq!(mix.quantile(0.05), 10.0);
        assert_eq!(mix.quantile(0.5), 70.0);
        assert_eq!(mix.quantile(0.73), 70.0);
        assert_eq!(mix.quantile(0.74), 90.0);
        assert_eq!(mix.quantile(1.0), 90.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn zero_quantile_rejected() {
        let mix = latency_mixture(&Strategy::parse("a").unwrap(), &env()).unwrap();
        let _ = mix.quantile(0.0);
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let mix = latency_mixture(&Strategy::parse("a-b*c").unwrap(), &env()).unwrap();
        assert_eq!(mix.cdf(-1.0), 0.0);
        let mut prev = 0.0;
        for t in [0.0, 50.0, 100.0, 200.0, 1000.0] {
            let c = mix.cdf(t);
            assert!(c >= prev);
            prev = c;
        }
        assert!((mix.cdf(f64::MAX) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_leaf_is_a_point_mass() {
        let env = EnvQos::from_triples(&[(1.0, 42.0, 1.0)]).unwrap();
        let mix = latency_mixture(&Strategy::parse("a").unwrap(), &env).unwrap();
        assert_eq!(mix.points(), &[(42.0, 1.0)]);
        assert_eq!(mix.variance(), 0.0);
        assert_eq!(mix.std_dev(), 0.0);
    }

    #[test]
    fn equal_end_times_are_merged() {
        let env = EnvQos::from_triples(&[(1.0, 50.0, 0.5), (1.0, 50.0, 0.5)]).unwrap();
        let mix = latency_mixture(&Strategy::parse("a*b").unwrap(), &env).unwrap();
        assert_eq!(mix.points().len(), 1);
        assert_eq!(mix.points()[0], (50.0, 1.0));
    }

    #[test]
    fn zero_reliability_head_contributes_no_mass() {
        let env = EnvQos::from_triples(&[(1.0, 10.0, 0.0), (1.0, 30.0, 0.8)]).unwrap();
        let mix = latency_mixture(&Strategy::parse("a-b").unwrap(), &env).unwrap();
        // a always fails, so completion only ever happens at 40 (= 10 + 30).
        assert_eq!(mix.points(), &[(40.0, 1.0)]);
    }

    #[test]
    fn mixture_matches_monte_carlo_quantiles() {
        // Cross-check the p90 against an empirical distribution.
        use rand::Rng;
        use rand::SeedableRng;
        let env = env();
        let s = Strategy::parse("a-b*c").unwrap();
        let mix = latency_mixture(&s, &env).unwrap();
        // Manual virtual-time sampling with constant latencies.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let mut samples: Vec<f64> = Vec::new();
        for _ in 0..20_000 {
            // a runs [0,10); b [10,100); c [10,80).
            let a_ok = rng.gen_bool(0.1);
            if a_ok {
                samples.push(10.0);
                continue;
            }
            // b's outcome doesn't change the completion time once a failed:
            // success at 100 or total failure at 100 look the same.
            let _b = rng.gen_bool(0.9);
            let c_ok = rng.gen_bool(0.7);
            samples.push(if c_ok { 80.0 } else { 100.0 });
        }
        samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let p90_mc = samples[(samples.len() as f64 * 0.9) as usize];
        assert_eq!(mix.quantile(0.9), p90_mc);
    }
}

//! QoS composition for multi-stage services.
//!
//! A service script "describes the dataflow of constituent microservices"
//! (paper Section IV.A): a service can be a *pipeline* of stages, each
//! stage being its own set of equivalent microservices with its own
//! execution strategy. This module composes per-stage QoS into end-to-end
//! pipeline QoS, so requirements can be checked (and budgets split) across
//! the whole dataflow.
//!
//! A pipeline aborts at the first stage whose strategy fails entirely, so
//! for stages with QoS `(c_i, l_i, r_i)`:
//!
//! * reliability: `Π r_i` — every stage must succeed;
//! * expected cost per attempt: `Σ c_i · Π_{j<i} r_j` — stage `i` only
//!   runs if all earlier stages succeeded;
//! * expected latency per attempt: `Σ l_i · Π_{j<i} r_j`.

use crate::qos::{Qos, Reliability, Requirements};

/// Composes the end-to-end QoS of a sequential pipeline of stages.
///
/// Returns `None` for an empty stage list.
///
/// # Examples
///
/// ```
/// use qce_strategy::compose::pipeline_qos;
/// use qce_strategy::Qos;
///
/// let stages = [
///     Qos::new(10.0, 20.0, 0.9)?, // sense
///     Qos::new(30.0, 50.0, 0.8)?, // analyze
/// ];
/// let total = pipeline_qos(&stages).unwrap();
/// assert!((total.reliability.value() - 0.72).abs() < 1e-12);
/// assert!((total.cost - (10.0 + 0.9 * 30.0)).abs() < 1e-12);
/// assert!((total.latency - (20.0 + 0.9 * 50.0)).abs() < 1e-12);
/// # Ok::<(), qce_strategy::QosError>(())
/// ```
#[must_use]
pub fn pipeline_qos(stages: &[Qos]) -> Option<Qos> {
    if stages.is_empty() {
        return None;
    }
    let mut reach = 1.0; // probability the stage is reached
    let mut cost = 0.0;
    let mut latency = 0.0;
    let mut reliability = 1.0;
    for stage in stages {
        cost += reach * stage.cost;
        latency += reach * stage.latency;
        reliability *= stage.reliability.value();
        reach *= stage.reliability.value();
    }
    Some(Qos {
        cost,
        latency,
        reliability: Reliability::clamped(reliability),
    })
}

/// The QoS of a *successful* end-to-end run: every stage executed, so cost
/// and latency are plain sums (this is what a client that retries until
/// success experiences per successful attempt, ignoring retries).
///
/// Returns `None` for an empty stage list.
#[must_use]
pub fn pipeline_qos_on_success(stages: &[Qos]) -> Option<Qos> {
    if stages.is_empty() {
        return None;
    }
    Some(Qos {
        cost: stages.iter().map(|s| s.cost).sum(),
        latency: stages.iter().map(|s| s.latency).sum(),
        reliability: Reliability::clamped(stages.iter().map(|s| s.reliability.value()).product()),
    })
}

/// Splits an end-to-end requirement evenly across `stages` pipeline stages:
/// cost and latency budgets divide; the reliability floor takes the
/// `stages`-th root (so the product meets the original floor).
///
/// A coarse but sound default for planning per-stage strategies before any
/// observations exist; per-stage generators then optimize within their
/// slice.
///
/// # Panics
///
/// Panics if `stages == 0`.
///
/// # Examples
///
/// ```
/// use qce_strategy::compose::split_requirements;
/// use qce_strategy::Requirements;
///
/// let end_to_end = Requirements::new(200.0, 100.0, 0.81)?;
/// let per_stage = split_requirements(&end_to_end, 2);
/// assert_eq!(per_stage.cost, 100.0);
/// assert_eq!(per_stage.latency, 50.0);
/// assert!((per_stage.reliability.value() - 0.9).abs() < 1e-12);
/// # Ok::<(), qce_strategy::QosError>(())
/// ```
#[must_use]
pub fn split_requirements(end_to_end: &Requirements, stages: usize) -> Requirements {
    assert!(stages >= 1, "a pipeline has at least one stage");
    let n = stages as f64;
    Requirements::new(
        end_to_end.cost / n,
        end_to_end.latency / n,
        end_to_end.reliability.value().powf(1.0 / n),
    )
    .expect("dividing positive budgets keeps them positive")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(c: f64, l: f64, r: f64) -> Qos {
        Qos::new(c, l, r).unwrap()
    }

    #[test]
    fn empty_pipeline_is_none() {
        assert!(pipeline_qos(&[]).is_none());
        assert!(pipeline_qos_on_success(&[]).is_none());
    }

    #[test]
    fn single_stage_is_identity() {
        let stage = q(10.0, 20.0, 0.8);
        assert_eq!(pipeline_qos(&[stage]).unwrap(), stage);
        assert_eq!(pipeline_qos_on_success(&[stage]).unwrap(), stage);
    }

    #[test]
    fn three_stage_expected_values() {
        let stages = [q(10.0, 10.0, 0.5), q(20.0, 20.0, 0.5), q(40.0, 40.0, 0.5)];
        let total = pipeline_qos(&stages).unwrap();
        // cost = 10 + 0.5·20 + 0.25·40 = 30; same for latency.
        assert!((total.cost - 30.0).abs() < 1e-12);
        assert!((total.latency - 30.0).abs() < 1e-12);
        assert!((total.reliability.value() - 0.125).abs() < 1e-12);
        let success = pipeline_qos_on_success(&stages).unwrap();
        assert_eq!(success.cost, 70.0);
        assert_eq!(success.latency, 70.0);
    }

    #[test]
    fn expected_cost_never_exceeds_success_cost() {
        let stages = [q(10.0, 15.0, 0.9), q(20.0, 25.0, 0.7), q(5.0, 5.0, 0.95)];
        let expected = pipeline_qos(&stages).unwrap();
        let success = pipeline_qos_on_success(&stages).unwrap();
        assert!(expected.cost <= success.cost);
        assert!(expected.latency <= success.latency);
        assert_eq!(expected.reliability, success.reliability);
    }

    #[test]
    fn perfect_stages_make_both_views_agree() {
        let stages = [q(10.0, 15.0, 1.0), q(20.0, 25.0, 1.0)];
        assert_eq!(
            pipeline_qos(&stages).unwrap(),
            pipeline_qos_on_success(&stages).unwrap()
        );
    }

    #[test]
    fn split_requirements_recomposes() {
        let end_to_end = Requirements::new(300.0, 150.0, 0.729).unwrap();
        let per_stage = split_requirements(&end_to_end, 3);
        // Three stages exactly meeting the per-stage floor recompose to the
        // end-to-end floor.
        let stage = q(
            per_stage.cost,
            per_stage.latency,
            per_stage.reliability.value(),
        );
        let total = pipeline_qos_on_success(&[stage, stage, stage]).unwrap();
        assert!((total.cost - 300.0).abs() < 1e-9);
        assert!((total.latency - 150.0).abs() < 1e-9);
        assert!((total.reliability.value() - 0.729).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_split_panics() {
        let _ = split_requirements(&Requirements::new(1.0, 1.0, 0.5).unwrap(), 0);
    }
}

//! Enumeration, counting, and uniform sampling of execution strategies
//! (paper Section III.B, Table I).
//!
//! Given `M` equivalent microservices, the set of distinct execution
//! strategies that use *all* of them is denoted `F(M)`; allowing strategies
//! over any non-empty subset gives `F'(M)`.
//!
//! ## A note on Table I (reproduction finding)
//!
//! The paper reports `F(M)` = 3, 19, 207, 3211, 64743 for M = 2..6. Under
//! the paper's *own* equivalences (Observations 1–3: `*` commutative, both
//! operators associative), the number of semantically distinct strategies
//! is smaller:
//!
//! | M | 2 | 3 | 4 | 5 | 6 |
//! |---|---|---|---|---|---|
//! | semantically distinct (this module) | 3 | 19 | 195 | 2791 | 51303 |
//! | paper's Table I                     | 3 | 19 | 207 | 3211 | 64743 |
//!
//! The gap is explained by commutative duplicates the paper's
//! duplication-removal misses when **both** operands of `*` are
//! parenthesized sub-expressions: at M = 4 the 12 extra entries are exactly
//! the ordered pairs `(w-x)*(y-z)` vs `(y-z)*(w-x)`, which Observation 1
//! says are the same strategy. Re-running the enumeration with a dedup that
//! sorts only *leaf* operands of `*` (keeping parenthesized operands in
//! encounter order) reproduces the paper's 3, 19, 207, 3211 exactly
//! (64383 vs 64743 at M = 6); see [`paper`]. Both brute-force
//! binary-expression enumeration and an independent counting recurrence
//! confirm the semantic counts used here.
//!
//! This module reproduces the semantic numbers three independent ways:
//! explicit enumeration ([`enumerate_full`]), a closed counting recurrence
//! ([`count_full`]), and uniform random sampling ([`StrategySampler`])
//! driven by the same recurrence.
//!
//! The enumeration works directly on the canonical form (see
//! [`crate::expr::ast`]): a strategy tree alternates `Seq` and `Par` levels,
//! so we recursively enumerate
//!
//! * *seq-rooted* trees: a first block holding a non-seq tree, followed by
//!   the remainder as either a single non-seq tree or another seq-rooted
//!   tree (right-spine recursion guarantees each flattened `Seq` is produced
//!   exactly once);
//! * *par-rooted* trees: the child block containing the smallest leaf is
//!   the distinguished *anchor* (exploiting commutativity), the remainder is
//!   a single non-par tree or another par-rooted tree.

use crate::error::BuildError;
use crate::expr::{Node, Strategy};
use crate::MsId;

/// Maximum number of microservices supported by the counting recurrences.
///
/// `F(21)` overflows `u128`; enumeration is practical only far below this.
pub const MAX_COUNT_M: usize = 20;

/// Bitmask over positions of a microservice slice.
pub(crate) type Mask = u64;

/// Iterates over all submasks of `mask`, including `0` and `mask` itself.
pub(crate) fn submasks(mask: Mask) -> impl Iterator<Item = Mask> {
    let mut sub = mask;
    let mut done = false;
    std::iter::from_fn(move || {
        if done {
            return None;
        }
        let current = sub;
        if sub == 0 {
            done = true;
        } else {
            sub = (sub - 1) & mask;
        }
        Some(current)
    })
}

// ---------------------------------------------------------------------------
// Streaming enumeration
// ---------------------------------------------------------------------------

/// Calls `visit` once for every distinct strategy that uses **all** of
/// `ids` — the set `F(M)` of the paper.
///
/// Strategies are produced in a deterministic order. This streams with
/// `O(depth)` memory, so it can walk strategy spaces too large to collect
/// (e.g. `F(7)` ≈ 1.5 M strategies).
///
/// # Panics
///
/// Panics if `ids` contains duplicates or more than 64 entries.
///
/// # Examples
///
/// ```
/// use qce_strategy::enumerate::for_each_full;
/// use qce_strategy::MsId;
///
/// let ids = [MsId(0), MsId(1)];
/// let mut seen = Vec::new();
/// for_each_full(&ids, |s| seen.push(s.to_string()));
/// seen.sort();
/// assert_eq!(seen, ["a*b", "a-b", "b-a"]);
/// ```
pub fn for_each_full(ids: &[MsId], mut visit: impl FnMut(Strategy)) {
    let ctx = EnumCtx::new(ids);
    if ids.is_empty() {
        return;
    }
    let full: Mask = if ids.len() == 64 {
        Mask::MAX
    } else {
        (1 << ids.len()) - 1
    };
    ctx.stream_all(full, &mut |node| {
        visit(Strategy::from_node(node).expect("enumeration produces valid strategies"));
    });
}

/// Calls `visit` once for every strategy over every non-empty subset of
/// `ids` — the set `F'(M)` of the paper.
///
/// # Panics
///
/// Panics if `ids` contains duplicates or more than 64 entries.
pub fn for_each_with_subsets(ids: &[MsId], mut visit: impl FnMut(Strategy)) {
    if ids.is_empty() {
        return;
    }
    assert!(ids.len() <= 64, "at most 64 microservices supported");
    let full: Mask = if ids.len() == 64 {
        Mask::MAX
    } else {
        (1 << ids.len()) - 1
    };
    let ctx = EnumCtx::new(ids);
    for sub in submasks(full) {
        if sub == 0 {
            continue;
        }
        ctx.stream_all(sub, &mut |node| {
            visit(Strategy::from_node(node).expect("enumeration produces valid strategies"));
        });
    }
}

/// Collects `F(M)`: every distinct strategy using **all** of `ids` — a
/// `.collect()` over [`StrategyIter::full`].
///
/// Practical for `M ≤ 6` (64 743 strategies); prefer [`for_each_full`] or
/// [`StrategyIter`] beyond that.
///
/// # Panics
///
/// Panics if `ids` contains duplicates or more than [`MAX_COUNT_M`]
/// entries.
///
/// # Examples
///
/// ```
/// use qce_strategy::enumerate::enumerate_full;
/// use qce_strategy::MsId;
///
/// let ids: Vec<MsId> = (0..4).map(MsId).collect();
/// // 195 semantically distinct strategies (the paper's Table I reports 207,
/// // counting some commutative duplicates — see the module docs).
/// assert_eq!(enumerate_full(&ids).len(), 195);
/// ```
#[must_use]
pub fn enumerate_full(ids: &[MsId]) -> Vec<Strategy> {
    if ids.is_empty() {
        return Vec::new();
    }
    StrategyIter::full(ids).collect()
}

/// Collects `F'(M)`: every strategy over every non-empty subset of `ids` —
/// a `.collect()` over [`StrategyIter::with_subsets`].
///
/// ```
/// use qce_strategy::enumerate::enumerate_with_subsets;
/// use qce_strategy::MsId;
///
/// let ids: Vec<MsId> = (0..3).map(MsId).collect();
/// assert_eq!(enumerate_with_subsets(&ids).len(), 31); // Table I (exact at M ≤ 3)
/// ```
///
/// # Panics
///
/// Panics if `ids` contains duplicates or more than [`MAX_COUNT_M`]
/// entries.
#[must_use]
pub fn enumerate_with_subsets(ids: &[MsId]) -> Vec<Strategy> {
    if ids.is_empty() {
        return Vec::new();
    }
    StrategyIter::with_subsets(ids).collect()
}

// ---------------------------------------------------------------------------
// Streaming iterator (unranking)
// ---------------------------------------------------------------------------

/// A streaming enumerator over `F(M)` or `F'(M)` that yields candidates in
/// the same canonical order as [`for_each_full`] / [`for_each_with_subsets`]
/// without materializing a `Vec`.
///
/// Internally the iterator *unranks*: it inverts the counting recurrence of
/// [`count_full`] to map an index `k ∈ [0, F(M))` directly to the `k`-th
/// strategy of the enumeration order. That makes the iterator **splittable**
/// — [`split_at`](StrategyIter::split_at) and
/// [`chunks`](StrategyIter::chunks) cut the index range into independent
/// sub-iterators, which is what the parallel generator uses to hand disjoint
/// chunks of the search space to worker threads.
///
/// # Examples
///
/// ```
/// use qce_strategy::enumerate::{enumerate_full, StrategyIter};
/// use qce_strategy::MsId;
///
/// let ids: Vec<MsId> = (0..3).map(MsId).collect();
/// let iter = StrategyIter::full(&ids);
/// assert_eq!(iter.remaining(), 19);
/// let streamed: Vec<_> = iter.collect();
/// assert_eq!(streamed, enumerate_full(&ids));
///
/// // Chunked splitting covers the same space in the same overall order.
/// let parts: Vec<_> = StrategyIter::full(&ids)
///     .chunks(4)
///     .into_iter()
///     .flatten()
///     .collect();
/// assert_eq!(parts, streamed);
/// ```
#[derive(Debug, Clone)]
pub struct StrategyIter {
    shared: std::sync::Arc<IterShared>,
    next: u128,
    end: u128,
}

#[derive(Debug)]
struct IterShared {
    ids: Vec<MsId>,
    counts: Counts,
    /// `(leaf mask, index of the family's first strategy)`, ascending by
    /// index; one entry per enumerated subset.
    families: Vec<(Mask, u128)>,
}

impl StrategyIter {
    /// Iterates over `F(M)`: every strategy using **all** of `ids`.
    ///
    /// # Panics
    ///
    /// Panics if `ids` contains duplicates or more than [`MAX_COUNT_M`]
    /// entries (unranking needs exact counts).
    #[must_use]
    pub fn full(ids: &[MsId]) -> Self {
        Self::over_families(ids, false)
    }

    /// Iterates over `F'(M)`: every strategy over every non-empty subset of
    /// `ids`, subset families in the same order as
    /// [`for_each_with_subsets`].
    ///
    /// # Panics
    ///
    /// Panics if `ids` contains duplicates or more than [`MAX_COUNT_M`]
    /// entries.
    #[must_use]
    pub fn with_subsets(ids: &[MsId]) -> Self {
        Self::over_families(ids, true)
    }

    fn over_families(ids: &[MsId], subsets: bool) -> Self {
        assert!(
            ids.len() <= MAX_COUNT_M,
            "unranking needs exact counts; at most {MAX_COUNT_M} microservices"
        );
        let mut sorted: Vec<MsId> = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "microservice ids must be distinct");

        let counts = Counts::up_to(ids.len());
        let mut families = Vec::new();
        let mut total: u128 = 0;
        if !ids.is_empty() {
            let full: Mask = (1 << ids.len()) - 1;
            if subsets {
                for sub in submasks(full) {
                    if sub == 0 {
                        continue;
                    }
                    families.push((sub, total));
                    total += counts.all(sub.count_ones() as usize);
                }
            } else {
                families.push((full, 0));
                total = counts.all(ids.len());
            }
        }
        StrategyIter {
            shared: std::sync::Arc::new(IterShared {
                ids: ids.to_vec(),
                counts,
                families,
            }),
            next: 0,
            end: total,
        }
    }

    /// Number of strategies left to yield.
    #[must_use]
    pub fn remaining(&self) -> u128 {
        self.end - self.next
    }

    /// Splits into two iterators: the first yields the next `index`
    /// strategies (clamped to what remains), the second the rest.
    #[must_use]
    pub fn split_at(self, index: u128) -> (Self, Self) {
        let mid = self.next + index.min(self.remaining());
        let left = StrategyIter {
            shared: self.shared.clone(),
            next: self.next,
            end: mid,
        };
        let right = StrategyIter {
            shared: self.shared,
            next: mid,
            end: self.end,
        };
        (left, right)
    }

    /// Splits into at most `n` near-equal contiguous chunks covering the
    /// remaining strategies in order. Empty chunks are omitted.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn chunks(self, n: usize) -> Vec<Self> {
        assert!(n > 0, "need at least one chunk");
        let total = self.remaining();
        let n_u = n as u128;
        let base = total / n_u;
        let extra = total % n_u;
        let mut out = Vec::new();
        let mut start = self.next;
        for i in 0..n_u {
            let len = base + u128::from(i < extra);
            if len == 0 {
                continue;
            }
            out.push(StrategyIter {
                shared: self.shared.clone(),
                next: start,
                end: start + len,
            });
            start += len;
        }
        debug_assert_eq!(start, self.end);
        out
    }

    /// Unranks the strategy at absolute index `k` (relative to the start of
    /// the whole enumeration, not to this chunk).
    fn unrank(&self, k: u128) -> Strategy {
        let shared = &*self.shared;
        // Last family whose first index is ≤ k.
        let fam = shared
            .families
            .partition_point(|&(_, first)| first <= k)
            .checked_sub(1)
            .expect("index within enumeration range");
        let (mask, first) = shared.families[fam];
        let node = Unrank {
            ids: &shared.ids,
            counts: &shared.counts,
        }
        .all(mask, k - first);
        Strategy::from_node(node).expect("unranking produces valid strategies")
    }
}

impl Iterator for StrategyIter {
    type Item = Strategy;

    fn next(&mut self) -> Option<Strategy> {
        if self.next >= self.end {
            return None;
        }
        let s = self.unrank(self.next);
        self.next += 1;
        Some(s)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining()).ok();
        (n.unwrap_or(usize::MAX), n)
    }
}

/// Inverse of the [`EnumCtx`] recursion: maps `(mask, index)` to the node
/// the streaming enumeration would produce at that position. The index
/// decomposition mirrors `stream_*` exactly — outer loops become quotient
/// digits, inner loops remainders — so iteration order is identical.
struct Unrank<'a> {
    ids: &'a [MsId],
    counts: &'a Counts,
}

impl Unrank<'_> {
    fn all(&self, mask: Mask, k: u128) -> Node {
        let n = mask.count_ones() as usize;
        let w_non_seq = self.counts.non_seq[n];
        if k < w_non_seq {
            self.non_seq(mask, k)
        } else {
            self.seq(mask, k - w_non_seq)
        }
    }

    fn non_seq(&self, mask: Mask, k: u128) -> Node {
        if mask.count_ones() == 1 {
            debug_assert_eq!(k, 0);
            Node::Leaf(self.ids[mask.trailing_zeros() as usize])
        } else {
            self.par(mask, k)
        }
    }

    fn non_par(&self, mask: Mask, k: u128) -> Node {
        if mask.count_ones() == 1 {
            debug_assert_eq!(k, 0);
            Node::Leaf(self.ids[mask.trailing_zeros() as usize])
        } else {
            self.seq(mask, k)
        }
    }

    fn seq(&self, mask: Mask, mut k: u128) -> Node {
        let n = mask.count_ones() as usize;
        debug_assert!(n >= 2);
        for first_mask in submasks(mask) {
            if first_mask == 0 || first_mask == mask {
                continue;
            }
            let rest_mask = mask & !first_mask;
            let b = first_mask.count_ones() as usize;
            let r = n - b;
            let tails = self.counts.non_seq[r] + self.counts.seq[r];
            let block = self.counts.non_seq[b] * tails;
            if k >= block {
                k -= block;
                continue;
            }
            let first = self.non_seq(first_mask, k / tails);
            let tail_idx = k % tails;
            return if tail_idx < self.counts.non_seq[r] {
                Node::Seq(vec![first, self.non_seq(rest_mask, tail_idx)])
            } else {
                let Node::Seq(tail) = self.seq(rest_mask, tail_idx - self.counts.non_seq[r]) else {
                    unreachable!("seq unranking yields Seq nodes only")
                };
                let mut children = Vec::with_capacity(tail.len() + 1);
                children.push(first);
                children.extend(tail);
                Node::Seq(children)
            };
        }
        unreachable!("seq index out of range")
    }

    fn par(&self, mask: Mask, mut k: u128) -> Node {
        let n = mask.count_ones() as usize;
        debug_assert!(n >= 2);
        let low: Mask = mask & mask.wrapping_neg();
        let others = mask ^ low;
        for extra in submasks(others) {
            if extra == others {
                continue;
            }
            let anchor_mask = low | extra;
            let rest_mask = others ^ extra;
            let b = anchor_mask.count_ones() as usize;
            let r = n - b;
            let tails = self.counts.non_par[r] + self.counts.par[r];
            let block = self.counts.non_par[b] * tails;
            if k >= block {
                k -= block;
                continue;
            }
            let anchor = self.non_par(anchor_mask, k / tails);
            let tail_idx = k % tails;
            let mut children = if tail_idx < self.counts.non_par[r] {
                vec![anchor, self.non_par(rest_mask, tail_idx)]
            } else {
                let Node::Par(tail) = self.par(rest_mask, tail_idx - self.counts.non_par[r]) else {
                    unreachable!("par unranking yields Par nodes only")
                };
                let mut children = Vec::with_capacity(tail.len() + 1);
                children.push(anchor);
                children.extend(tail);
                children
            };
            children.sort();
            return Node::Par(children);
        }
        unreachable!("par index out of range")
    }
}

#[derive(Clone, Copy)]
pub(crate) struct EnumCtx<'a> {
    ids: &'a [MsId],
}

impl<'a> EnumCtx<'a> {
    pub(crate) fn new(ids: &'a [MsId]) -> Self {
        assert!(ids.len() <= 64, "at most 64 microservices supported");
        let mut sorted: Vec<MsId> = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "microservice ids must be distinct");
        EnumCtx { ids }
    }

    /// All trees over `mask`: non-seq-rooted plus seq-rooted.
    pub(crate) fn stream_all(&self, mask: Mask, f: &mut dyn FnMut(Node)) {
        self.stream_non_seq(mask, f);
        self.stream_seq(mask, f);
    }

    /// Trees whose root is not `Seq` (a leaf or a `Par`).
    pub(crate) fn stream_non_seq(&self, mask: Mask, f: &mut dyn FnMut(Node)) {
        if mask.count_ones() == 1 {
            let idx = mask.trailing_zeros() as usize;
            f(Node::Leaf(self.ids[idx]));
        } else {
            self.stream_par(mask, f);
        }
    }

    /// Trees whose root is not `Par` (a leaf or a `Seq`).
    fn stream_non_par(&self, mask: Mask, f: &mut dyn FnMut(Node)) {
        if mask.count_ones() == 1 {
            let idx = mask.trailing_zeros() as usize;
            f(Node::Leaf(self.ids[idx]));
        } else {
            self.stream_seq(mask, f);
        }
    }

    /// `Seq`-rooted trees over `mask` (requires ≥ 2 leaves).
    ///
    /// Right-spine recursion: choose the first child's leaf block `B`, then
    /// emit `Seq[first, rest…]` for `rest` either a single non-seq tree or
    /// the children of a seq-rooted tree over the remainder.
    fn stream_seq(&self, mask: Mask, f: &mut dyn FnMut(Node)) {
        if mask.count_ones() < 2 {
            return;
        }
        for first_mask in submasks(mask) {
            if first_mask == 0 || first_mask == mask {
                continue;
            }
            let rest_mask = mask & !first_mask;
            self.stream_non_seq(first_mask, &mut |first| {
                // rest as a single non-seq child: Seq of exactly 2 children
                self.stream_non_seq(rest_mask, &mut |rest| {
                    f(Node::Seq(vec![first.clone(), rest]));
                });
                // rest as a longer sequential tail: splice its children
                self.stream_seq(rest_mask, &mut |rest_seq| {
                    let Node::Seq(tail) = rest_seq else {
                        unreachable!("stream_seq yields Seq nodes only")
                    };
                    let mut children = Vec::with_capacity(tail.len() + 1);
                    children.push(first.clone());
                    children.extend(tail);
                    f(Node::Seq(children));
                });
            });
        }
    }

    /// `Par`-rooted trees over `mask` (requires ≥ 2 leaves).
    ///
    /// The child block containing the lowest-indexed leaf is the anchor —
    /// fixing it exploits `*`'s commutativity so each unordered set of
    /// children is produced exactly once.
    pub(crate) fn stream_par(&self, mask: Mask, f: &mut dyn FnMut(Node)) {
        if mask.count_ones() < 2 {
            return;
        }
        let low: Mask = mask & mask.wrapping_neg();
        let others = mask ^ low;
        for extra in submasks(others) {
            if extra == others {
                continue; // anchor block must leave at least one leaf over
            }
            let anchor_mask = low | extra;
            let rest_mask = others ^ extra;
            self.stream_non_par(anchor_mask, &mut |anchor| {
                // remainder is a single non-par child: Par of 2 children
                self.stream_non_par(rest_mask, &mut |rest| {
                    let mut children = vec![anchor.clone(), rest];
                    children.sort();
                    f(Node::Par(children));
                });
                // remainder is itself a Par: splice its children in
                self.stream_par(rest_mask, &mut |rest_par| {
                    let Node::Par(tail) = rest_par else {
                        unreachable!("stream_par yields Par nodes only")
                    };
                    let mut children = Vec::with_capacity(tail.len() + 1);
                    children.push(anchor.clone());
                    children.extend(tail);
                    children.sort();
                    f(Node::Par(children));
                });
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Counting recurrences
// ---------------------------------------------------------------------------

/// Size-indexed counts of the enumeration classes above. All counts are
/// exact in `u128` for `m ≤` [`MAX_COUNT_M`].
#[derive(Debug, Clone)]
pub(crate) struct Counts {
    /// `non_seq[n]`: trees over `n` labeled leaves whose root is not `Seq`.
    pub(crate) non_seq: Vec<u128>,
    /// `non_par[n]`: trees whose root is not `Par`.
    pub(crate) non_par: Vec<u128>,
    /// `seq[n]`: `Seq`-rooted trees.
    pub(crate) seq: Vec<u128>,
    /// `par[n]`: `Par`-rooted trees.
    pub(crate) par: Vec<u128>,
    /// `binom[n][k]`.
    pub(crate) binom: Vec<Vec<u128>>,
}

impl Counts {
    pub(crate) fn up_to(m: usize) -> Self {
        assert!(
            m <= MAX_COUNT_M,
            "strategy counts overflow u128 beyond M = {MAX_COUNT_M}"
        );
        let mut binom = vec![vec![0u128; m + 1]; m + 1];
        for row in binom.iter_mut() {
            row[0] = 1;
        }
        for n in 1..=m {
            for k in 1..=n {
                let above = binom[n - 1][k - 1];
                let left = if k < n { binom[n - 1][k] } else { 0 };
                binom[n][k] = above.checked_add(left).expect("binomial overflow");
            }
        }

        let mut non_seq = vec![0u128; m + 1];
        let mut non_par = vec![0u128; m + 1];
        let mut seq = vec![0u128; m + 1];
        let mut par = vec![0u128; m + 1];
        // forest[n]: unordered partitions of n labeled leaves into ≥ 1
        // blocks, each block carrying a non-par tree (the children multiset
        // of a Par, allowing the degenerate single-block case).
        let mut forest = vec![0u128; m + 1];
        if m >= 1 {
            non_seq[1] = 1;
            non_par[1] = 1;
            forest[0] = 1;
        }
        for n in 1..=m {
            if n >= 2 {
                // Seq: first block of size j carrying a non-seq tree,
                // remainder either one more non-seq block or a longer tail.
                let mut total: u128 = 0;
                for j in 1..n {
                    let tails = non_seq[n - j]
                        .checked_add(seq[n - j])
                        .expect("count overflow");
                    let term = binom[n][j]
                        .checked_mul(non_seq[j])
                        .and_then(|v| v.checked_mul(tails))
                        .expect("count overflow");
                    total = total.checked_add(term).expect("count overflow");
                }
                seq[n] = total;
                non_par[n] = seq[n];
            }
            // forest[n]: the block containing the lowest leaf has size j.
            let mut total: u128 = 0;
            for j in 1..=n {
                let term = binom[n - 1][j - 1]
                    .checked_mul(non_par[j])
                    .and_then(|v| v.checked_mul(forest[n - j]))
                    .expect("count overflow");
                total = total.checked_add(term).expect("count overflow");
            }
            forest[n] = total;
            if n >= 2 {
                par[n] = forest[n] - non_par[n];
                non_seq[n] = par[n];
            }
        }
        Counts {
            non_seq,
            non_par,
            seq,
            par,
            binom,
        }
    }

    pub(crate) fn all(&self, n: usize) -> u128 {
        self.non_seq[n] + self.seq[n]
    }
}

/// Number of semantically distinct strategies using all of `m`
/// microservices — the corrected `F(M)` (see the module docs for how this
/// relates to the paper's Table I; [`paper::count_table1`] reproduces the
/// published numbers).
///
/// # Panics
///
/// Panics if `m == 0` or `m >` [`MAX_COUNT_M`] (the count would overflow
/// `u128`).
///
/// # Examples
///
/// ```
/// use qce_strategy::enumerate::count_full;
///
/// assert_eq!(count_full(2), 3);
/// assert_eq!(count_full(5), 2791);
/// assert_eq!(count_full(6), 51303);
/// ```
#[must_use]
pub fn count_full(m: usize) -> u128 {
    assert!(m >= 1, "need at least one microservice");
    Counts::up_to(m).all(m)
}

/// Number of semantically distinct strategies using between 1 and `m` of
/// the microservices — the corrected `F'(M)` (the paper's Table I values
/// are reproduced by [`paper::count_table1_subsets`]).
///
/// # Panics
///
/// Panics if `m == 0` or `m >` [`MAX_COUNT_M`].
///
/// # Examples
///
/// ```
/// use qce_strategy::enumerate::count_with_subsets;
///
/// assert_eq!(count_with_subsets(2), 5);
/// assert_eq!(count_with_subsets(3), 31);
/// assert_eq!(count_with_subsets(6), 71405);
/// ```
#[must_use]
pub fn count_with_subsets(m: usize) -> u128 {
    assert!(m >= 1, "need at least one microservice");
    let counts = Counts::up_to(m);
    (1..=m)
        .map(|j| {
            counts.binom[m][j]
                .checked_mul(counts.all(j))
                .expect("count overflow")
        })
        .try_fold(0u128, u128::checked_add)
        .expect("count overflow")
}

// ---------------------------------------------------------------------------
// Uniform sampling
// ---------------------------------------------------------------------------

/// Draws strategies uniformly at random from `F(M)` over a fixed id set.
///
/// The sampler inverts the counting recurrence, so every one of the
/// `F(M)` distinct strategies is equally likely. Used by the paper's
/// estimation-correctness experiment, which "randomly select\[s\] 100
/// execution strategies".
///
/// # Examples
///
/// ```
/// use qce_strategy::enumerate::StrategySampler;
/// use qce_strategy::MsId;
/// use rand::SeedableRng;
///
/// let ids: Vec<MsId> = (0..5).map(MsId).collect();
/// let sampler = StrategySampler::new(&ids);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let s = sampler.sample(&mut rng);
/// assert_eq!(s.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct StrategySampler {
    ids: Vec<MsId>,
    counts: Counts,
}

impl StrategySampler {
    /// Creates a sampler over the given distinct microservice ids.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty, contains duplicates, or has more than
    /// [`MAX_COUNT_M`] entries.
    #[must_use]
    pub fn new(ids: &[MsId]) -> Self {
        assert!(!ids.is_empty(), "need at least one microservice");
        let mut sorted: Vec<MsId> = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "microservice ids must be distinct");
        StrategySampler {
            ids: ids.to_vec(),
            counts: Counts::up_to(ids.len()),
        }
    }

    /// Total number of strategies the sampler draws from (`F(M)`).
    #[must_use]
    pub fn space_size(&self) -> u128 {
        self.counts.all(self.ids.len())
    }

    /// Draws one strategy uniformly at random.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Strategy {
        let mut pool: Vec<MsId> = self.ids.clone();
        let node = self.sample_all(&mut pool, rng);
        debug_assert!(pool.is_empty());
        Strategy::from_node(node).expect("sampler produces valid strategies")
    }

    /// Samples any tree consuming all ids in `pool`.
    fn sample_all<R: rand::Rng + ?Sized>(&self, pool: &mut Vec<MsId>, rng: &mut R) -> Node {
        let n = pool.len();
        let w_non_seq = self.counts.non_seq[n];
        let total = w_non_seq + self.counts.seq[n];
        if rng.gen_range(0..total) < w_non_seq {
            self.sample_non_seq(pool, rng)
        } else {
            self.sample_seq(pool, rng)
        }
    }

    fn sample_non_seq<R: rand::Rng + ?Sized>(&self, pool: &mut Vec<MsId>, rng: &mut R) -> Node {
        if pool.len() == 1 {
            Node::Leaf(pool.pop().expect("pool non-empty"))
        } else {
            self.sample_par(pool, rng)
        }
    }

    fn sample_non_par<R: rand::Rng + ?Sized>(&self, pool: &mut Vec<MsId>, rng: &mut R) -> Node {
        if pool.len() == 1 {
            Node::Leaf(pool.pop().expect("pool non-empty"))
        } else {
            self.sample_seq(pool, rng)
        }
    }

    fn sample_seq<R: rand::Rng + ?Sized>(&self, pool: &mut Vec<MsId>, rng: &mut R) -> Node {
        let n = pool.len();
        debug_assert!(n >= 2);
        // Choose the size j of the first block, weighted by how many trees
        // have a first block of that size.
        let weight = |j: usize| {
            self.counts.binom[n][j]
                * self.counts.non_seq[j]
                * (self.counts.non_seq[n - j] + self.counts.seq[n - j])
        };
        let total: u128 = (1..n).map(weight).sum();
        let mut pick = rng.gen_range(0..total);
        let mut size = 1;
        for j in 1..n {
            let w = weight(j);
            if pick < w {
                size = j;
                break;
            }
            pick -= w;
        }
        let mut block = draw_subset(pool, size, rng);
        let first = self.sample_non_seq(&mut block, rng);
        // Tail: one more non-seq child, or a longer seq-rooted tail.
        let rest = pool.len();
        let w_single = self.counts.non_seq[rest];
        let w_tail = self.counts.seq[rest];
        let mut children = vec![first];
        if rng.gen_range(0..w_single + w_tail) < w_single {
            children.push(self.sample_non_seq(pool, rng));
        } else {
            match self.sample_seq(pool, rng) {
                Node::Seq(tail) => children.extend(tail),
                other => children.push(other),
            }
        }
        Node::Seq(children)
    }

    fn sample_par<R: rand::Rng + ?Sized>(&self, pool: &mut Vec<MsId>, rng: &mut R) -> Node {
        let n = pool.len();
        debug_assert!(n >= 2);
        // The anchor block contains the smallest id in the pool; choose its
        // size j weighted by the number of trees with that anchor size.
        let weight = |j: usize| {
            let rest = n - j;
            self.counts.binom[n - 1][j - 1]
                * self.counts.non_par[j]
                * (self.counts.non_par[rest] + self.counts.par[rest])
        };
        let total: u128 = (1..n).map(weight).sum();
        let mut pick = rng.gen_range(0..total);
        let mut size = 1;
        for j in 1..n {
            let w = weight(j);
            if pick < w {
                size = j;
                break;
            }
            pick -= w;
        }
        // Remove the smallest id, then draw j-1 companions for the anchor.
        let min_pos = pool
            .iter()
            .enumerate()
            .min_by_key(|(_, id)| **id)
            .map(|(i, _)| i)
            .expect("pool non-empty");
        let lowest = pool.swap_remove(min_pos);
        let mut block = draw_subset(pool, size - 1, rng);
        block.push(lowest);
        let anchor = self.sample_non_par(&mut block, rng);
        let rest = pool.len();
        let w_single = self.counts.non_par[rest];
        let w_more = self.counts.par[rest];
        let mut children = vec![anchor];
        if rng.gen_range(0..w_single + w_more) < w_single {
            children.push(self.sample_non_par(pool, rng));
        } else {
            match self.sample_par(pool, rng) {
                Node::Par(tail) => children.extend(tail),
                other => children.push(other),
            }
        }
        children.sort();
        Node::Par(children)
    }
}

/// Removes and returns `count` uniformly random elements from `pool`.
fn draw_subset<R: rand::Rng + ?Sized>(
    pool: &mut Vec<MsId>,
    count: usize,
    rng: &mut R,
) -> Vec<MsId> {
    debug_assert!(count <= pool.len());
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let i = rng.gen_range(0..pool.len());
        out.push(pool.swap_remove(i));
    }
    out
}

/// Reconstruction of the counting procedure behind the paper's Table I.
///
/// The published `F(M)` numbers (3, 19, 207, 3211, 64743) count strategies
/// under a duplication removal that sorts only the *single-microservice*
/// operands of `*`, leaving parenthesized operands in encounter order —
/// so `(a-b)*(c-d)` and `(c-d)*(a-b)` are counted twice even though
/// Observation 1 makes them the same strategy. The recurrences below model
/// exactly that: a parallel node owns an unordered set of leaf children
/// plus an **ordered** sequence of sequential children.
///
/// They reproduce Table I exactly for `M ≤ 5` and come within 0.56% at
/// `M = 6` (64 383 vs the published 64 743; the residual is attributable to
/// the paper's incompletely specified dedup procedure). Use
/// [`count_full`] for the semantically correct counts.
pub mod paper {
    use super::MAX_COUNT_M;

    /// `F(M)` as counted by the paper's procedure.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `m >` [`MAX_COUNT_M`].
    ///
    /// # Examples
    ///
    /// ```
    /// use qce_strategy::enumerate::paper::count_table1;
    ///
    /// assert_eq!(count_table1(4), 207);  // Table I
    /// assert_eq!(count_table1(5), 3211); // Table I
    /// ```
    #[must_use]
    pub fn count_table1(m: usize) -> u128 {
        assert!(m >= 1, "need at least one microservice");
        let t = Tables::up_to(m);
        t.all(m)
    }

    /// `F'(M)` as counted by the paper's procedure.
    ///
    /// ```
    /// use qce_strategy::enumerate::paper::count_table1_subsets;
    ///
    /// assert_eq!(count_table1_subsets(4), 305);  // Table I
    /// assert_eq!(count_table1_subsets(5), 4471); // Table I
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `m >` [`MAX_COUNT_M`].
    #[must_use]
    pub fn count_table1_subsets(m: usize) -> u128 {
        assert!(m >= 1, "need at least one microservice");
        let t = Tables::up_to(m);
        (1..=m)
            .map(|j| t.binom[m][j].checked_mul(t.all(j)).expect("count overflow"))
            .try_fold(0u128, u128::checked_add)
            .expect("count overflow")
    }

    struct Tables {
        /// `non_seq[n]`: leaf (n = 1) or paper-style Par. Kept for clarity
        /// even though `all` only reads `seq` and `par`.
        #[allow(dead_code)]
        non_seq: Vec<u128>,
        /// `seq[n]`: Seq-rooted trees (identical to the semantic count at
        /// fixed child classes, but over paper-style children).
        seq: Vec<u128>,
        /// `par[n]`: paper-style Par-rooted trees.
        par: Vec<u128>,
        binom: Vec<Vec<u128>>,
    }

    impl Tables {
        #[allow(clippy::needless_range_loop)]
        fn up_to(m: usize) -> Self {
            assert!(
                m <= MAX_COUNT_M,
                "strategy counts overflow u128 beyond M = {MAX_COUNT_M}"
            );
            let mut binom = vec![vec![0u128; m + 1]; m + 1];
            for row in binom.iter_mut() {
                row[0] = 1;
            }
            for n in 1..=m {
                for k in 1..=n {
                    let left = if k < n { binom[n - 1][k] } else { 0 };
                    binom[n][k] = binom[n - 1][k - 1].checked_add(left).expect("overflow");
                }
            }
            let mut non_seq = vec![0u128; m + 1];
            let mut seq = vec![0u128; m + 1];
            let mut par = vec![0u128; m + 1];
            // ordered[n]: ordered sequences of ≥ 1 sequential blocks (each of
            // size ≥ 2, carrying a Seq-rooted tree) covering n leaves.
            let mut ordered = vec![0u128; m + 1];
            if m >= 1 {
                non_seq[1] = 1;
            }
            for n in 1..=m {
                if n >= 2 {
                    let mut s: u128 = 0;
                    for j in 1..n {
                        let tails = non_seq[n - j] + seq[n - j];
                        s += binom[n][j] * non_seq[j] * tails;
                    }
                    seq[n] = s;

                    let mut o: u128 = 0;
                    for j in 2..=n {
                        let rest = n - j;
                        let tail = if rest == 0 { 1 } else { ordered[rest] };
                        o += binom[n][j] * seq[j] * tail;
                    }
                    ordered[n] = o;

                    // Par: t unordered leaf children + an ordered sequence of
                    // k sequential children, t + k ≥ 2.
                    let mut p: u128 = 1; // t = n: all children are leaves
                    for t in 1..=n.saturating_sub(2) {
                        p += binom[n][t] * ordered[n - t];
                    }
                    // t = 0 requires k ≥ 2: exclude the single-block case.
                    p += ordered[n] - seq[n];
                    par[n] = p;
                    non_seq[n] = par[n];
                }
            }
            Tables {
                non_seq,
                seq,
                par,
                binom,
            }
        }

        fn all(&self, n: usize) -> u128 {
            if n == 1 {
                1
            } else {
                self.seq[n] + self.par[n]
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn table1_published_full_counts() {
            assert_eq!(count_table1(1), 1);
            assert_eq!(count_table1(2), 3);
            assert_eq!(count_table1(3), 19);
            assert_eq!(count_table1(4), 207);
            assert_eq!(count_table1(5), 3211);
            // Published value is 64 743; the reconstructed dedup yields
            // 64 383 (0.56% below) — see the module docs.
            assert_eq!(count_table1(6), 64383);
        }

        #[test]
        fn table1_published_subset_counts() {
            assert_eq!(count_table1_subsets(1), 1);
            assert_eq!(count_table1_subsets(2), 5);
            assert_eq!(count_table1_subsets(3), 31);
            assert_eq!(count_table1_subsets(4), 305);
            assert_eq!(count_table1_subsets(5), 4471);
            // Published value is 87 545; reconstruction gives 87 185.
            assert_eq!(count_table1_subsets(6), 87185);
        }

        #[test]
        fn paper_counts_never_below_semantic_counts() {
            for m in 1..=10 {
                assert!(
                    count_table1(m) >= super::super::count_full(m),
                    "paper dedup keeps duplicates, so its count can't be smaller (m={m})"
                );
            }
        }
    }
}

/// Builds the fail-over strategy `ids[0] - ids[1] - …` (MOLE's sequential
/// pattern) over the given order.
///
/// # Errors
///
/// Returns [`BuildError::TooFewOperands`] for an empty slice (a single id
/// yields the leaf strategy) or [`BuildError::DuplicateMicroservice`] on
/// duplicates.
///
/// ```
/// use qce_strategy::enumerate::failover;
/// use qce_strategy::MsId;
///
/// let s = failover(&[MsId(2), MsId(0), MsId(1)])?;
/// assert_eq!(s.to_string(), "c-a-b");
/// # Ok::<(), qce_strategy::BuildError>(())
/// ```
pub fn failover(ids: &[MsId]) -> Result<Strategy, BuildError> {
    match ids {
        [] => Err(BuildError::TooFewOperands { got: 0 }),
        [only] => Ok(Strategy::leaf(*only)),
        _ => Strategy::seq(ids.iter().copied().map(Strategy::leaf)),
    }
}

/// Builds the speculative-parallel strategy `ids[0] * ids[1] * …` (MOLE's
/// parallel pattern).
///
/// # Errors
///
/// Same conditions as [`failover`].
///
/// ```
/// use qce_strategy::enumerate::speculative_parallel;
/// use qce_strategy::MsId;
///
/// let s = speculative_parallel(&[MsId(0), MsId(1), MsId(2)])?;
/// assert_eq!(s.to_string(), "a*b*c");
/// # Ok::<(), qce_strategy::BuildError>(())
/// ```
pub fn speculative_parallel(ids: &[MsId]) -> Result<Strategy, BuildError> {
    match ids {
        [] => Err(BuildError::TooFewOperands { got: 0 }),
        [only] => Ok(Strategy::leaf(*only)),
        _ => Strategy::par(ids.iter().copied().map(Strategy::leaf)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashSet;

    fn ids(m: usize) -> Vec<MsId> {
        (0..m).map(MsId).collect()
    }

    #[test]
    fn semantic_full_counts_by_enumeration() {
        // Semantically distinct counts; see module docs for the relation to
        // the paper's Table I. Verified independently by brute-force
        // enumeration of all binary expression trees.
        let expected = [(2usize, 3usize), (3, 19), (4, 195), (5, 2791)];
        for (m, count) in expected {
            assert_eq!(enumerate_full(&ids(m)).len(), count, "F({m})");
        }
    }

    #[test]
    fn semantic_subset_counts_by_enumeration() {
        let expected = [(2usize, 5usize), (3, 31), (4, 293), (5, 3991)];
        for (m, count) in expected {
            assert_eq!(enumerate_with_subsets(&ids(m)).len(), count, "F'({m})");
        }
    }

    #[test]
    fn semantic_counting_recurrence() {
        assert_eq!(count_full(1), 1);
        assert_eq!(count_full(2), 3);
        assert_eq!(count_full(3), 19);
        assert_eq!(count_full(4), 195);
        assert_eq!(count_full(5), 2791);
        assert_eq!(count_full(6), 51303);
        assert_eq!(count_with_subsets(1), 1);
        assert_eq!(count_with_subsets(2), 5);
        assert_eq!(count_with_subsets(3), 31);
        assert_eq!(count_with_subsets(4), 293);
        assert_eq!(count_with_subsets(5), 3991);
        assert_eq!(count_with_subsets(6), 71405);
    }

    #[test]
    fn counts_strictly_grow() {
        let mut prev = 0u128;
        for m in 1..=12 {
            let c = count_full(m);
            assert!(c > prev, "F({m}) should exceed F({})", m - 1);
            prev = c;
        }
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        for m in 1..=5 {
            let all = enumerate_full(&ids(m));
            let unique: HashSet<_> = all.iter().cloned().collect();
            assert_eq!(unique.len(), all.len(), "duplicates at M={m}");
        }
    }

    #[test]
    fn enumerated_strategies_use_all_ids() {
        for m in 1..=5 {
            for s in enumerate_full(&ids(m)) {
                let mut leaves = s.leaves();
                leaves.sort_unstable();
                assert_eq!(leaves, ids(m), "strategy {s} misses ids");
            }
        }
    }

    #[test]
    fn enumeration_round_trips_through_text() {
        for s in enumerate_full(&ids(4)) {
            let reparsed = Strategy::parse(&s.to_string()).unwrap();
            assert_eq!(s, reparsed);
        }
    }

    #[test]
    fn m3_strategies_match_hand_enumeration() {
        // The 19 strategies over {a, b, c}: 6 pure fail-over orderings,
        // 1 pure parallel, 6 of shape x-(y*z) / (y*z)-x, and 6 of shape
        // (x-y)*z with ordered (x,y).
        let mut rendered: Vec<String> = enumerate_full(&ids(3))
            .iter()
            .map(Strategy::to_string)
            .collect();
        rendered.sort();
        let mut expected = vec![
            "a-b-c", "a-c-b", "b-a-c", "b-c-a", "c-a-b", "c-b-a", // fail-over
            "a*b*c", // parallel
            "a-b*c", "b-a*c", "c-a*b", "a*b-c", "a*c-b",
            "b*c-a", // seq of 2 with one par block
            "(a-b)*c", "(b-a)*c", "(a-c)*b", "(c-a)*b", "(b-c)*a",
            "(c-b)*a", // par with seq block
        ];
        // Render expectations through the parser so Par-child ordering is canonical.
        let mut expected: Vec<String> = expected
            .drain(..)
            .map(|t| Strategy::parse(t).unwrap().to_string())
            .collect();
        expected.sort();
        expected.dedup();
        assert_eq!(expected.len(), 19);
        assert_eq!(rendered, expected);
    }

    #[test]
    fn enumeration_with_arbitrary_ids() {
        let custom = [MsId(7), MsId(3), MsId(11)];
        let all = enumerate_full(&custom);
        assert_eq!(all.len(), 19);
        for s in &all {
            let mut leaves = s.leaves();
            leaves.sort_unstable();
            assert_eq!(leaves, vec![MsId(3), MsId(7), MsId(11)]);
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn enumeration_rejects_duplicate_ids() {
        let _ = enumerate_full(&[MsId(0), MsId(0)]);
    }

    #[test]
    fn streaming_matches_collected() {
        let mut streamed = 0usize;
        for_each_full(&ids(5), |_| streamed += 1);
        assert_eq!(streamed, 2791);
        let mut streamed = 0usize;
        for_each_with_subsets(&ids(4), |_| streamed += 1);
        assert_eq!(streamed, 293);
    }

    #[test]
    fn iterator_matches_streaming_order_exactly() {
        for m in 1..=5 {
            let mut streamed = Vec::new();
            for_each_full(&ids(m), |s| streamed.push(s));
            let unranked: Vec<Strategy> = StrategyIter::full(&ids(m)).collect();
            assert_eq!(unranked, streamed, "full order diverges at M={m}");
        }
        for m in 1..=4 {
            let mut streamed = Vec::new();
            for_each_with_subsets(&ids(m), |s| streamed.push(s));
            let unranked: Vec<Strategy> = StrategyIter::with_subsets(&ids(m)).collect();
            assert_eq!(unranked, streamed, "subset order diverges at M={m}");
        }
    }

    #[test]
    fn iterator_remaining_matches_counts() {
        for m in 1..=6 {
            assert_eq!(StrategyIter::full(&ids(m)).remaining(), count_full(m));
            assert_eq!(
                StrategyIter::with_subsets(&ids(m)).remaining(),
                count_with_subsets(m)
            );
        }
        assert_eq!(StrategyIter::full(&[]).remaining(), 0);
    }

    #[test]
    fn split_at_partitions_without_overlap() {
        let all: Vec<Strategy> = StrategyIter::full(&ids(4)).collect();
        for cut in [0u128, 1, 97, 195, 400] {
            let (left, right) = StrategyIter::full(&ids(4)).split_at(cut);
            let l: Vec<Strategy> = left.collect();
            let r: Vec<Strategy> = right.collect();
            assert_eq!(l.len() as u128, cut.min(195));
            let mut joined = l;
            joined.extend(r);
            assert_eq!(joined, all, "split at {cut} loses or reorders");
        }
    }

    #[test]
    fn chunks_cover_the_space_in_order() {
        let all: Vec<Strategy> = StrategyIter::with_subsets(&ids(4)).collect();
        for n in [1usize, 2, 3, 7, 64, 1000] {
            let chunks = StrategyIter::with_subsets(&ids(4)).chunks(n);
            assert!(chunks.len() <= n);
            let joined: Vec<Strategy> = chunks.into_iter().flatten().collect();
            assert_eq!(joined, all, "chunks({n}) loses or reorders");
        }
    }

    #[test]
    fn iterator_size_hint_is_exact() {
        let mut iter = StrategyIter::full(&ids(3));
        assert_eq!(iter.size_hint(), (19, Some(19)));
        iter.next();
        assert_eq!(iter.size_hint(), (18, Some(18)));
    }

    #[test]
    fn empty_id_list_enumerates_nothing() {
        let mut visits = 0;
        for_each_full(&[], |_| visits += 1);
        for_each_with_subsets(&[], |_| visits += 1);
        assert_eq!(visits, 0);
    }

    #[test]
    fn sampler_space_size_matches_counts() {
        for m in 1..=8 {
            let sampler = StrategySampler::new(&ids(m));
            assert_eq!(sampler.space_size(), count_full(m));
        }
    }

    #[test]
    fn sampler_produces_valid_full_strategies() {
        let sampler = StrategySampler::new(&ids(6));
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            let s = sampler.sample(&mut rng);
            let mut leaves = s.leaves();
            leaves.sort_unstable();
            assert_eq!(leaves, ids(6));
        }
    }

    #[test]
    fn sampler_is_close_to_uniform_on_m2() {
        // F(2) = {a-b, b-a, a*b}; with 3000 draws each should get ~1000.
        let sampler = StrategySampler::new(&ids(2));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..3000 {
            *counts
                .entry(sampler.sample(&mut rng).to_string())
                .or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 3);
        for (_, c) in counts {
            assert!((800..1200).contains(&c), "non-uniform draw count {c}");
        }
    }

    #[test]
    fn sampler_covers_all_m3_strategies() {
        let sampler = StrategySampler::new(&ids(3));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            seen.insert(sampler.sample(&mut rng));
        }
        assert_eq!(seen.len(), 19, "sampler should reach every F(3) strategy");
    }

    #[test]
    fn default_pattern_builders() {
        assert!(failover(&[]).is_err());
        assert_eq!(failover(&[MsId(4)]).unwrap().to_string(), "e");
        assert_eq!(speculative_parallel(&[MsId(4)]).unwrap().to_string(), "e");
        let fo = failover(&ids(3)).unwrap();
        assert!(fo.is_failover());
        let sp = speculative_parallel(&ids(3)).unwrap();
        assert!(sp.is_parallel());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn count_beyond_limit_panics() {
        let _ = count_full(MAX_COUNT_M + 1);
    }
}

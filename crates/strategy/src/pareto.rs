//! Pareto-optimal strategy selection (paper Section IV.C).
//!
//! Among all candidate strategies `S`, a strategy is *Pareto optimal* iff no
//! other strategy improves one QoS attribute without worsening another. The
//! utility index then ranks the Pareto-optimal candidates against the QoS
//! requirements.

use crate::enumerate::StrategyIter;
use crate::error::EstimateError;
use crate::estimate::Estimator;
use crate::expr::Strategy;
use crate::qos::{EnvQos, MsId, Qos};
use crate::utility::dominates;

/// Returns the indices of the Pareto-optimal entries of `candidates`
/// (QoS triples with cost/latency lower-is-better, reliability
/// higher-is-better), in ascending index order.
///
/// Duplicated QoS values are all kept: a strategy is only excluded when some
/// candidate is *strictly* better on at least one attribute and no worse on
/// the rest.
///
/// # Examples
///
/// ```
/// use qce_strategy::pareto::pareto_indices;
/// use qce_strategy::Qos;
///
/// let candidates = vec![
///     Qos::new(50.0, 50.0, 0.9)?,   // optimal
///     Qos::new(60.0, 50.0, 0.9)?,   // dominated by #0
///     Qos::new(40.0, 70.0, 0.9)?,   // optimal (cheaper, slower)
///     Qos::new(50.0, 50.0, 0.95)?,  // dominates #0
/// ];
/// assert_eq!(pareto_indices(&candidates), vec![2, 3]);
/// # Ok::<(), qce_strategy::QosError>(())
/// ```
#[must_use]
pub fn pareto_indices(candidates: &[Qos]) -> Vec<usize> {
    (0..candidates.len())
        .filter(|&i| {
            !candidates
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(other, &candidates[i]))
        })
        .collect()
}

/// Filters `items` down to the Pareto-optimal ones according to the QoS
/// value extracted by `qos_of`.
///
/// This is the generic companion of [`pareto_indices`] for collections that
/// pair strategies with their estimates.
///
/// # Examples
///
/// ```
/// use qce_strategy::pareto::pareto_front;
/// use qce_strategy::{Qos, Strategy};
///
/// let items = vec![
///     (Strategy::parse("a-b")?, Qos::new(90.0, 90.0, 0.84)?),
///     (Strategy::parse("a*b")?, Qos::new(150.0, 70.0, 0.84)?),
///     (Strategy::parse("b-a")?, Qos::new(160.0, 120.0, 0.84)?), // dominated
/// ];
/// let front = pareto_front(items, |(_, q)| *q);
/// assert_eq!(front.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn pareto_front<T>(items: Vec<T>, qos_of: impl Fn(&T) -> Qos) -> Vec<T> {
    let qos: Vec<Qos> = items.iter().map(&qos_of).collect();
    let keep = pareto_indices(&qos);
    let mut keep_iter = keep.into_iter().peekable();
    items
        .into_iter()
        .enumerate()
        .filter_map(|(i, item)| {
            if keep_iter.peek() == Some(&i) {
                keep_iter.next();
                Some(item)
            } else {
                None
            }
        })
        .collect()
}

/// Streams every strategy over **all** of `ids` through `estimator` and
/// returns the Pareto-optimal `(strategy, QoS)` pairs.
///
/// Built on the lazy [`StrategyIter`] enumerator, so the full `F(M)` space
/// is never materialized — only the surviving front is collected. Uses
/// [`Estimator::estimate_uncached`] to avoid flooding a memoizing
/// estimator's cache with `F(M)` one-shot entries.
///
/// # Errors
///
/// Returns the estimator's error (e.g.
/// [`EstimateError::MissingMicroservice`]) if `env` does not cover `ids`.
///
/// # Panics
///
/// Panics if `ids` contains duplicates or more than
/// [`MAX_COUNT_M`](crate::enumerate::MAX_COUNT_M) entries.
///
/// # Examples
///
/// ```
/// use qce_strategy::pareto::pareto_strategies;
/// use qce_strategy::{Algorithm1, EnvQos};
///
/// let env = EnvQos::from_triples(&[(50.0, 50.0, 0.6), (100.0, 100.0, 0.6)])?;
/// let front = pareto_strategies(&env, &env.ids(), &Algorithm1::new())?;
/// // F(2) = 3 candidates (a-b, b-a, a*b); none dominates all others.
/// assert!(!front.is_empty() && front.len() <= 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn pareto_strategies(
    env: &EnvQos,
    ids: &[MsId],
    estimator: &dyn Estimator,
) -> Result<Vec<(Strategy, Qos)>, EstimateError> {
    let mut items = Vec::new();
    for strategy in StrategyIter::full(ids) {
        let qos = estimator.estimate_uncached(&strategy, env)?;
        items.push((strategy, qos));
    }
    Ok(pareto_front(items, |(_, qos)| *qos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{estimate, Algorithm1};

    fn q(c: f64, l: f64, r: f64) -> Qos {
        Qos::new(c, l, r).unwrap()
    }

    #[test]
    fn empty_input() {
        assert!(pareto_indices(&[]).is_empty());
    }

    #[test]
    fn single_candidate_is_optimal() {
        assert_eq!(pareto_indices(&[q(1.0, 1.0, 0.5)]), vec![0]);
    }

    #[test]
    fn identical_candidates_all_kept() {
        let c = vec![q(1.0, 1.0, 0.5); 3];
        assert_eq!(pareto_indices(&c), vec![0, 1, 2]);
    }

    #[test]
    fn strict_dominance_removes() {
        let c = vec![q(1.0, 1.0, 0.9), q(2.0, 2.0, 0.8)];
        assert_eq!(pareto_indices(&c), vec![0]);
    }

    #[test]
    fn incomparable_candidates_all_kept() {
        // Classic trade-off triangle: cheap/slow, costly/fast, reliable.
        let c = vec![q(10.0, 90.0, 0.8), q(90.0, 10.0, 0.8), q(50.0, 50.0, 0.99)];
        assert_eq!(pareto_indices(&c), vec![0, 1, 2]);
    }

    #[test]
    fn chain_of_dominance_keeps_only_best() {
        let c = vec![
            q(4.0, 4.0, 0.5),
            q(3.0, 3.0, 0.6),
            q(2.0, 2.0, 0.7),
            q(1.0, 1.0, 0.8),
        ];
        assert_eq!(pareto_indices(&c), vec![3]);
    }

    #[test]
    fn front_matches_brute_force_on_random_input() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let candidates: Vec<Qos> = (0..60)
            .map(|_| {
                q(
                    rng.gen_range(1.0..100.0),
                    rng.gen_range(1.0..100.0),
                    rng.gen_range(0.1..0.99),
                )
            })
            .collect();
        let fast = pareto_indices(&candidates);
        // Brute force re-check: an index is optimal iff nothing dominates it.
        for i in 0..candidates.len() {
            let dominated = candidates
                .iter()
                .enumerate()
                .any(|(j, o)| j != i && dominates(o, &candidates[i]));
            assert_eq!(fast.contains(&i), !dominated, "index {i}");
        }
    }

    #[test]
    fn pareto_front_preserves_payloads() {
        let items = vec![("worse", q(2.0, 2.0, 0.5)), ("better", q(1.0, 1.0, 0.9))];
        let front = pareto_front(items, |(_, qos)| *qos);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].0, "better");
    }

    #[test]
    fn pareto_strategies_matches_materialized_front() {
        let env =
            EnvQos::from_triples(&[(50.0, 50.0, 0.6), (100.0, 100.0, 0.6), (150.0, 150.0, 0.7)])
                .unwrap();
        let ids = env.ids();
        let streamed = pareto_strategies(&env, &ids, &Algorithm1::new()).unwrap();

        // Reference: materialize all F(3) = 19 candidates, then filter.
        let all: Vec<(Strategy, Qos)> = StrategyIter::full(&ids)
            .map(|s| {
                let qos = estimate(&s, &env).unwrap();
                (s, qos)
            })
            .collect();
        assert_eq!(all.len(), 19);
        let reference = pareto_front(all, |(_, qos)| *qos);

        assert_eq!(streamed.len(), reference.len());
        for ((s1, q1), (s2, q2)) in streamed.iter().zip(&reference) {
            assert_eq!(s1, s2);
            assert_eq!(q1, q2);
        }
        // The front is never empty and never the whole space here.
        assert!(!streamed.is_empty() && streamed.len() < 19);
    }

    #[test]
    fn pareto_strategies_reports_missing_microservice() {
        let env = EnvQos::from_triples(&[(50.0, 50.0, 0.6)]).unwrap();
        let err = pareto_strategies(&env, &[MsId(0), MsId(7)], &Algorithm1::new());
        assert!(matches!(err, Err(EstimateError::MissingMicroservice(_))));
    }
}

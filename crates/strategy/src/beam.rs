//! Width-`W` beam search over execution strategies.
//!
//! The beam backend interpolates between the paper's two generation
//! algorithms. Like Algorithm 2's greedy approximation it inserts one
//! microservice per step, in descending individual-utility order; unlike
//! the approximation it keeps a *beam* of `W` partial strategies per step
//! and considers inserting the next microservice at **every** subtree
//! position of every beam member (as a sequential predecessor, sequential
//! successor, or parallel sibling), not just at the root.
//!
//! ## Tiered slots
//!
//! The beam's slots are built in tiers so that slot `i` depends only on
//! slots `≤ i` of the previous step:
//!
//! * **slot 1** replays the greedy trajectory exactly: its two candidates
//!   are the root-level `es - m` / `(es) * m` continuations of the previous
//!   slot 1, selected with Algorithm 2's tie rule (strict `>` — ties go
//!   parallel). Width 1 therefore returns *precisely* the approximation's
//!   strategy, QoS, and utility.
//! * **slot `i ≥ 2`** is the best candidate — under the exhaustive
//!   search's total order (utility, then cost, latency, rendering) — of a
//!   pool that grows with the tier: tier 2 adds all whole-tree insertions
//!   into the previous slots 1 and 2, tier `i ≥ 3` adds the insertions
//!   into the previous slot `i`, and every tier excludes the candidates
//!   already slotted.
//!
//! Because slot `i` never looks at slots `> i`, two beams of widths
//! `W < W'` agree on their first `W` slots at every step; the final
//! candidate pool of the wider beam is a superset, so the winning utility
//! is **monotone non-decreasing in the width**.
//!
//! ## Width ∞ is exhaustive
//!
//! Removing the step-`k` microservice from any canonical strategy over
//! the first `k` microservices yields a canonical strategy over the first
//! `k-1` — and the whole-tree insertion set regenerates the original from
//! it (canonicalization flattens the nested `Seq`/`Par` the insertion
//! creates). By induction an unbounded beam's pool at the final step is
//! exactly `F(M)`, ranked by the exhaustive search's total order, so the
//! winner is bit-identical to [`Generator::exhaustive`]'s (pinned by the
//! property tests below at `M ≤ 5`).

use std::collections::HashSet;
use std::time::Instant;

use crate::backend::BackendId;
use crate::error::GenerateError;
use crate::expr::{Node, Strategy};
use crate::generate::{better_tiebreak, Generated, Generator, Method, SynthesisReport};
use crate::plan_cache::PlanSource;
use crate::qos::{EnvQos, MsId, Qos, Requirements};

/// One scored beam candidate.
#[derive(Debug, Clone)]
struct Cand {
    strategy: Strategy,
    qos: Qos,
    utility: f64,
}

/// The exhaustive search's strict total order on distinct candidates:
/// higher utility, then the deterministic tie-break (lower cost, lower
/// latency, smaller rendering).
fn ranks_better(a: &Cand, b: &Cand) -> bool {
    a.utility > b.utility
        || (a.utility == b.utility && better_tiebreak(&a.strategy, &a.qos, &b.strategy, &b.qos))
}

/// Appends every way of inserting leaf `x` into `node` to `out`. Three
/// rewrite families, applied at each subtree position `p` (the root and,
/// recursively, every child):
///
/// 1. **whole-subtree**: `Seq[p, x]`, `Seq[x, p]`, `Par[p, x]` —
///    canonicalization (in [`Strategy::from_node`]) flattens the nesting,
///    so e.g. appending `x` after a child of a `Seq` reaches every
///    interior chain position;
/// 2. **`Par` subset grouping**: for every proper subset `S` (|S| ≥ 2) of
///    a `Par`'s children, replace `S` with the single child
///    `Seq[Par[S], x]` / `Seq[x, Par[S]]`;
/// 3. **`Seq` run grouping**: for every proper contiguous run `R`
///    (|R| ≥ 2) of a `Seq`'s children, replace `R` with the single child
///    `Par[Seq[R], x]`.
///
/// The grouped families are what make the set *complete*: removing `x`
/// from a canonical tree can collapse `x`'s two-child parent and flatten
/// the surviving sibling into the grandparent (e.g. `a*(x-b*c)` minus `x`
/// is `a*b*c`), so re-inserting `x` must be able to re-bundle those
/// flattened children. Every insertion adds exactly one `x` and removal
/// inverts it, so by induction over the insertion order the unbounded
/// beam's pool covers all of `F(M)`.
fn insertions(node: &Node, x: MsId, out: &mut Vec<Node>) {
    out.push(Node::Seq(vec![node.clone(), Node::Leaf(x)]));
    out.push(Node::Seq(vec![Node::Leaf(x), node.clone()]));
    out.push(Node::Par(vec![node.clone(), Node::Leaf(x)]));
    match node {
        Node::Leaf(_) => {}
        Node::Seq(children) => {
            // Family 3: group a proper run `R` into `Par[Seq[R], x]`.
            for i in 0..children.len() {
                for j in (i + 1)..children.len() {
                    if i == 0 && j == children.len() - 1 {
                        continue; // whole-node run: same as `Par[p, x]`
                    }
                    let run = Node::Seq(children[i..=j].to_vec());
                    let grouped = Node::Par(vec![run, Node::Leaf(x)]);
                    let mut rebuilt = children[..i].to_vec();
                    rebuilt.push(grouped);
                    rebuilt.extend_from_slice(&children[j + 1..]);
                    out.push(Node::Seq(rebuilt));
                }
            }
        }
        Node::Par(children) => {
            // Family 2: group a proper subset `S` into `Seq[Par[S], x]`
            // and `Seq[x, Par[S]]`.
            let n = children.len();
            for mask in 1u32..(1 << n) {
                if mask.count_ones() < 2 || mask == (1 << n) - 1 {
                    continue; // singletons are family 1, whole-node too
                }
                let (mut subset, mut rest) = (Vec::new(), Vec::new());
                for (i, child) in children.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        subset.push(child.clone());
                    } else {
                        rest.push(child.clone());
                    }
                }
                let bundle = Node::Par(subset);
                for grouped in [
                    Node::Seq(vec![bundle.clone(), Node::Leaf(x)]),
                    Node::Seq(vec![Node::Leaf(x), bundle]),
                ] {
                    let mut rebuilt = rest.clone();
                    rebuilt.push(grouped);
                    out.push(Node::Par(rebuilt));
                }
            }
        }
    }
    if let Node::Seq(children) | Node::Par(children) = node {
        for (i, child) in children.iter().enumerate() {
            let mut inner = Vec::new();
            insertions(child, x, &mut inner);
            for variant in inner {
                let mut rebuilt = children.clone();
                rebuilt[i] = variant;
                out.push(match node {
                    Node::Seq(_) => Node::Seq(rebuilt),
                    Node::Par(_) => Node::Par(rebuilt),
                    Node::Leaf(_) => unreachable!("leaves have no children"),
                });
            }
        }
    }
}

impl Generator {
    /// Beam search of width `W` (clamped to ≥ 1): the pluggable middle
    /// ground between [`Generator::approximation`] (identical results at
    /// `W = 1`) and [`Generator::exhaustive`] (identical results as
    /// `W → ∞`; bit-for-bit, not just equal utility). Runtime grows
    /// roughly linearly in `W` and quadratically in `|ids|`, so moderate
    /// widths stay practical far beyond the exhaustive search's `M ≤ 6`
    /// ceiling.
    ///
    /// Results are memoized in the configured plan cache (if any) under a
    /// width-specific [`BackendId`], so beam plans never collide with
    /// exhaustive or greedy entries for the same inputs.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::NoMicroservices`] for an empty id list, or
    /// an estimation error if `env` lacks an entry for some id.
    pub fn beam(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
        width: usize,
    ) -> Result<Generated, GenerateError> {
        if ids.is_empty() {
            return Err(GenerateError::NoMicroservices);
        }
        req.validate().map_err(GenerateError::InvalidRequirements)?;
        for &id in ids {
            if env.get(id).is_none() {
                return Err(crate::error::EstimateError::MissingMicroservice(id).into());
            }
        }
        let width = width.max(1);
        let start = Instant::now();
        let backend = BackendId::beam(width);
        if let Some(cache) = self.plan_cache() {
            if let Some(mut hit) = cache.lookup(
                env,
                ids,
                req,
                false,
                self.utility_index().k(),
                self.estimator().name(),
                backend,
            ) {
                hit.source = PlanSource::Cached;
                hit.report = SynthesisReport {
                    candidates_seen: 0,
                    candidates_pruned: 0,
                    elapsed: start.elapsed(),
                };
                return Ok(hit);
            }
        }
        let order = self.sort_by_utility(env, ids, req)?;
        let score = |s: Strategy| -> Result<Cand, GenerateError> {
            let qos = self.estimator().estimate(&s, env)?;
            let utility = self.utility_index().utility(&qos, req);
            Ok(Cand {
                strategy: s,
                qos,
                utility,
            })
        };

        // Unified effort accounting: the best-leaf incumbent counts as one
        // candidate; the per-leaf sorting estimates are auxiliary and do
        // not count (see `SynthesisReport`).
        let mut evaluated: usize = 1;
        let mut slots: Vec<Cand> = vec![score(Strategy::leaf(order[0]))?];
        for &x in &order[1..] {
            let mut pool: Vec<Cand> = Vec::new();
            let mut taken: Vec<bool> = Vec::new();
            let mut pooled: HashSet<Strategy> = HashSet::new();

            // Tier 1: Algorithm 2's two root-level continuations, selected
            // with its tie rule so slot 1 stays the greedy trajectory.
            let seq = slots[0]
                .strategy
                .clone()
                .then(Strategy::leaf(x))
                .expect("ids are distinct");
            let par = slots[0]
                .strategy
                .clone()
                .race(Strategy::leaf(x))
                .expect("ids are distinct");
            let seq_cand = score(seq)?;
            let par_cand = score(par)?;
            evaluated += 2;
            // Paper, Algorithm 2 line 8: strict '>' — ties go parallel.
            let greedy_wins_seq = seq_cand.utility > par_cand.utility;
            pooled.insert(seq_cand.strategy.clone());
            pooled.insert(par_cand.strategy.clone());
            pool.push(seq_cand);
            pool.push(par_cand);
            taken.extend([greedy_wins_seq, !greedy_wins_seq]);
            let chosen_idx = usize::from(!greedy_wins_seq);
            let mut next: Vec<Cand> = vec![pool[chosen_idx].clone()];

            // Tiers 2..=W: widen the pool with whole-tree insertions into
            // the previous slots, then slot the best unslotted candidate.
            // Tier i only reads previous slots ≤ i, which is what makes
            // the slot prefix — and hence the result — width-monotone.
            for tier in 1..width {
                if tier > 1 && tier >= slots.len() {
                    // No insertion source remains for this or any later
                    // tier, so the pool is final: drain the rest in rank
                    // order with one sort instead of O(pool²) repeated
                    // scans. Selection order is unchanged — `ranks_better`
                    // is a strict total order on distinct candidates (the
                    // tiebreak ends at the strategy's canonical text).
                    // This is the width → ∞ fast path.
                    let mut rest: Vec<usize> = (0..pool.len()).filter(|&i| !taken[i]).collect();
                    rest.sort_by(|&a, &b| {
                        if ranks_better(&pool[a], &pool[b]) {
                            std::cmp::Ordering::Less
                        } else {
                            std::cmp::Ordering::Greater
                        }
                    });
                    for &i in rest.iter().take(width - next.len()) {
                        taken[i] = true;
                        next.push(pool[i].clone());
                    }
                    break;
                }
                let sources: &[usize] = if tier == 1 { &[0, 1] } else { &[tier] };
                for &si in sources {
                    let Some(seed) = slots.get(si) else { continue };
                    let mut nodes = Vec::new();
                    insertions(seed.strategy.node(), x, &mut nodes);
                    for node in nodes {
                        let s = Strategy::from_node(node)
                            .expect("inserted microservice is not in the seed");
                        if pooled.insert(s.clone()) {
                            pool.push(score(s)?);
                            taken.push(false);
                            evaluated += 1;
                        }
                    }
                }
                let mut best: Option<usize> = None;
                for (i, cand) in pool.iter().enumerate() {
                    if taken[i] {
                        continue;
                    }
                    if best.is_none_or(|b| ranks_better(cand, &pool[b])) {
                        best = Some(i);
                    }
                }
                let Some(best) = best else { break };
                taken[best] = true;
                next.push(pool[best].clone());
            }
            slots = next;
        }

        // The answer is the best slot under the exhaustive total order; at
        // width 1 the only slot is the greedy trajectory's endpoint.
        let mut winner = 0usize;
        for i in 1..slots.len() {
            if ranks_better(&slots[i], &slots[winner]) {
                winner = i;
            }
        }
        let Cand {
            strategy,
            qos,
            utility,
        } = slots.swap_remove(winner);
        let generated = Generated {
            strategy,
            qos,
            utility,
            evaluated,
            method: Method::Beam,
            report: SynthesisReport {
                candidates_seen: evaluated as u64,
                candidates_pruned: 0,
                elapsed: start.elapsed(),
            },
            source: PlanSource::Cold,
        };
        if let Some(cache) = self.plan_cache() {
            cache.store(
                env,
                ids,
                req,
                false,
                self.utility_index().k(),
                self.estimator().name(),
                backend,
                &generated,
            );
        }
        Ok(generated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan_cache::{PlanCache, PlanCacheConfig};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn req() -> Requirements {
        Requirements::new(100.0, 100.0, 0.97).unwrap()
    }

    fn random_env(rng: &mut ChaCha8Rng, m: usize) -> EnvQos {
        (0..m)
            .map(|_| {
                Qos::new(
                    rng.gen_range(10.0..300.0),
                    rng.gen_range(10.0..300.0),
                    rng.gen_range(0.05..0.99),
                )
                .unwrap()
            })
            .collect()
    }

    fn assert_same_plan(a: &Generated, b: &Generated, what: &str) {
        assert_eq!(a.strategy, b.strategy, "{what}: strategy");
        assert_eq!(a.qos.cost.to_bits(), b.qos.cost.to_bits(), "{what}: cost");
        assert_eq!(
            a.qos.latency.to_bits(),
            b.qos.latency.to_bits(),
            "{what}: latency"
        );
        assert_eq!(
            a.qos.reliability.value().to_bits(),
            b.qos.reliability.value().to_bits(),
            "{what}: reliability"
        );
        assert_eq!(a.utility.to_bits(), b.utility.to_bits(), "{what}: utility");
    }

    /// Satellite property test: beam(width = 1) is the greedy trajectory
    /// bit-for-bit — strategy, QoS bits, utility, and (under the unified
    /// accounting) the evaluated count.
    #[test]
    fn width_one_is_the_greedy_approximation() {
        let gen = Generator::default();
        let requirements = Requirements::new(150.0, 150.0, 0.95).unwrap();
        for m in 1..=7usize {
            for seed in 0..8u64 {
                let mut rng = ChaCha8Rng::seed_from_u64(seed * 53 + m as u64);
                let env = random_env(&mut rng, m);
                let ids = env.ids();
                let greedy = gen.approximation(&env, &ids, &requirements).unwrap();
                let beam = gen.beam(&env, &ids, &requirements, 1).unwrap();
                let what = format!("m={m} seed={seed}");
                assert_same_plan(&greedy, &beam, &what);
                assert_eq!(beam.evaluated, greedy.evaluated, "{what}: evaluated");
                assert_eq!(beam.method, Method::Beam);
            }
        }
    }

    /// Satellite property test: an unbounded beam covers the full search
    /// space, so its winner is bit-identical to the exhaustive engine's at
    /// every seeded environment with M ≤ 5.
    #[test]
    fn unbounded_width_matches_exhaustive_bit_for_bit() {
        let gen = Generator::builder().parallelism(1).build();
        let requirements = Requirements::new(150.0, 150.0, 0.95).unwrap();
        for m in 1..=5usize {
            for seed in 0..6u64 {
                let mut rng = ChaCha8Rng::seed_from_u64(seed * 71 + m as u64);
                let env = random_env(&mut rng, m);
                let ids = env.ids();
                let exact = gen.exhaustive(&env, &ids, &requirements).unwrap();
                let beam = gen.beam(&env, &ids, &requirements, usize::MAX).unwrap();
                let what = format!("m={m} seed={seed}");
                assert_same_plan(&exact, &beam, &what);
                // The unbounded beam re-derives the full space at every
                // step, so its effort is 1 (the seed leaf) plus F(k) fresh
                // estimates for each prefix length k — pinning this proves
                // the insertion set covers F(k) exactly, with no gaps and
                // no over-count past canonical dedup.
                let expected: u128 = 1 + (2..=m).map(crate::enumerate::count_full).sum::<u128>();
                assert_eq!(
                    beam.evaluated as u128, expected,
                    "{what}: each step's pool must cover exactly F(k)"
                );
            }
        }
    }

    /// Satellite property test: widening the beam never loses utility,
    /// and the extremes tie the greedy / exhaustive backends.
    #[test]
    fn utility_is_monotone_non_decreasing_in_width() {
        let gen = Generator::default();
        let requirements = Requirements::new(150.0, 150.0, 0.95).unwrap();
        for seed in 0..10u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed * 17 + 3);
            let env = random_env(&mut rng, 6);
            let ids = env.ids();
            let mut last = f64::NEG_INFINITY;
            for width in [1usize, 2, 3, 4, 6, 8, 16, usize::MAX] {
                let out = gen.beam(&env, &ids, &requirements, width).unwrap();
                assert!(
                    out.utility >= last,
                    "seed={seed} width={width}: {} < {last}",
                    out.utility
                );
                last = out.utility;
            }
            let greedy = gen.approximation(&env, &ids, &requirements).unwrap();
            let exact = gen.exhaustive(&env, &ids, &requirements).unwrap();
            let w1 = gen.beam(&env, &ids, &requirements, 1).unwrap();
            assert_eq!(w1.utility.to_bits(), greedy.utility.to_bits());
            assert_eq!(last.to_bits(), exact.utility.to_bits());
        }
    }

    /// The tiered construction is prefix-stable: at M = 6 some seeded
    /// environment must show a *strict* improvement from width 1 to a
    /// moderate width, or the beam adds nothing over greedy.
    #[test]
    fn wider_beams_strictly_improve_somewhere() {
        let gen = Generator::default();
        let requirements = Requirements::new(400.0, 90.0, 0.95).unwrap();
        let mut improved = 0usize;
        for seed in 0..20u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let env = random_env(&mut rng, 6);
            let ids = env.ids();
            let narrow = gen.beam(&env, &ids, &requirements, 1).unwrap();
            let wide = gen.beam(&env, &ids, &requirements, 4).unwrap();
            if wide.utility > narrow.utility + 1e-9 {
                improved += 1;
            }
        }
        assert!(improved > 0, "beam(4) never beat beam(1) in 20 trials");
    }

    /// Beam scales past the exhaustive ceiling: it must return a plan over
    /// all M = 10 microservices in one call, at least as good as greedy.
    #[test]
    fn large_m_beats_or_ties_greedy() {
        let gen = Generator::default();
        let requirements = Requirements::new(300.0, 200.0, 0.95).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let env = random_env(&mut rng, 10);
        let ids = env.ids();
        let greedy = gen.approximation(&env, &ids, &requirements).unwrap();
        let beam = gen.beam(&env, &ids, &requirements, 4).unwrap();
        assert_eq!(beam.strategy.len(), 10);
        assert!(beam.utility >= greedy.utility - 1e-12);
    }

    /// Beam results are plan-cached under a width-specific backend id:
    /// repeats hit, a different width misses.
    #[test]
    fn plan_cache_keys_on_beam_width() {
        let cache = Arc::new(PlanCache::new(PlanCacheConfig::default()));
        let gen = Generator::builder().plan_cache(Arc::clone(&cache)).build();
        let requirements = req();
        let env = EnvQos::from_triples(&[
            (50.0, 50.0, 0.6),
            (100.0, 100.0, 0.6),
            (150.0, 150.0, 0.7),
            (200.0, 200.0, 0.7),
        ])
        .unwrap();
        let ids = env.ids();
        let first = gen.beam(&env, &ids, &requirements, 2).unwrap();
        assert_eq!(first.source, PlanSource::Cold);
        let repeat = gen.beam(&env, &ids, &requirements, 2).unwrap();
        assert_eq!(repeat.source, PlanSource::Cached);
        assert_eq!(repeat.report.candidates_seen, 0);
        assert_same_plan(&first, &repeat, "cached repeat");
        let wider = gen.beam(&env, &ids, &requirements, 3).unwrap();
        assert_eq!(wider.source, PlanSource::Cold, "other width must miss");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 2);
    }

    /// Zero width is clamped to 1 rather than erroring; degenerate inputs
    /// are rejected like every other entry point.
    #[test]
    fn zero_width_clamps_and_bad_inputs_error() {
        let gen = Generator::default();
        let env = EnvQos::from_triples(&[(50.0, 50.0, 0.6), (100.0, 100.0, 0.7)]).unwrap();
        let ids = env.ids();
        let clamped = gen.beam(&env, &ids, &req(), 0).unwrap();
        let one = gen.beam(&env, &ids, &req(), 1).unwrap();
        assert_same_plan(&clamped, &one, "width 0 behaves as width 1");
        assert!(matches!(
            gen.beam(&env, &[], &req(), 4),
            Err(GenerateError::NoMicroservices)
        ));
        assert!(gen.beam(&env, &[MsId(0), MsId(9)], &req(), 4).is_err());
    }
}

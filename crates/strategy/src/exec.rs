//! Execution-outcome vocabulary shared by every strategy walker.
//!
//! A strategy tree (Seq `-` / Par `*`, [`Node`](crate::Node)) can be
//! *executed* under more than one notion of "done":
//!
//! * **first success** — the plain Section III.A semantics: the first
//!   microservice invocation that succeeds ends the whole strategy;
//! * **quorum** — the Section VII future-work extension: execution keeps
//!   going until `k` invocations return byte-identical payloads.
//!
//! The runtime's `ExecutionEngine` and the simulator's schedule walker
//! both take a [`CompletionPolicy`] so the two interpretations share one
//! traversal core, and both report early termination with a
//! [`PruneReason`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// When is a strategy execution *complete*?
///
/// Parameterizes the runtime `ExecutionEngine` and the simulator's
/// schedule walker. The policy decides two things during the walk:
///
/// * whether a successful leaf ends the strategy (`FirstSuccess`: yes;
///   `Quorum`: only once `quorum` byte-equal payloads agree);
/// * whether a Seq node *absorbs* a child's success (`FirstSuccess`:
///   a succeeding fail-over leg stops the chain; `Quorum`: every stage
///   still runs so it can contribute votes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompletionPolicy {
    /// Stop at the first successful invocation (paper Section III.A).
    FirstSuccess,
    /// Keep executing until `quorum` invocations agree byte-for-byte
    /// (paper Section VII). `quorum` must be at least 1; `Quorum { 1 }`
    /// still differs from `FirstSuccess` because Seq stages are not
    /// absorbed by earlier successes.
    Quorum {
        /// Number of byte-identical payloads required for agreement.
        quorum: usize,
    },
}

impl CompletionPolicy {
    /// Does a Seq node stop at its first succeeding child?
    ///
    /// `true` for [`FirstSuccess`](CompletionPolicy::FirstSuccess)
    /// (fail-over legs after a success never run), `false` for
    /// [`Quorum`](CompletionPolicy::Quorum) (later stages still cast
    /// votes).
    #[must_use]
    pub fn seq_absorbs_success(&self) -> bool {
        matches!(self, CompletionPolicy::FirstSuccess)
    }
}

impl fmt::Display for CompletionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompletionPolicy::FirstSuccess => write!(f, "first-success"),
            CompletionPolicy::Quorum { quorum } => write!(f, "quorum({quorum})"),
        }
    }
}

/// Why an execution was cut short before its strategy finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PruneReason {
    /// The request's budget was cancelled from outside (client hangup,
    /// service eviction).
    Cancelled,
    /// The request's deadline passed while legs were still pending.
    DeadlineExceeded,
}

impl fmt::Display for PruneReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruneReason::Cancelled => write!(f, "cancelled"),
            PruneReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_absorbs_seq_successes_quorum_does_not() {
        assert!(CompletionPolicy::FirstSuccess.seq_absorbs_success());
        assert!(!CompletionPolicy::Quorum { quorum: 1 }.seq_absorbs_success());
        assert!(!CompletionPolicy::Quorum { quorum: 3 }.seq_absorbs_success());
    }

    #[test]
    fn display_forms() {
        assert_eq!(CompletionPolicy::FirstSuccess.to_string(), "first-success");
        assert_eq!(
            CompletionPolicy::Quorum { quorum: 2 }.to_string(),
            "quorum(2)"
        );
        assert_eq!(PruneReason::Cancelled.to_string(), "cancelled");
        assert_eq!(
            PruneReason::DeadlineExceeded.to_string(),
            "deadline exceeded"
        );
    }

    #[test]
    fn serde_round_trip() {
        for policy in [
            CompletionPolicy::FirstSuccess,
            CompletionPolicy::Quorum { quorum: 3 },
        ] {
            let json = serde_json::to_string(&policy).unwrap();
            let back: CompletionPolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(policy, back);
        }
        for reason in [PruneReason::Cancelled, PruneReason::DeadlineExceeded] {
            let json = serde_json::to_string(&reason).unwrap();
            let back: PruneReason = serde_json::from_str(&json).unwrap();
            assert_eq!(reason, back);
        }
    }
}

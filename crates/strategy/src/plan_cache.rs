//! Cross-slot plan caching for the generator.
//!
//! The gateway re-synthesizes an execution strategy at every slot boundary,
//! but consecutive slots see highly correlated environments: most of the
//! time the collector window moved barely at all, and often it did not move
//! in any way the search can observe. [`PlanCache`] exploits that by
//! memoizing the winning [`Generated`] strategy keyed by the *search
//! inputs* — the id list, the requirements, the utility penalty, the
//! estimator, the search backend ([`BackendId`] — different backends can
//! return different winners for identical inputs), and a (configurably
//! quantized) per-microservice QoS vector.
//!
//! ## Key quantization
//!
//! With a quantization step `q > 0`, each environment attribute `x` maps to
//! the cell index `round(x / q)`, so environments within roughly `q/2` of
//! each other share a key and the cached winner is reused even though the
//! inputs are not bit-identical — an approximation the operator opts into,
//! sized by `q`. With `q = 0` (the default) keys use the exact bit patterns
//! of every input: a hit then guarantees the search inputs are identical,
//! so the cached winner is **bit-identical** to what a fresh search would
//! return (the search is deterministic).
//!
//! ## Sharing and attribution
//!
//! A `PlanCache` is a *view* onto a shared entry store. [`PlanCache::share`]
//! creates a sibling view over the same store: lookups and stores go to the
//! common memo, while hit/miss counters stay per-view so each consumer can
//! report its own economics. Every entry remembers which view stored it;
//! a hit served from an entry stored by a *different* view additionally
//! counts as a `remote_hit` — this is how a fleet of gateway shards
//! attributes "plan synthesized elsewhere, served warm here".
//! [`PlanCacheHub`] packages the pattern: one hub per fleet, one
//! [`PlanCacheHub::view`] per planner.
//!
//! ## Staleness
//!
//! Entries never expire by time; they are dropped by capacity eviction
//! (least-recently-used) or by [`PlanCache::invalidate`], which the runtime
//! calls when a service script is evicted or replaced. Invalidation is
//! view-scoped: it drops the entries *this view stored* (plans derived from
//! other consumers' identical search inputs remain valid for them). Both
//! paths count into the shared `stale` statistic so operators can
//! distinguish "the cache is too small / invalidated often" from a plain
//! low hit rate.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::backend::BackendId;
use crate::generate::Generated;
use crate::qos::{EnvQos, MsId, Requirements};

/// How a plan was obtained: from scratch, from a warm-started search, or
/// straight from the [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PlanSource {
    /// A full synthesis run with no prior-slot information.
    #[default]
    Cold,
    /// A full synthesis run whose incumbent bar was seeded with the
    /// previous winner's utility re-estimated under the current
    /// environment (cache miss, but pruning bites from the first
    /// candidate).
    WarmStart,
    /// Returned directly from the plan cache without searching.
    Cached,
}

impl fmt::Display for PlanSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlanSource::Cold => "cold",
            PlanSource::WarmStart => "warm-start",
            PlanSource::Cached => "cached",
        })
    }
}

/// Configuration for a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCacheConfig {
    /// Maximum number of cached plans; the least-recently-used entry is
    /// evicted past this. Zero disables storing entirely.
    pub capacity: usize,
    /// Quantization step applied to every environment QoS attribute when
    /// forming cache keys. `0` (the default) keys on exact bit patterns.
    pub quantum: f64,
}

impl Default for PlanCacheConfig {
    fn default() -> Self {
        PlanCacheConfig {
            capacity: 64,
            quantum: 0.0,
        }
    }
}

/// A point-in-time view of a [`PlanCache`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PlanCacheStats {
    /// Lookups that returned a cached plan.
    pub hits: u64,
    /// Hits served from an entry stored by a *different* view of the
    /// shared store (e.g. another gateway shard's planner). Always a
    /// subset of `hits`; zero for an unshared cache.
    #[serde(default)]
    pub remote_hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Entries dropped before reuse: capacity evictions plus explicit
    /// invalidations (script eviction/replacement). Shared across views.
    pub stale: u64,
    /// Entries currently resident (shared across views).
    pub entries: usize,
}

/// The full identity of a search: any difference in these inputs can
/// change the winner, so all of them key the cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    ids: Vec<MsId>,
    subsets: bool,
    /// `(cost, latency, reliability)` requirement bit patterns.
    req: [u64; 3],
    /// Utility penalty `k` bit pattern.
    penalty: u64,
    /// Estimator identity ([`Estimator::name`](crate::Estimator::name)).
    estimator: &'static str,
    /// Search backend identity (name plus beam width): a greedy or
    /// narrow-beam winner must never be served to an exhaustive search.
    backend: BackendId,
    /// Quantized `(r, l, c)` cells per microservice (exact bit patterns
    /// when the quantum is zero).
    env: Vec<[i64; 3]>,
}

#[derive(Debug)]
struct Entry {
    stamp: u64,
    /// The view that stored (or last overwrote) this entry.
    owner: u32,
    generated: Generated,
}

/// The store behind one or more [`PlanCache`] views.
#[derive(Debug)]
struct Store {
    config: PlanCacheConfig,
    entries: Mutex<HashMap<Key, Entry>>,
    /// Monotone access stamp driving LRU eviction.
    clock: AtomicU64,
    stale: AtomicU64,
    /// Next view id handed out by [`PlanCache::share`].
    views: AtomicU32,
    /// Store-wide totals across all views (feed [`PlanCacheHub::stats`]).
    total_hits: AtomicU64,
    total_remote_hits: AtomicU64,
    total_misses: AtomicU64,
}

impl Store {
    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<Key, Entry>> {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A bounded, thread-safe memo of synthesized plans. See the module docs
/// for keying, sharing, and staleness semantics.
///
/// Construct one, share it via `Arc`, and hand it to
/// [`GeneratorBuilder::plan_cache`](crate::GeneratorBuilder::plan_cache);
/// the generator consults it on every exhaustive search. [`PlanCache::share`]
/// creates an independently-attributed view over the same entries.
#[derive(Debug)]
pub struct PlanCache {
    store: Arc<Store>,
    /// This view's identity, stamped on entries it stores.
    view: u32,
    hits: AtomicU64,
    remote_hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache with the given configuration.
    #[must_use]
    pub fn new(config: PlanCacheConfig) -> Self {
        PlanCache {
            store: Arc::new(Store {
                config,
                entries: Mutex::new(HashMap::new()),
                clock: AtomicU64::new(0),
                stale: AtomicU64::new(0),
                views: AtomicU32::new(1),
                total_hits: AtomicU64::new(0),
                total_remote_hits: AtomicU64::new(0),
                total_misses: AtomicU64::new(0),
            }),
            view: 0,
            hits: AtomicU64::new(0),
            remote_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Creates a sibling view over the same shared entry store with fresh
    /// per-view counters. A plan stored through any view is visible to all
    /// of them; a hit on an entry stored by another view counts as a
    /// `remote_hit` on the view that looked it up.
    #[must_use]
    pub fn share(&self) -> PlanCache {
        PlanCache {
            store: Arc::clone(&self.store),
            view: self.store.views.fetch_add(1, Ordering::Relaxed),
            hits: AtomicU64::new(0),
            remote_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured quantization step.
    #[must_use]
    pub fn quantum(&self) -> f64 {
        self.store.config.quantum
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.store.config.capacity
    }

    /// This view's counters plus the shared stale/entry counts.
    #[must_use]
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            remote_hits: self.remote_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale: self.store.stale.load(Ordering::Relaxed),
            entries: self.store.lock().len(),
        }
    }

    /// Drops the entries **this view stored** (the runtime calls this when
    /// the service script backing the cached plans is evicted or replaced,
    /// or when a live override changes the planning requirement), counting
    /// each into the shared `stale` statistic. Entries stored by sibling
    /// views remain — they were derived from those consumers' own inputs
    /// and stay valid for them. Returns how many entries were dropped.
    pub fn invalidate(&self) -> usize {
        let mut entries = self.store.lock();
        let before = entries.len();
        entries.retain(|_, entry| entry.owner != self.view);
        let dropped = before - entries.len();
        self.store
            .stale
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    // One argument per key component, mirroring `store` and `key`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn lookup(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
        subsets: bool,
        penalty: f64,
        estimator: &'static str,
        backend: BackendId,
    ) -> Option<Generated> {
        let key = self.key(env, ids, req, subsets, penalty, estimator, backend)?;
        let mut entries = self.store.lock();
        match entries.get_mut(&key) {
            Some(entry) => {
                entry.stamp = self.store.clock.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.store.total_hits.fetch_add(1, Ordering::Relaxed);
                if entry.owner != self.view {
                    self.remote_hits.fetch_add(1, Ordering::Relaxed);
                    self.store.total_remote_hits.fetch_add(1, Ordering::Relaxed);
                }
                Some(entry.generated.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.store.total_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    // One argument per key component, mirroring `lookup` and `key`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn store(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
        subsets: bool,
        penalty: f64,
        estimator: &'static str,
        backend: BackendId,
        generated: &Generated,
    ) {
        if self.store.config.capacity == 0 {
            return;
        }
        let Some(key) = self.key(env, ids, req, subsets, penalty, estimator, backend) else {
            return;
        };
        let stamp = self.store.clock.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.store.lock();
        if entries.len() >= self.store.config.capacity && !entries.contains_key(&key) {
            if let Some(oldest) = entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                entries.remove(&oldest);
                self.store.stale.fetch_add(1, Ordering::Relaxed);
            }
        }
        entries.insert(
            key,
            Entry {
                stamp,
                owner: self.view,
                generated: generated.clone(),
            },
        );
    }

    /// Builds the cache key, or `None` when some id has no environment
    /// entry (the generator validates that before calling, but a bare
    /// lookup must not panic).
    #[allow(clippy::too_many_arguments)]
    fn key(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
        subsets: bool,
        penalty: f64,
        estimator: &'static str,
        backend: BackendId,
    ) -> Option<Key> {
        let env = ids
            .iter()
            .map(|&id| {
                env.get(id).map(|q| {
                    [
                        self.cell(q.reliability.value()),
                        self.cell(q.latency),
                        self.cell(q.cost),
                    ]
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Key {
            ids: ids.to_vec(),
            subsets,
            req: [
                req.cost.to_bits(),
                req.latency.to_bits(),
                req.reliability.value().to_bits(),
            ],
            penalty: penalty.to_bits(),
            estimator,
            backend,
            env,
        })
    }

    /// Maps one QoS attribute value to its key cell: the nearest multiple
    /// of the quantum, or the exact bit pattern when the quantum is zero.
    fn cell(&self, value: f64) -> i64 {
        if self.store.config.quantum > 0.0 {
            // Saturating float→int cast; inputs are validated finite.
            (value / self.store.config.quantum).round() as i64
        } else {
            // Bit pattern as a (bijective) i64 so both modes share a type.
            value.to_bits() as i64
        }
    }
}

/// A fleet-wide plan-sharing handle: one logical plan memo whose
/// [`view`](PlanCacheHub::view)s hand independently-attributed [`PlanCache`]
/// fronts to many planners (one per service cell per gateway shard).
///
/// Because the cache key is the full quantized *search identity* — ids,
/// requirements, penalty, estimator, environment cells — two planners
/// anywhere in the fleet that would run the identical search share one
/// entry: the first to finish stores it, every other planner's lookup is a
/// `remote_hit`. Aggregate economics are available via
/// [`PlanCacheHub::stats`].
#[derive(Debug)]
pub struct PlanCacheHub {
    root: PlanCache,
}

impl PlanCacheHub {
    /// Creates a hub with an empty shared store.
    #[must_use]
    pub fn new(config: PlanCacheConfig) -> Self {
        PlanCacheHub {
            root: PlanCache::new(config),
        }
    }

    /// A fresh attributed view onto the shared store, ready for
    /// [`GeneratorBuilder::plan_cache`](crate::GeneratorBuilder::plan_cache).
    #[must_use]
    pub fn view(&self) -> Arc<PlanCache> {
        Arc::new(self.root.share())
    }

    /// The configured quantization step.
    #[must_use]
    pub fn quantum(&self) -> f64 {
        self.root.quantum()
    }

    /// Store-wide totals summed over every view.
    #[must_use]
    pub fn stats(&self) -> PlanCacheStats {
        let store = &self.root.store;
        PlanCacheStats {
            hits: store.total_hits.load(Ordering::Relaxed),
            remote_hits: store.total_remote_hits.load(Ordering::Relaxed),
            misses: store.total_misses.load(Ordering::Relaxed),
            stale: store.stale.load(Ordering::Relaxed),
            entries: store.lock().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::Generator;
    use crate::qos::{EnvQos, Requirements};

    const EX: BackendId = BackendId::EXHAUSTIVE;

    fn env(triples: &[(f64, f64, f64)]) -> EnvQos {
        EnvQos::from_triples(triples).unwrap()
    }

    fn req() -> Requirements {
        Requirements::new(100.0, 100.0, 0.9).unwrap()
    }

    fn plan(env: &EnvQos) -> Generated {
        Generator::default()
            .exhaustive(env, &env.ids(), &req())
            .unwrap()
    }

    #[test]
    fn quantum_zero_degenerates_to_exact_match_keys() {
        let cache = PlanCache::new(PlanCacheConfig::default());
        let e1 = env(&[(50.0, 50.0, 0.6), (100.0, 100.0, 0.7)]);
        let g = plan(&e1);
        let ids = e1.ids();
        cache.store(&e1, &ids, &req(), false, 2.0, "algorithm1", EX, &g);
        assert!(cache
            .lookup(&e1, &ids, &req(), false, 2.0, "algorithm1", EX)
            .is_some());

        // One ulp of drift in a single attribute must miss.
        let mut e2 = e1.clone();
        let mut q = *e2.get(crate::MsId(0)).unwrap();
        q.cost = f64::from_bits(q.cost.to_bits() + 1);
        e2.set(crate::MsId(0), q);
        assert!(cache
            .lookup(&e2, &ids, &req(), false, 2.0, "algorithm1", EX)
            .is_none());

        // So must any change to requirements, subsets mode, penalty, or
        // estimator identity.
        let other_req = Requirements::new(100.0, 100.0, 0.91).unwrap();
        assert!(cache
            .lookup(&e1, &ids, &other_req, false, 2.0, "algorithm1", EX)
            .is_none());
        assert!(cache
            .lookup(&e1, &ids, &req(), true, 2.0, "algorithm1", EX)
            .is_none());
        assert!(cache
            .lookup(&e1, &ids, &req(), false, 3.0, "algorithm1", EX)
            .is_none());
        assert!(cache
            .lookup(&e1, &ids, &req(), false, 2.0, "folding", EX)
            .is_none());
        // …or to the search backend: a greedy or beam search must never be
        // served the exhaustive winner (or another width's beam winner).
        assert!(cache
            .lookup(
                &e1,
                &ids,
                &req(),
                false,
                2.0,
                "algorithm1",
                BackendId::GREEDY
            )
            .is_none());
        assert!(cache
            .lookup(
                &e1,
                &ids,
                &req(),
                false,
                2.0,
                "algorithm1",
                BackendId::beam(2)
            )
            .is_none());

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.remote_hits, 0, "single view: every hit is local");
        assert_eq!(stats.misses, 7);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn positive_quantum_coalesces_nearby_environments() {
        let cache = PlanCache::new(PlanCacheConfig {
            capacity: 8,
            quantum: 1.0,
        });
        let e1 = env(&[(50.0, 50.0, 0.6)]);
        let ids = e1.ids();
        let g = plan(&e1);
        cache.store(&e1, &ids, &req(), false, 2.0, "algorithm1", EX, &g);
        // 50.3 rounds into the same 1.0-wide cell as 50.0 …
        let near = env(&[(50.3, 49.8, 0.6)]);
        assert!(cache
            .lookup(&near, &ids, &req(), false, 2.0, "algorithm1", EX)
            .is_some());
        // … but 50.6 does not.
        let far = env(&[(50.6, 50.0, 0.6)]);
        assert!(cache
            .lookup(&far, &ids, &req(), false, 2.0, "algorithm1", EX)
            .is_none());
    }

    #[test]
    fn capacity_evicts_least_recently_used_and_counts_stale() {
        let cache = PlanCache::new(PlanCacheConfig {
            capacity: 2,
            quantum: 0.0,
        });
        let envs: Vec<EnvQos> = (0..3)
            .map(|i| env(&[(50.0 + f64::from(i), 50.0, 0.6)]))
            .collect();
        let ids = envs[0].ids();
        let g = plan(&envs[0]);
        cache.store(&envs[0], &ids, &req(), false, 2.0, "a1", EX, &g);
        cache.store(&envs[1], &ids, &req(), false, 2.0, "a1", EX, &g);
        // Touch entry 0 so entry 1 is the LRU victim.
        assert!(cache
            .lookup(&envs[0], &ids, &req(), false, 2.0, "a1", EX)
            .is_some());
        cache.store(&envs[2], &ids, &req(), false, 2.0, "a1", EX, &g);
        assert!(cache
            .lookup(&envs[0], &ids, &req(), false, 2.0, "a1", EX)
            .is_some());
        assert!(cache
            .lookup(&envs[1], &ids, &req(), false, 2.0, "a1", EX)
            .is_none());
        assert!(cache
            .lookup(&envs[2], &ids, &req(), false, 2.0, "a1", EX)
            .is_some());
        let stats = cache.stats();
        assert_eq!(stats.stale, 1, "one capacity eviction");
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn invalidate_drops_everything_into_stale() {
        let cache = PlanCache::new(PlanCacheConfig::default());
        let e1 = env(&[(50.0, 50.0, 0.6)]);
        let ids = e1.ids();
        let g = plan(&e1);
        cache.store(&e1, &ids, &req(), false, 2.0, "a1", EX, &g);
        assert_eq!(cache.invalidate(), 1);
        assert!(cache
            .lookup(&e1, &ids, &req(), false, 2.0, "a1", EX)
            .is_none());
        let stats = cache.stats();
        assert_eq!(stats.stale, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let cache = PlanCache::new(PlanCacheConfig {
            capacity: 0,
            quantum: 0.0,
        });
        let e1 = env(&[(50.0, 50.0, 0.6)]);
        let ids = e1.ids();
        let g = plan(&e1);
        cache.store(&e1, &ids, &req(), false, 2.0, "a1", EX, &g);
        assert!(cache
            .lookup(&e1, &ids, &req(), false, 2.0, "a1", EX)
            .is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn shared_views_attribute_remote_hits() {
        let a = PlanCache::new(PlanCacheConfig::default());
        let b = a.share();
        let e1 = env(&[(50.0, 50.0, 0.6)]);
        let ids = e1.ids();
        let g = plan(&e1);

        // View A stores; view B's lookup is a hit *and* a remote hit.
        a.store(&e1, &ids, &req(), false, 2.0, "a1", EX, &g);
        assert!(b.lookup(&e1, &ids, &req(), false, 2.0, "a1", EX).is_some());
        // View A's own lookup is a plain local hit.
        assert!(a.lookup(&e1, &ids, &req(), false, 2.0, "a1", EX).is_some());

        let sa = a.stats();
        let sb = b.stats();
        assert_eq!((sa.hits, sa.remote_hits, sa.misses), (1, 0, 0));
        assert_eq!((sb.hits, sb.remote_hits, sb.misses), (1, 1, 0));
        // Entries are shared.
        assert_eq!(sa.entries, 1);
        assert_eq!(sb.entries, 1);
    }

    #[test]
    fn invalidate_is_view_scoped() {
        let a = PlanCache::new(PlanCacheConfig::default());
        let b = a.share();
        let e1 = env(&[(50.0, 50.0, 0.6)]);
        let e2 = env(&[(60.0, 60.0, 0.7)]);
        let ids = e1.ids();
        let g = plan(&e1);
        a.store(&e1, &ids, &req(), false, 2.0, "a1", EX, &g);
        b.store(&e2, &ids, &req(), false, 2.0, "a1", EX, &g);

        // Invalidating A drops only A's entry; B's survives for both views.
        assert_eq!(a.invalidate(), 1);
        assert!(a.lookup(&e1, &ids, &req(), false, 2.0, "a1", EX).is_none());
        assert!(a.lookup(&e2, &ids, &req(), false, 2.0, "a1", EX).is_some());
        assert_eq!(a.stats().stale, 1);
        assert_eq!(a.stats().entries, 1);
    }

    #[test]
    fn hub_views_share_entries_and_aggregate_stats() {
        let hub = PlanCacheHub::new(PlanCacheConfig::default());
        let a = hub.view();
        let b = hub.view();
        let e1 = env(&[(50.0, 50.0, 0.6)]);
        let ids = e1.ids();
        let g = plan(&e1);

        assert!(a.lookup(&e1, &ids, &req(), false, 2.0, "a1", EX).is_none());
        a.store(&e1, &ids, &req(), false, 2.0, "a1", EX, &g);
        assert!(b.lookup(&e1, &ids, &req(), false, 2.0, "a1", EX).is_some());

        let total = hub.stats();
        assert_eq!(total.hits, 1);
        assert_eq!(total.remote_hits, 1);
        assert_eq!(total.misses, 1);
        assert_eq!(total.entries, 1);
    }

    #[test]
    fn plan_source_display_and_default() {
        assert_eq!(PlanSource::Cold.to_string(), "cold");
        assert_eq!(PlanSource::WarmStart.to_string(), "warm-start");
        assert_eq!(PlanSource::Cached.to_string(), "cached");
        assert_eq!(PlanSource::default(), PlanSource::Cold);
        let json = serde_json::to_string(&PlanSource::WarmStart).unwrap();
        let back: PlanSource = serde_json::from_str(&json).unwrap();
        assert_eq!(back, PlanSource::WarmStart);
    }

    #[test]
    fn plan_cache_stats_deserializes_without_remote_hits() {
        // Pre-sharing snapshots lack the field; serde must default it.
        let json = r#"{"hits":3,"misses":1,"stale":0,"entries":2}"#;
        let stats: PlanCacheStats = serde_json::from_str(json).unwrap();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.remote_hits, 0);
    }
}

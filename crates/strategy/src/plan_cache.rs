//! Cross-slot plan caching for the generator.
//!
//! The gateway re-synthesizes an execution strategy at every slot boundary,
//! but consecutive slots see highly correlated environments: most of the
//! time the collector window moved barely at all, and often it did not move
//! in any way the search can observe. [`PlanCache`] exploits that by
//! memoizing the winning [`Generated`] strategy keyed by the *search
//! inputs* — the id list, the requirements, the utility penalty, the
//! estimator, and a (configurably quantized) per-microservice QoS vector.
//!
//! ## Key quantization
//!
//! With a quantization step `q > 0`, each environment attribute `x` maps to
//! the cell index `round(x / q)`, so environments within roughly `q/2` of
//! each other share a key and the cached winner is reused even though the
//! inputs are not bit-identical — an approximation the operator opts into,
//! sized by `q`. With `q = 0` (the default) keys use the exact bit patterns
//! of every input: a hit then guarantees the search inputs are identical,
//! so the cached winner is **bit-identical** to what a fresh search would
//! return (the search is deterministic).
//!
//! ## Staleness
//!
//! Entries never expire by time; they are dropped by capacity eviction
//! (least-recently-used) or by [`PlanCache::invalidate`], which the runtime
//! calls when a service script is evicted or replaced. Both paths count
//! into the `stale` statistic so operators can distinguish "the cache is
//! too small / invalidated often" from a plain low hit rate.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::generate::Generated;
use crate::qos::{EnvQos, MsId, Requirements};

/// How a plan was obtained: from scratch, from a warm-started search, or
/// straight from the [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PlanSource {
    /// A full synthesis run with no prior-slot information.
    #[default]
    Cold,
    /// A full synthesis run whose incumbent bar was seeded with the
    /// previous winner's utility re-estimated under the current
    /// environment (cache miss, but pruning bites from the first
    /// candidate).
    WarmStart,
    /// Returned directly from the plan cache without searching.
    Cached,
}

impl fmt::Display for PlanSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlanSource::Cold => "cold",
            PlanSource::WarmStart => "warm-start",
            PlanSource::Cached => "cached",
        })
    }
}

/// Configuration for a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCacheConfig {
    /// Maximum number of cached plans; the least-recently-used entry is
    /// evicted past this. Zero disables storing entirely.
    pub capacity: usize,
    /// Quantization step applied to every environment QoS attribute when
    /// forming cache keys. `0` (the default) keys on exact bit patterns.
    pub quantum: f64,
}

impl Default for PlanCacheConfig {
    fn default() -> Self {
        PlanCacheConfig {
            capacity: 64,
            quantum: 0.0,
        }
    }
}

/// A point-in-time view of a [`PlanCache`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PlanCacheStats {
    /// Lookups that returned a cached plan.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Entries dropped before reuse: capacity evictions plus explicit
    /// invalidations (script eviction/replacement).
    pub stale: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// The full identity of a search: any difference in these inputs can
/// change the winner, so all of them key the cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    ids: Vec<MsId>,
    subsets: bool,
    /// `(cost, latency, reliability)` requirement bit patterns.
    req: [u64; 3],
    /// Utility penalty `k` bit pattern.
    penalty: u64,
    /// Estimator identity ([`Estimator::name`](crate::Estimator::name)).
    estimator: &'static str,
    /// Quantized `(r, l, c)` cells per microservice (exact bit patterns
    /// when the quantum is zero).
    env: Vec<[i64; 3]>,
}

#[derive(Debug)]
struct Entry {
    stamp: u64,
    generated: Generated,
}

/// A bounded, thread-safe memo of synthesized plans. See the module docs
/// for keying and staleness semantics.
///
/// Construct one, share it via `Arc`, and hand it to
/// [`GeneratorBuilder::plan_cache`](crate::GeneratorBuilder::plan_cache);
/// the generator consults it on every exhaustive search.
#[derive(Debug)]
pub struct PlanCache {
    config: PlanCacheConfig,
    entries: Mutex<HashMap<Key, Entry>>,
    /// Monotone access stamp driving LRU eviction.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache with the given configuration.
    #[must_use]
    pub fn new(config: PlanCacheConfig) -> Self {
        PlanCache {
            config,
            entries: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
        }
    }

    /// The configured quantization step.
    #[must_use]
    pub fn quantum(&self) -> f64 {
        self.config.quantum
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// Current counter values and entry count.
    #[must_use]
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            entries: self.lock().len(),
        }
    }

    /// Drops every entry (the runtime calls this when the service script
    /// backing the cached plans is evicted or replaced), counting each into
    /// the `stale` statistic. Returns how many entries were dropped.
    pub fn invalidate(&self) -> usize {
        let mut entries = self.lock();
        let dropped = entries.len();
        entries.clear();
        self.stale.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    pub(crate) fn lookup(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
        subsets: bool,
        penalty: f64,
        estimator: &'static str,
    ) -> Option<Generated> {
        let key = self.key(env, ids, req, subsets, penalty, estimator)?;
        let mut entries = self.lock();
        match entries.get_mut(&key) {
            Some(entry) => {
                entry.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.generated.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    // One argument per key component, mirroring `lookup` and `key`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn store(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
        subsets: bool,
        penalty: f64,
        estimator: &'static str,
        generated: &Generated,
    ) {
        if self.config.capacity == 0 {
            return;
        }
        let Some(key) = self.key(env, ids, req, subsets, penalty, estimator) else {
            return;
        };
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.lock();
        if entries.len() >= self.config.capacity && !entries.contains_key(&key) {
            if let Some(oldest) = entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                entries.remove(&oldest);
                self.stale.fetch_add(1, Ordering::Relaxed);
            }
        }
        entries.insert(
            key,
            Entry {
                stamp,
                generated: generated.clone(),
            },
        );
    }

    /// Builds the cache key, or `None` when some id has no environment
    /// entry (the generator validates that before calling, but a bare
    /// lookup must not panic).
    fn key(
        &self,
        env: &EnvQos,
        ids: &[MsId],
        req: &Requirements,
        subsets: bool,
        penalty: f64,
        estimator: &'static str,
    ) -> Option<Key> {
        let env = ids
            .iter()
            .map(|&id| {
                env.get(id).map(|q| {
                    [
                        self.cell(q.reliability.value()),
                        self.cell(q.latency),
                        self.cell(q.cost),
                    ]
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Key {
            ids: ids.to_vec(),
            subsets,
            req: [
                req.cost.to_bits(),
                req.latency.to_bits(),
                req.reliability.value().to_bits(),
            ],
            penalty: penalty.to_bits(),
            estimator,
            env,
        })
    }

    /// Maps one QoS attribute value to its key cell: the nearest multiple
    /// of the quantum, or the exact bit pattern when the quantum is zero.
    fn cell(&self, value: f64) -> i64 {
        if self.config.quantum > 0.0 {
            // Saturating float→int cast; inputs are validated finite.
            (value / self.config.quantum).round() as i64
        } else {
            // Bit pattern as a (bijective) i64 so both modes share a type.
            value.to_bits() as i64
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<Key, Entry>> {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::Generator;
    use crate::qos::{EnvQos, Requirements};

    fn env(triples: &[(f64, f64, f64)]) -> EnvQos {
        EnvQos::from_triples(triples).unwrap()
    }

    fn req() -> Requirements {
        Requirements::new(100.0, 100.0, 0.9).unwrap()
    }

    fn plan(env: &EnvQos) -> Generated {
        Generator::default()
            .exhaustive(env, &env.ids(), &req())
            .unwrap()
    }

    #[test]
    fn quantum_zero_degenerates_to_exact_match_keys() {
        let cache = PlanCache::new(PlanCacheConfig::default());
        let e1 = env(&[(50.0, 50.0, 0.6), (100.0, 100.0, 0.7)]);
        let g = plan(&e1);
        let ids = e1.ids();
        cache.store(&e1, &ids, &req(), false, 2.0, "algorithm1", &g);
        assert!(cache
            .lookup(&e1, &ids, &req(), false, 2.0, "algorithm1")
            .is_some());

        // One ulp of drift in a single attribute must miss.
        let mut e2 = e1.clone();
        let mut q = *e2.get(crate::MsId(0)).unwrap();
        q.cost = f64::from_bits(q.cost.to_bits() + 1);
        e2.set(crate::MsId(0), q);
        assert!(cache
            .lookup(&e2, &ids, &req(), false, 2.0, "algorithm1")
            .is_none());

        // So must any change to requirements, subsets mode, penalty, or
        // estimator identity.
        let other_req = Requirements::new(100.0, 100.0, 0.91).unwrap();
        assert!(cache
            .lookup(&e1, &ids, &other_req, false, 2.0, "algorithm1")
            .is_none());
        assert!(cache
            .lookup(&e1, &ids, &req(), true, 2.0, "algorithm1")
            .is_none());
        assert!(cache
            .lookup(&e1, &ids, &req(), false, 3.0, "algorithm1")
            .is_none());
        assert!(cache
            .lookup(&e1, &ids, &req(), false, 2.0, "folding")
            .is_none());

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn positive_quantum_coalesces_nearby_environments() {
        let cache = PlanCache::new(PlanCacheConfig {
            capacity: 8,
            quantum: 1.0,
        });
        let e1 = env(&[(50.0, 50.0, 0.6)]);
        let ids = e1.ids();
        let g = plan(&e1);
        cache.store(&e1, &ids, &req(), false, 2.0, "algorithm1", &g);
        // 50.3 rounds into the same 1.0-wide cell as 50.0 …
        let near = env(&[(50.3, 49.8, 0.6)]);
        assert!(cache
            .lookup(&near, &ids, &req(), false, 2.0, "algorithm1")
            .is_some());
        // … but 50.6 does not.
        let far = env(&[(50.6, 50.0, 0.6)]);
        assert!(cache
            .lookup(&far, &ids, &req(), false, 2.0, "algorithm1")
            .is_none());
    }

    #[test]
    fn capacity_evicts_least_recently_used_and_counts_stale() {
        let cache = PlanCache::new(PlanCacheConfig {
            capacity: 2,
            quantum: 0.0,
        });
        let envs: Vec<EnvQos> = (0..3)
            .map(|i| env(&[(50.0 + f64::from(i), 50.0, 0.6)]))
            .collect();
        let ids = envs[0].ids();
        let g = plan(&envs[0]);
        cache.store(&envs[0], &ids, &req(), false, 2.0, "a1", &g);
        cache.store(&envs[1], &ids, &req(), false, 2.0, "a1", &g);
        // Touch entry 0 so entry 1 is the LRU victim.
        assert!(cache
            .lookup(&envs[0], &ids, &req(), false, 2.0, "a1")
            .is_some());
        cache.store(&envs[2], &ids, &req(), false, 2.0, "a1", &g);
        assert!(cache
            .lookup(&envs[0], &ids, &req(), false, 2.0, "a1")
            .is_some());
        assert!(cache
            .lookup(&envs[1], &ids, &req(), false, 2.0, "a1")
            .is_none());
        assert!(cache
            .lookup(&envs[2], &ids, &req(), false, 2.0, "a1")
            .is_some());
        let stats = cache.stats();
        assert_eq!(stats.stale, 1, "one capacity eviction");
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn invalidate_drops_everything_into_stale() {
        let cache = PlanCache::new(PlanCacheConfig::default());
        let e1 = env(&[(50.0, 50.0, 0.6)]);
        let ids = e1.ids();
        let g = plan(&e1);
        cache.store(&e1, &ids, &req(), false, 2.0, "a1", &g);
        assert_eq!(cache.invalidate(), 1);
        assert!(cache.lookup(&e1, &ids, &req(), false, 2.0, "a1").is_none());
        let stats = cache.stats();
        assert_eq!(stats.stale, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let cache = PlanCache::new(PlanCacheConfig {
            capacity: 0,
            quantum: 0.0,
        });
        let e1 = env(&[(50.0, 50.0, 0.6)]);
        let ids = e1.ids();
        let g = plan(&e1);
        cache.store(&e1, &ids, &req(), false, 2.0, "a1", &g);
        assert!(cache.lookup(&e1, &ids, &req(), false, 2.0, "a1").is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn plan_source_display_and_default() {
        assert_eq!(PlanSource::Cold.to_string(), "cold");
        assert_eq!(PlanSource::WarmStart.to_string(), "warm-start");
        assert_eq!(PlanSource::Cached.to_string(), "cached");
        assert_eq!(PlanSource::default(), PlanSource::Cold);
        let json = serde_json::to_string(&PlanSource::WarmStart).unwrap();
        let back: PlanSource = serde_json::from_str(&json).unwrap();
        assert_eq!(back, PlanSource::WarmStart);
    }
}

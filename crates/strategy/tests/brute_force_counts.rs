//! Independent verification of the strategy-space counts: enumerate *every*
//! binary expression tree over *every* permutation of the leaves,
//! canonicalize under Observations 1–3, and count distinct results.
//!
//! This is a from-first-principles cross-check of both the streaming
//! enumeration and the counting recurrence — and the evidence behind the
//! Table I reproduction finding (the paper's 207 at M = 4 counts
//! commutative duplicates; the semantic count is 195).

use std::collections::BTreeSet;

use qce_strategy::enumerate::{count_full, enumerate_full};
use qce_strategy::{MsId, Node, Strategy};

/// All binary strategy trees over an ordered leaf sequence.
fn binary_trees(leaves: &[usize]) -> Vec<Node> {
    if leaves.len() == 1 {
        return vec![Node::Leaf(MsId(leaves[0]))];
    }
    let mut out = Vec::new();
    for split in 1..leaves.len() {
        for left in binary_trees(&leaves[..split]) {
            for right in binary_trees(&leaves[split..]) {
                out.push(Node::Seq(vec![left.clone(), right.clone()]));
                out.push(Node::Par(vec![left.clone(), right]));
            }
        }
    }
    out
}

fn permutations(items: Vec<usize>) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items];
    }
    let mut out = Vec::new();
    for i in 0..items.len() {
        let mut rest = items.clone();
        let head = rest.remove(i);
        for mut tail in permutations(rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

/// Counts semantically distinct strategies over `m` microservices by brute
/// force (canonicalization happens inside `Strategy::from_node`).
fn brute_force_count(m: usize) -> usize {
    let mut distinct: BTreeSet<Strategy> = BTreeSet::new();
    for perm in permutations((0..m).collect()) {
        for tree in binary_trees(&perm) {
            distinct.insert(Strategy::from_node(tree).expect("valid tree"));
        }
    }
    distinct.len()
}

#[test]
fn brute_force_matches_recurrence_and_enumeration() {
    for m in 1..=4 {
        let brute = brute_force_count(m);
        assert_eq!(brute as u128, count_full(m), "recurrence at M={m}");
        let ids: Vec<MsId> = (0..m).map(MsId).collect();
        assert_eq!(brute, enumerate_full(&ids).len(), "enumeration at M={m}");
    }
}

#[test]
fn m4_semantic_count_is_195_not_207() {
    // The heart of the Table I finding.
    assert_eq!(brute_force_count(4), 195);
}

#[test]
fn commutative_duplicates_collapse() {
    // (a-b)*(c-d) and (c-d)*(a-b) are one strategy.
    let lhs = Strategy::parse("(a-b)*(c-d)").unwrap();
    let rhs = Strategy::parse("(c-d)*(a-b)").unwrap();
    assert_eq!(lhs, rhs);
    // …but (a-b)*(c-d) and (b-a)*(c-d) are different (Seq order matters).
    let other = Strategy::parse("(b-a)*(c-d)").unwrap();
    assert_ne!(lhs, other);
}

#[test]
fn brute_force_set_equals_enumerated_set_at_m3() {
    // Not just the same *count* — the same *set*.
    let mut brute: BTreeSet<Strategy> = BTreeSet::new();
    for perm in permutations(vec![0, 1, 2]) {
        for tree in binary_trees(&perm) {
            brute.insert(Strategy::from_node(tree).unwrap());
        }
    }
    let ids: Vec<MsId> = (0..3).map(MsId).collect();
    let enumerated: BTreeSet<Strategy> = enumerate_full(&ids).into_iter().collect();
    assert_eq!(brute, enumerated);
}

//! Property-based tests for the strategy algebra, enumeration, estimation,
//! utility, and generation.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qce_strategy::enumerate::{enumerate_full, StrategySampler};
use qce_strategy::estimate::{estimate, estimate_folding, timelines};
use qce_strategy::pareto::pareto_indices;
use qce_strategy::utility::dominates;
use qce_strategy::{EnvQos, Generator, MsId, Node, Qos, Requirements, Strategy, UtilityIndex};

/// Draws a uniformly random strategy over `m` microservices from a seed.
fn sampled_strategy(m: usize, seed: u64) -> Strategy {
    let ids: Vec<MsId> = (0..m).map(MsId).collect();
    let sampler = StrategySampler::new(&ids);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    sampler.sample(&mut rng)
}

/// Random environment with `m` microservices; QoS drawn from a seed.
fn random_env(m: usize, seed: u64) -> EnvQos {
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            Qos::new(
                rng.gen_range(1.0..300.0),
                rng.gen_range(1.0..300.0),
                rng.gen_range(0.05..0.99),
            )
            .expect("values in domain")
        })
        .collect()
}

proptest! {
    /// Rendering a strategy and re-parsing it yields the same strategy.
    #[test]
    fn display_parse_round_trip(m in 1usize..8, seed in any::<u64>()) {
        let s = sampled_strategy(m, seed);
        let text = s.to_string();
        let reparsed = Strategy::parse(&text).expect("rendered text parses");
        prop_assert_eq!(s, reparsed);
    }

    /// Serde serialization round-trips through the expression string.
    #[test]
    fn serde_round_trip(m in 1usize..7, seed in any::<u64>()) {
        let s = sampled_strategy(m, seed);
        let json = serde_json::to_string(&s).expect("serializes");
        let back: Strategy = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(s, back);
    }

    /// Permuting the children of any parallel node leaves the strategy equal
    /// (Observation 1: `*` is commutative).
    #[test]
    fn par_permutation_invariance(m in 2usize..7, seed in any::<u64>(), swap_seed in any::<u64>()) {
        let s = sampled_strategy(m, seed);
        // Rebuild with reversed Par children everywhere.
        fn reverse_pars(node: &Node) -> Node {
            match node {
                Node::Leaf(id) => Node::Leaf(*id),
                Node::Seq(ch) => Node::Seq(ch.iter().map(reverse_pars).collect()),
                Node::Par(ch) => {
                    let mut rev: Vec<Node> = ch.iter().map(reverse_pars).collect();
                    rev.reverse();
                    Node::Par(rev)
                }
            }
        }
        let _ = swap_seed;
        let rebuilt = Strategy::from_node(reverse_pars(s.node())).expect("still valid");
        prop_assert_eq!(s, rebuilt);
    }

    /// The strategy's leaf set is preserved by canonicalization.
    #[test]
    fn leaves_are_all_distinct_and_complete(m in 1usize..8, seed in any::<u64>()) {
        let s = sampled_strategy(m, seed);
        let mut leaves = s.leaves();
        leaves.sort_unstable();
        let expected: Vec<MsId> = (0..m).map(MsId).collect();
        prop_assert_eq!(leaves, expected);
    }

    /// Estimated reliability always equals `1 − Π(1 − r_m)` regardless of
    /// strategy shape.
    #[test]
    fn reliability_depends_only_on_the_set(m in 1usize..7, seed in any::<u64>(), env_seed in any::<u64>()) {
        let s = sampled_strategy(m, seed);
        let env = random_env(m, env_seed);
        let qos = estimate(&s, &env).expect("all ids present");
        let expected: f64 = 1.0
            - (0..m)
                .map(|i| env.get(MsId(i)).unwrap().reliability.failure_probability())
                .product::<f64>();
        prop_assert!((qos.reliability.value() - expected).abs() < 1e-9);
    }

    /// Estimated cost never exceeds the sum of all costs, and latency never
    /// exceeds the sequential sum of all latencies.
    #[test]
    fn estimates_are_bounded(m in 1usize..7, seed in any::<u64>(), env_seed in any::<u64>()) {
        let s = sampled_strategy(m, seed);
        let env = random_env(m, env_seed);
        let qos = estimate(&s, &env).expect("all ids present");
        let total_cost: f64 = (0..m).map(|i| env.get(MsId(i)).unwrap().cost).sum();
        let total_latency: f64 = (0..m).map(|i| env.get(MsId(i)).unwrap().latency).sum();
        let min_cost = (0..m).map(|i| env.get(MsId(i)).unwrap().cost).fold(f64::MAX, f64::min);
        let min_latency = (0..m)
            .map(|i| env.get(MsId(i)).unwrap().latency)
            .fold(f64::MAX, f64::min);
        prop_assert!(qos.cost <= total_cost + 1e-9);
        prop_assert!(qos.latency <= total_latency + 1e-9);
        prop_assert!(qos.cost >= min_cost - 1e-9, "at least one ms always runs");
        prop_assert!(qos.latency >= min_latency - 1e-9);
    }

    /// The timeline start of every microservice is the makespan of what must
    /// fail before it, so starts are always ≥ 0 and ends = start + latency.
    #[test]
    fn timelines_are_consistent(m in 1usize..7, seed in any::<u64>(), env_seed in any::<u64>()) {
        let s = sampled_strategy(m, seed);
        let env = random_env(m, env_seed);
        let tl = timelines(&s, &env).expect("all ids present");
        prop_assert_eq!(tl.len(), m);
        for t in &tl {
            let latency = env.get(t.ms).unwrap().latency;
            prop_assert!(t.start >= 0.0);
            prop_assert!((t.end - t.start - latency).abs() < 1e-9);
        }
    }

    /// Folding matches Algorithm 1 exactly on pure fail-over chains (no
    /// parallel short-circuiting to mis-model).
    #[test]
    fn folding_exact_on_failover(m in 1usize..7, env_seed in any::<u64>()) {
        let env = random_env(m, env_seed);
        let ids: Vec<MsId> = (0..m).map(MsId).collect();
        let s = qce_strategy::enumerate::failover(&ids).unwrap();
        let folded = estimate_folding(&s, &env).unwrap();
        let exact = estimate(&s, &env).unwrap();
        prop_assert!((folded.cost - exact.cost).abs() < 1e-6);
        prop_assert!((folded.latency - exact.latency).abs() < 1e-6);
    }

    /// No member of the Pareto front is dominated by any candidate.
    #[test]
    fn pareto_front_members_are_undominated(env_seed in any::<u64>(), n in 1usize..40) {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(env_seed);
        let candidates: Vec<Qos> = (0..n)
            .map(|_| {
                Qos::new(
                    rng.gen_range(1.0..100.0),
                    rng.gen_range(1.0..100.0),
                    rng.gen_range(0.1..0.99),
                )
                .unwrap()
            })
            .collect();
        let front = pareto_indices(&candidates);
        prop_assert!(!front.is_empty(), "front is never empty for non-empty input");
        for &i in &front {
            for (j, other) in candidates.iter().enumerate() {
                if i != j {
                    prop_assert!(!dominates(other, &candidates[i]));
                }
            }
        }
    }

    /// Utility is monotone under Pareto dominance.
    #[test]
    fn utility_monotone_under_dominance(env_seed in any::<u64>(), k in 1.1f64..10.0) {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(env_seed);
        let req = Requirements::new(100.0, 100.0, 0.9).unwrap();
        let ui = UtilityIndex::new(k).unwrap();
        let base = Qos::new(
            rng.gen_range(10.0..200.0),
            rng.gen_range(10.0..200.0),
            rng.gen_range(0.1..0.95),
        )
        .unwrap();
        let better = Qos::new(base.cost * 0.9, base.latency * 0.9, (base.reliability.value() + 0.01).min(1.0)).unwrap();
        prop_assert!(dominates(&better, &base));
        prop_assert!(ui.utility(&better, &req) > ui.utility(&base, &req));
    }

    /// The exhaustive search over all strategies is at least as good as the
    /// approximation, which is at least as good as the worse predefined
    /// pattern.
    #[test]
    fn generation_quality_ordering(m in 2usize..5, env_seed in any::<u64>()) {
        let env = random_env(m, env_seed);
        let ids: Vec<MsId> = (0..m).map(MsId).collect();
        let req = Requirements::new(100.0, 100.0, 0.97).unwrap();
        let gen = Generator::default();
        let exact = gen.exhaustive(&env, &ids, &req).unwrap();
        let approx = gen.approximation(&env, &ids, &req).unwrap();
        let fo = gen.failover(&env, &ids, &req).unwrap();
        let sp = gen.speculative_parallel(&env, &ids, &req).unwrap();
        prop_assert!(exact.utility >= approx.utility - 1e-9);
        prop_assert!(exact.utility >= fo.utility - 1e-9);
        prop_assert!(exact.utility >= sp.utility - 1e-9);
    }

    /// Every enumerated strategy for small M estimates without error and
    /// yields finite QoS.
    #[test]
    fn every_enumerated_strategy_estimates(env_seed in any::<u64>()) {
        let m = 4;
        let env = random_env(m, env_seed);
        let ids: Vec<MsId> = (0..m).map(MsId).collect();
        for s in enumerate_full(&ids) {
            let qos = estimate(&s, &env).expect("estimates");
            prop_assert!(qos.cost.is_finite());
            prop_assert!(qos.latency.is_finite());
        }
    }

    /// `map_ids` with a bijection preserves structure and round-trips.
    #[test]
    fn map_ids_bijection_round_trip(m in 1usize..7, seed in any::<u64>(), offset in 1usize..50) {
        let s = sampled_strategy(m, seed);
        let mapped = s.map_ids(|id| MsId(id.index() + offset)).unwrap();
        prop_assert_eq!(mapped.len(), s.len());
        prop_assert_eq!(mapped.depth(), s.depth());
        let back = mapped.map_ids(|id| MsId(id.index() - offset)).unwrap();
        prop_assert_eq!(back, s);
    }
}

/// Uniform sampling hits every strategy of a small space within a
/// reasonable number of draws (coupon-collector bound).
#[test]
fn sampler_eventually_covers_f3() {
    let ids: Vec<MsId> = (0..3).map(MsId).collect();
    let sampler = StrategySampler::new(&ids);
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..5000 {
        seen.insert(sampler.sample(&mut rng));
        if seen.len() == 19 {
            break;
        }
    }
    assert_eq!(seen.len(), 19);
}

/// Exhaustive enumeration at M = 6 produces exactly the count predicted by
/// the recurrence, with no duplicates (memory-light streaming check).
#[test]
fn enumeration_count_m6_matches_recurrence() {
    let ids: Vec<MsId> = (0..6).map(MsId).collect();
    let mut count = 0u128;
    qce_strategy::enumerate::for_each_full(&ids, |_| count += 1);
    assert_eq!(count, qce_strategy::enumerate::count_full(6));
}

//! `qce` — command-line front end for the strategy algebra.
//!
//! ```text
//! qce <command> [options]
//!
//! commands:
//!   estimate <expr>    estimate the QoS of a strategy expression
//!   generate           synthesize the best strategy for the environment
//!   enumerate          list/count all strategies for the environment
//!   simulate <expr>    Monte-Carlo-execute a strategy in virtual time
//!   pareto             print the Pareto-optimal strategies
//!   run                drive the full gateway feedback loop in virtual time
//!   stats              like run, then print the telemetry snapshot as JSON
//!   ctl <action> <service> <value>
//!                      like run, but apply a live override halfway
//!                      through: set-class CLASS, set-deadline MS|none, or
//!                      set-requirement COST,LATENCY_MS,RELIABILITY; prints
//!                      the override event and the per-class breakdown
//!
//! With `--scenario FILE`, `run` and `stats` replay an adversarial
//! scenario JSON file (load curves, correlated failure storms, device
//! churn — see the `qce::runtime::scenario` module) instead of the
//! `--ms`-built service, reporting per-slot satisfaction, shed rate, p99
//! latency, and post-storm adaptation lag.
//!
//! options:
//!   --ms c,l,r        add a microservice with cost, latency, reliability%
//!                     (repeatable; first is `a`, second `b`, …)
//!   --require c,l,r   QoS requirements (default 100,100,97)
//!   --k K             utility penalty factor (default 2)
//!   --method M        exhaustive | approximation | local-search |
//!                     failover | parallel | auto (default auto)
//!   --planner P       search backend: threshold | exhaustive | greedy |
//!                     beam:W | auto. For `generate` it supersedes
//!                     --method (auto falls back to the threshold rule);
//!                     for run/stats it picks the gateway's per-slot
//!                     backend, with auto running a deterministic UCB1
//!                     bandit over exhaustive/greedy/beam arms
//!   --replan-on-drift run/stats: re-plan a slot boundary only when the
//!                     observed QoS has drifted outside the plan's
//!                     quantization band (--quantize); the default
//!                     re-plans every boundary (fixed cadence)
//!   --parallelism N   generate: search worker threads (0 = auto, default)
//!   --no-pruning      generate: disable branch-and-bound pruning
//!   --runs N          simulate: executions (default 10000)
//!   --seed N          simulate/run/stats: RNG seed (default 42)
//!   --top N           enumerate/pareto: rows to print (default 10)
//!   --invocations N   run/stats: service requests to issue (default 20)
//!   --slot-size N     run/stats: requests per time slot (default 5)
//!   --quorum Q        run/stats: require Q agreeing results (§VII)
//!   --plan-cache      run/stats: cache winning plans per quantized
//!                     environment and warm-start re-planning from the
//!                     previous slot's winner
//!   --quantize Q      run/stats: plan-cache key quantization step for
//!                     observed QoS values (default 0 = exact match)
//!   --max-in-flight N run/stats: concurrent requests per service
//!                     (default 0 = unlimited); extras queue, then shed
//!   --shards N        run: drive a consistent-hash fleet of N gateway
//!                     shards (shared market + plan store) instead of a
//!                     single gateway, and print the fleet stats
//!   --deadline-ms D   run/stats: per-request deadline in virtual
//!                     milliseconds; strategy legs not yet started when it
//!                     passes are pruned
//!   --trace           run: stream telemetry events as JSON lines
//!   --scenario FILE   run/stats: replay a scenario JSON file instead of
//!                     the --ms service (ignores the other run options)
//!
//! examples:
//!   qce estimate 'c*(a*b-d*e)' --ms 50,50,60 --ms 100,100,60 \
//!       --ms 150,150,70 --ms 200,200,70 --ms 250,250,80
//!   qce generate --ms 50,50,60 --ms 100,100,60 --ms 150,150,70
//!   qce run --ms 50,5,90 --ms 50,8,90 --trace
//!   qce stats --ms 50,5,90 --ms 50,8,90 --invocations 30
//! ```

use std::process::ExitCode;
use std::time::Duration;

use std::sync::Arc;

use qce::runtime::{
    Clock, EventKind, FleetConfig, GatewayConfig, GatewayFleet, Harness, InMemoryMarket, MsSpec,
    QosClass, Request, ServiceScript, SimulatedProvider, VirtualClock,
};
use qce::sim::{simulate, Environment};
use qce::strategy::enumerate::{count_full, enumerate_full, paper};
use qce::strategy::estimate::{estimate, estimate_folding};
use qce::strategy::pareto::pareto_front;
use qce::strategy::{BackendChoice, EnvQos, Generator, Requirements, Strategy, UtilityIndex};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[derive(Debug, Clone)]
struct Options {
    triples: Vec<(f64, f64, f64)>,
    require: (f64, f64, f64),
    k: f64,
    method: String,
    planner: Option<String>,
    replan_on_drift: bool,
    parallelism: usize,
    pruning: bool,
    runs: u32,
    seed: u64,
    top: usize,
    invocations: u32,
    slot_size: u32,
    quorum: Option<usize>,
    plan_cache: bool,
    quantize: f64,
    max_in_flight: usize,
    deadline_ms: Option<u64>,
    shards: usize,
    trace: bool,
    scenario: Option<String>,
    ctl_args: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            triples: Vec::new(),
            require: (100.0, 100.0, 97.0),
            k: 2.0,
            method: "auto".to_string(),
            planner: None,
            replan_on_drift: false,
            parallelism: 0,
            pruning: true,
            runs: 10_000,
            seed: 42,
            top: 10,
            invocations: 20,
            slot_size: 5,
            quorum: None,
            plan_cache: false,
            quantize: 0.0,
            max_in_flight: 0,
            deadline_ms: None,
            shards: 0,
            trace: false,
            scenario: None,
            ctl_args: Vec::new(),
        }
    }
}

fn parse_triple(text: &str) -> Result<(f64, f64, f64), String> {
    let parts: Vec<&str> = text.split(',').collect();
    if parts.len() != 3 {
        return Err(format!("expected cost,latency,reliability%, got {text:?}"));
    }
    let parse =
        |p: &str| -> Result<f64, String> { p.trim().parse().map_err(|e| format!("{p:?}: {e}")) };
    Ok((parse(parts[0])?, parse(parts[1])?, parse(parts[2])?))
}

fn parse_args(args: &[String]) -> Result<(String, Option<String>, Options), String> {
    let mut command = None;
    let mut expr = None;
    let mut options = Options::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match arg.as_str() {
            "--ms" => options.triples.push(parse_triple(&value("--ms")?)?),
            "--require" => options.require = parse_triple(&value("--require")?)?,
            "--k" => options.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--method" => options.method = value("--method")?,
            "--planner" => options.planner = Some(value("--planner")?),
            "--replan-on-drift" => options.replan_on_drift = true,
            "--parallelism" => {
                options.parallelism = value("--parallelism")?
                    .parse()
                    .map_err(|e| format!("--parallelism: {e}"))?
            }
            "--no-pruning" => options.pruning = false,
            "--runs" => {
                options.runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--top" => options.top = value("--top")?.parse().map_err(|e| format!("--top: {e}"))?,
            "--invocations" => {
                options.invocations = value("--invocations")?
                    .parse()
                    .map_err(|e| format!("--invocations: {e}"))?
            }
            "--slot-size" => {
                options.slot_size = value("--slot-size")?
                    .parse()
                    .map_err(|e| format!("--slot-size: {e}"))?
            }
            "--quorum" => {
                options.quorum = Some(
                    value("--quorum")?
                        .parse()
                        .map_err(|e| format!("--quorum: {e}"))?,
                )
            }
            "--plan-cache" => options.plan_cache = true,
            "--quantize" => {
                options.quantize = value("--quantize")?
                    .parse()
                    .map_err(|e| format!("--quantize: {e}"))?
            }
            "--max-in-flight" => {
                options.max_in_flight = value("--max-in-flight")?
                    .parse()
                    .map_err(|e| format!("--max-in-flight: {e}"))?
            }
            "--deadline-ms" => {
                options.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                )
            }
            "--shards" => {
                options.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--trace" => options.trace = true,
            "--scenario" => options.scenario = Some(value("--scenario")?),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            positional if command.is_none() => command = Some(positional.to_string()),
            positional if expr.is_none() => expr = Some(positional.to_string()),
            // `ctl` takes extra positionals: SERVICE VALUE after the action.
            extra if command.as_deref() == Some("ctl") => {
                options.ctl_args.push(extra.to_string());
            }
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    let command = command.ok_or("no command given; try `qce generate --ms 50,50,60 …`")?;
    Ok((command, expr, options))
}

fn build_env(options: &Options) -> Result<EnvQos, String> {
    if options.triples.is_empty() {
        return Err("no microservices; pass at least one --ms cost,latency,reliability%".into());
    }
    let triples: Vec<(f64, f64, f64)> = options
        .triples
        .iter()
        .map(|&(c, l, r)| (c, l, r / 100.0))
        .collect();
    EnvQos::from_triples(&triples).map_err(|e| e.to_string())
}

fn requirements(options: &Options) -> Result<Requirements, String> {
    let (c, l, r) = options.require;
    Requirements::new(c, l, r / 100.0).map_err(|e| e.to_string())
}

/// The search backend requested with `--planner` ([`BackendChoice::Threshold`]
/// — the paper's Algorithm 2 rule — when the flag is absent).
fn planner_choice(options: &Options) -> Result<BackendChoice, String> {
    options
        .planner
        .as_deref()
        .map_or(Ok(BackendChoice::Threshold), |planner| {
            planner.parse().map_err(|e| format!("--planner: {e}"))
        })
}

/// The name the i-th `--ms` microservice gets in scripts and strategy
/// text: `a`, `b`, … like the strategy algebra's own rendering.
fn ms_name(index: usize) -> String {
    if index < 26 {
        char::from(b'a' + index as u8).to_string()
    } else {
        format!("m{index}")
    }
}

/// Builds the `run`/`stats` scenario: one gateway service
/// (`cli-service`) whose i-th microservice is hosted by one simulated
/// device with exactly the advertised cost/latency/reliability, all wired
/// to a shared virtual clock by [`Harness`].
fn build_harness(options: &Options) -> Result<Harness, String> {
    if options.triples.is_empty() {
        return Err("no microservices; pass at least one --ms cost,latency,reliability%".into());
    }
    if options.slot_size == 0 {
        return Err("--slot-size must be at least 1".into());
    }
    if !options.quantize.is_finite() || options.quantize < 0.0 {
        return Err("--quantize must be a finite value >= 0".into());
    }
    if options.deadline_ms == Some(0) {
        return Err("--deadline-ms must be at least 1".into());
    }
    let requirements = requirements(options)?;
    let mut specs = Vec::new();
    let mut builder = Harness::builder();
    for (i, &(cost, latency, reliability)) in options.triples.iter().enumerate() {
        let capability = format!("cap{i}");
        specs.push(MsSpec {
            name: ms_name(i),
            capability: capability.clone(),
            prior: qce::strategy::Qos::new(cost, latency, reliability / 100.0)
                .map_err(|e| format!("--ms #{}: {e}", i + 1))?,
        });
        builder = builder.provider(
            SimulatedProvider::builder(format!("dev{i}/{capability}"), capability)
                .cost(cost)
                .latency(Duration::from_secs_f64(latency / 1e3))
                .reliability(reliability / 100.0)
                .seed(options.seed.wrapping_add(i as u64)),
        );
    }
    let mut script = ServiceScript::new("cli-service", specs, requirements);
    script.penalty_k = options.k;
    script.slot_size = options.slot_size;
    script.quorum = options.quorum;
    script.validate().map_err(|e| e.to_string())?;
    let config = GatewayConfig::builder()
        .generator_warm_start(options.plan_cache)
        .plan_cache(options.plan_cache)
        .plan_quantize(options.quantize)
        .planner(planner_choice(options)?)
        .replan_on_drift(options.replan_on_drift)
        .max_in_flight(options.max_in_flight)
        .request_deadline(options.deadline_ms.map(Duration::from_millis))
        .build();
    Ok(builder.config(config).script(script).build())
}

/// Drives `--invocations` requests through the harness gateway; with
/// `trace`, every telemetry event is streamed to stdout as one JSON line.
fn drive_gateway(options: &Options, trace: bool) -> Result<(Harness, u32), String> {
    let harness = build_harness(options)?;
    if trace {
        harness.telemetry().set_sink(|event| {
            println!(
                "{}",
                serde_json::to_string(event).expect("telemetry events serialize")
            );
        });
    }
    let mut successes = 0;
    for _ in 0..options.invocations {
        let response = harness.invoke("cli-service").map_err(|e| e.to_string())?;
        if response.success {
            successes += 1;
        }
    }
    if trace {
        harness.telemetry().clear_sink();
    }
    Ok((harness, successes))
}

/// `run --shards N`: the same `cli-service` behind a consistent-hash
/// [`GatewayFleet`] of `N` gateway shards on a shared virtual clock —
/// one shard owns the service's feedback loop, every shard shares the
/// market and (with `--plan-cache`) one plan store. Prints the served
/// count plus `Fleet::stats()`.
fn run_fleet(options: &Options) -> Result<(), String> {
    if options.trace {
        return Err("--trace is not supported with --shards".into());
    }
    if options.triples.is_empty() {
        return Err("no microservices; pass at least one --ms cost,latency,reliability%".into());
    }
    if options.slot_size == 0 {
        return Err("--slot-size must be at least 1".into());
    }
    let requirements = requirements(options)?;
    let mut specs = Vec::new();
    for (i, &(cost, latency, reliability)) in options.triples.iter().enumerate() {
        specs.push(MsSpec {
            name: ms_name(i),
            capability: format!("cap{i}"),
            prior: qce::strategy::Qos::new(cost, latency, reliability / 100.0)
                .map_err(|e| format!("--ms #{}: {e}", i + 1))?,
        });
    }
    let mut script = ServiceScript::new("cli-service", specs, requirements);
    script.penalty_k = options.k;
    script.slot_size = options.slot_size;
    script.quorum = options.quorum;
    script.validate().map_err(|e| e.to_string())?;
    let market = InMemoryMarket::new();
    market.publish(script).map_err(|e| e.to_string())?;

    let gateway = GatewayConfig::builder()
        .generator_warm_start(options.plan_cache)
        .plan_cache(options.plan_cache)
        .plan_quantize(options.quantize)
        .planner(planner_choice(options)?)
        .replan_on_drift(options.replan_on_drift)
        .max_in_flight(options.max_in_flight)
        .request_deadline(options.deadline_ms.map(Duration::from_millis))
        .build();
    let clock = Arc::new(VirtualClock::new());
    let fleet = GatewayFleet::with_clock(
        Arc::new(market),
        FleetConfig::default()
            .shards(options.shards)
            .gateway(gateway),
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    for (i, &(cost, latency, reliability)) in options.triples.iter().enumerate() {
        let capability = format!("cap{i}");
        fleet.register(
            SimulatedProvider::builder(format!("dev{i}/{capability}"), capability)
                .cost(cost)
                .latency(Duration::from_secs_f64(latency / 1e3))
                .reliability(reliability / 100.0)
                .seed(options.seed.wrapping_add(i as u64))
                .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                .build(),
        );
    }

    let mut successes = 0u32;
    for _ in 0..options.invocations {
        let response = fleet
            .submit(Request::new("cli-service"))
            .map_err(|e| e.to_string())?;
        if response.success {
            successes += 1;
        }
    }
    let owner = fleet.route("cli-service").ok_or("fleet has no shards")?;
    let stats = fleet.stats();
    println!(
        "served   : {successes}/{} requests on shard {owner} of {} ({} virtual ms)",
        options.invocations,
        stats.shards,
        clock.now().as_millis()
    );
    println!(
        "plans    : {} hit(s) ({} remote), {} miss(es), {} stale, {} entr(ies) in the shared store",
        stats.plan_cache.hits,
        stats.plan_cache.remote_hits,
        stats.plan_cache.misses,
        stats.plan_cache.stale,
        stats.plan_cache.entries
    );
    println!(
        "scripts  : {} cache hit(s), {} fetch(es), {} expired across the shard fronts",
        stats.market.hits, stats.market.misses, stats.market.expired
    );
    for shard in &stats.per_shard {
        println!(
            "shard {:<4}: in_flight {}, frames {}, script fetches {}",
            shard.id, shard.in_flight, shard.frames_live, shard.market.misses
        );
    }
    Ok(())
}

/// Loads and replays a `--scenario FILE` on virtual time.
fn replay_scenario(path: &str) -> Result<qce::runtime::scenario::ScenarioRun, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read scenario {path}: {e}"))?;
    let scenario = qce::runtime::scenario::Scenario::from_json(&text).map_err(|e| e.to_string())?;
    qce::runtime::scenario::run_scenario(&scenario).map_err(|e| e.to_string())
}

/// Prints the per-slot QoS-consistency table of a scenario replay.
fn print_scenario_outcome(outcome: &qce::runtime::scenario::ScenarioOutcome) {
    println!(
        "scenario : {} ({} requests, satisfaction {:.1}%, shed {:.1}%)",
        outcome.name,
        outcome.total_requests,
        outcome.satisfaction_rate() * 100.0,
        outcome.shed_rate() * 100.0
    );
    println!("slot  requests  satisfied  shed  failed  satisfaction  p99_ms  storm");
    for m in &outcome.per_slot {
        println!(
            "{:<4}  {:<8}  {:<9}  {:<4}  {:<6}  {:<12.4}  {:<6.3}  {}",
            m.slot,
            m.requests,
            m.satisfied,
            m.shed,
            m.failed,
            m.satisfaction_rate,
            m.p99_latency_ms,
            outcome.is_storm_slot(m.slot)
        );
    }
    for (storm, lag) in outcome.adaptation_lags(0.8) {
        match lag {
            Some(lag) => println!("storm    : {storm} — recovered to 0.8 within {lag} slot(s)"),
            None => println!("storm    : {storm} — satisfaction never recovered to 0.8"),
        }
    }
}

fn run(command: &str, expr: Option<&str>, options: &Options) -> Result<(), String> {
    match command {
        "estimate" => {
            let env = build_env(options)?;
            let text = expr.ok_or("estimate needs a strategy expression")?;
            let strategy = Strategy::parse(text).map_err(|e| e.to_string())?;
            let qos = estimate(&strategy, &env).map_err(|e| e.to_string())?;
            let folded = estimate_folding(&strategy, &env).map_err(|e| e.to_string())?;
            let req = requirements(options)?;
            let ui = UtilityIndex::new(options.k).map_err(|e| e.to_string())?;
            println!("strategy    : {strategy}");
            println!("Algorithm 1 : {qos}");
            println!("folding [15]: {folded}");
            println!("utility     : {:+.3} against {req}", ui.utility(&qos, &req));
            Ok(())
        }
        "generate" => {
            let env = build_env(options)?;
            let req = requirements(options)?;
            let ui = UtilityIndex::new(options.k).map_err(|e| e.to_string())?;
            let generator = Generator::builder()
                .utility(ui)
                .threshold(6)
                .parallelism(options.parallelism)
                .pruning(options.pruning)
                .build();
            let ids = env.ids();
            // --planner routes through the pluggable backend pipeline and
            // supersedes --method; without it the historical method names
            // dispatch as before.
            let generated = if options.planner.is_some() {
                generator.generate_with(planner_choice(options)?, &env, &ids, &req)
            } else {
                match options.method.as_str() {
                    "auto" => generator.generate(&env, &ids, &req),
                    "exhaustive" => generator.exhaustive(&env, &ids, &req),
                    "approximation" => generator.approximation(&env, &ids, &req),
                    "local-search" => generator.local_search(&env, &ids, &req),
                    "failover" => generator.failover(&env, &ids, &req),
                    "parallel" => generator.speculative_parallel(&env, &ids, &req),
                    other => return Err(format!("unknown method {other:?}")),
                }
            }
            .map_err(|e| e.to_string())?;
            println!("{generated}");
            let report = generated.report;
            println!(
                "search   : {} estimated + {} pruned of {} candidates in {:.3} ms",
                report.candidates_seen,
                report.candidates_pruned,
                generated.evaluated,
                report.elapsed.as_secs_f64() * 1e3
            );
            let violations = req.violations(&generated.qos);
            if violations.is_empty() {
                println!("satisfies every requirement of {req}");
            } else {
                println!(
                    "advisory: misses {} requirement(s) of {req}: {}",
                    violations.len(),
                    violations
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            Ok(())
        }
        "enumerate" => {
            let env = build_env(options)?;
            let m = env.len();
            if m > 6 {
                return Err(
                    "enumerate materializes all strategies; at most 6 microservices".into(),
                );
            }
            println!(
                "{} semantically distinct strategies over {m} microservices \
                 (the paper's Table I counts {})",
                count_full(m),
                paper::count_table1(m)
            );
            let req = requirements(options)?;
            let ui = UtilityIndex::new(options.k).map_err(|e| e.to_string())?;
            let mut scored: Vec<(Strategy, f64)> = enumerate_full(&env.ids())
                .into_iter()
                .map(|s| {
                    let qos = estimate(&s, &env).expect("environment covers ids");
                    let u = ui.utility(&qos, &req);
                    (s, u)
                })
                .collect();
            scored.sort_by(|(_, a), (_, b)| b.partial_cmp(a).expect("finite"));
            println!("top {} by utility:", options.top.min(scored.len()));
            for (s, u) in scored.iter().take(options.top) {
                println!("  U={u:+.3}  {s}");
            }
            Ok(())
        }
        "simulate" => {
            let env = build_env(options)?;
            let text = expr.ok_or("simulate needs a strategy expression")?;
            let strategy = Strategy::parse(text).map_err(|e| e.to_string())?;
            let triples: Vec<(f64, f64, f64)> = options
                .triples
                .iter()
                .map(|&(c, l, r)| (c, l, r / 100.0))
                .collect();
            let sim_env = Environment::from_triples(&triples).map_err(|e| e.to_string())?;
            let estimated = estimate(&strategy, &env).map_err(|e| e.to_string())?;
            let mut rng = ChaCha8Rng::seed_from_u64(options.seed);
            let stats =
                simulate(&strategy, &sim_env, options.runs, &mut rng).map_err(|e| e.to_string())?;
            println!(
                "strategy : {strategy}  ({} virtual executions)",
                options.runs
            );
            println!("estimated: {estimated}");
            println!(
                "measured : [cost={:.1}, latency={:.1}, reliability={:.1}%] \
                 (σ_latency={:.1})",
                stats.mean_cost,
                stats.mean_latency,
                stats.success_rate * 100.0,
                stats.std_latency
            );
            Ok(())
        }
        "pareto" => {
            let env = build_env(options)?;
            if env.len() > 6 {
                return Err("pareto materializes all strategies; at most 6 microservices".into());
            }
            let scored: Vec<(Strategy, qce::strategy::Qos)> = enumerate_full(&env.ids())
                .into_iter()
                .map(|s| {
                    let qos = estimate(&s, &env).expect("environment covers ids");
                    (s, qos)
                })
                .collect();
            let total = scored.len();
            let mut front = pareto_front(scored, |(_, q)| *q);
            front.sort_by(|(_, a), (_, b)| a.cost.partial_cmp(&b.cost).expect("finite"));
            println!("{} Pareto-optimal strategies of {total}:", front.len());
            for (s, q) in front.iter().take(options.top) {
                println!("  {s:<22} {q}");
            }
            if front.len() > options.top {
                println!("  … and {} more (raise --top)", front.len() - options.top);
            }
            Ok(())
        }
        "run" => {
            if options.shards > 0 {
                if options.scenario.is_some() {
                    return Err("--shards and --scenario are mutually exclusive".into());
                }
                return run_fleet(options);
            }
            if let Some(path) = &options.scenario {
                let run = replay_scenario(path)?;
                print_scenario_outcome(&run.outcome);
                return Ok(());
            }
            let (harness, successes) = drive_gateway(options, options.trace)?;
            let snapshot = harness.telemetry().snapshot();
            let service = snapshot
                .service("cli-service")
                .ok_or("no requests were recorded")?;
            println!(
                "served   : {successes}/{} requests over {} slot(s) of {} \
                 ({} virtual ms)",
                options.invocations,
                harness.gateway().slot_history("cli-service").len(),
                options.slot_size,
                harness.clock().now().as_millis()
            );
            println!(
                "planning : {} re-plan(s), {} strategy switch(es), \
                 {} candidate(s) searched",
                service.replans, service.strategy_switches, service.candidates_seen
            );
            if options.plan_cache {
                println!(
                    "caching  : {} cold / {} warm-start / {} cached plan(s); \
                     {} hit(s), {} miss(es), {} stale",
                    service.plans_cold,
                    service.plans_warm_start,
                    service.plans_cached,
                    service.plan_cache_hits,
                    service.plan_cache_misses,
                    service.plan_cache_stale
                );
            }
            if let Some(strategy) = harness.gateway().current_strategy("cli-service") {
                println!("strategy : {strategy}");
            }
            Ok(())
        }
        "stats" => {
            if let Some(path) = &options.scenario {
                let run = replay_scenario(path)?;
                print_scenario_outcome(&run.outcome);
                let snapshot = run.harness.telemetry().snapshot();
                println!(
                    "{}",
                    serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?
                );
                return Ok(());
            }
            let (harness, _) = drive_gateway(options, false)?;
            let snapshot = harness.telemetry().snapshot();
            println!(
                "{}",
                serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?
            );
            Ok(())
        }
        "ctl" => {
            let action =
                expr.ok_or("ctl expects an action: set-class, set-deadline or set-requirement")?;
            let (service, value) = match options.ctl_args.as_slice() {
                [service, value] => (service.clone(), value.clone()),
                _ => return Err(format!("ctl {action} expects SERVICE VALUE")),
            };
            // Parse the override up front so a bad value fails before the
            // run starts, not halfway through it.
            enum Override {
                Class(QosClass),
                Deadline(Option<Duration>),
                Requirement(Requirements),
            }
            let along = match action {
                "set-class" => Override::Class(value.parse()?),
                "set-deadline" => Override::Deadline(if value == "none" {
                    None
                } else {
                    let ms: u64 = value.parse().map_err(|e| format!("set-deadline: {e}"))?;
                    Some(Duration::from_millis(ms))
                }),
                "set-requirement" => {
                    Override::Requirement(value.parse().map_err(|e| format!("{e}"))?)
                }
                other => {
                    return Err(format!(
                        "unknown ctl action {other:?}; try set-class, set-deadline \
                         or set-requirement"
                    ))
                }
            };
            // Drive the same gateway as `run`, applying the override live
            // at the halfway mark — mid-slot, no re-plan.
            let harness = build_harness(options)?;
            let switch_at = options.invocations / 2;
            let mut successes = 0u32;
            for done in 0..options.invocations {
                if done == switch_at {
                    let control = harness.gateway().control();
                    match &along {
                        Override::Class(class) => control.set_class(&service, *class),
                        Override::Deadline(deadline) => control.set_deadline(&service, *deadline),
                        Override::Requirement(requirement) => {
                            control.set_requirement(&service, *requirement);
                        }
                    }
                }
                let response = harness.invoke("cli-service").map_err(|e| e.to_string())?;
                if response.success {
                    successes += 1;
                }
            }
            for event in harness.telemetry().events() {
                if let EventKind::OverrideApplied {
                    service,
                    field,
                    value,
                } = &event.kind
                {
                    println!("override : {service} {field} = {value}");
                }
            }
            println!("served   : {successes}/{} requests", options.invocations);
            let snapshot = harness.telemetry().snapshot();
            let service = snapshot
                .service("cli-service")
                .ok_or("no requests were recorded")?;
            for class in &service.classes {
                println!(
                    "{:<11}: {} request(s), {} shed, {} queued at peak",
                    class.class.to_string(),
                    class.requests,
                    class.shed,
                    class.queue_peak
                );
            }
            Ok(())
        }
        other => Err(format!(
            "unknown command {other:?}; try estimate, generate, enumerate, \
             simulate, pareto, run, stats, ctl"
        )),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok((command, expr, options)) => match run(&command, expr.as_deref(), &options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("see `src/bin/qce.rs` header for usage");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parse_triple_accepts_and_rejects() {
        assert_eq!(parse_triple("50,60,70").unwrap(), (50.0, 60.0, 70.0));
        assert_eq!(parse_triple(" 1 , 2 , 3 ").unwrap(), (1.0, 2.0, 3.0));
        assert!(parse_triple("1,2").is_err());
        assert!(parse_triple("1,2,x").is_err());
    }

    #[test]
    fn parse_args_full_command() {
        let (command, expr, options) = parse_args(&args(&[
            "estimate",
            "a-b",
            "--ms",
            "50,50,60",
            "--ms",
            "100,100,60",
            "--k",
            "3",
            "--require",
            "200,90,95",
            "--top",
            "4",
        ]))
        .unwrap();
        assert_eq!(command, "estimate");
        assert_eq!(expr.as_deref(), Some("a-b"));
        assert_eq!(options.triples.len(), 2);
        assert_eq!(options.k, 3.0);
        assert_eq!(options.require, (200.0, 90.0, 95.0));
        assert_eq!(options.top, 4);
    }

    #[test]
    fn parse_args_rejects_garbage() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["generate", "--ms"])).is_err());
        assert!(parse_args(&args(&["generate", "--nope", "1"])).is_err());
        assert!(parse_args(&args(&["estimate", "a", "b", "c"])).is_err());
    }

    #[test]
    fn run_generate_end_to_end() {
        let (_, _, mut options) = parse_args(&args(&[
            "generate",
            "--ms",
            "50,50,60",
            "--ms",
            "100,100,60",
        ]))
        .unwrap();
        assert!(run("generate", None, &options).is_ok());
        assert!(run("enumerate", None, &options).is_ok());
        assert!(run("pareto", None, &options).is_ok());
        assert!(run("estimate", Some("a-b"), &options).is_ok());
        assert!(run("estimate", Some("a-a"), &options).is_err());
        assert!(run("estimate", None, &options).is_err());
        options.runs = 50;
        assert!(run("simulate", Some("a*b"), &options).is_ok());
        assert!(run("bogus", None, &options).is_err());
        options.triples.clear();
        assert!(run("generate", None, &options).is_err(), "no microservices");
    }

    #[test]
    fn run_rejects_oversized_enumeration() {
        let options = Options {
            triples: vec![(50.0, 50.0, 60.0); 7],
            ..Options::default()
        };
        assert!(run("enumerate", None, &options).is_err());
        assert!(run("pareto", None, &options).is_err());
    }

    #[test]
    fn parse_args_engine_flags() {
        let (_, _, options) = parse_args(&args(&[
            "generate",
            "--ms",
            "50,50,60",
            "--ms",
            "100,100,60",
            "--parallelism",
            "2",
            "--no-pruning",
        ]))
        .unwrap();
        assert_eq!(options.parallelism, 2);
        assert!(!options.pruning);
        assert!(run("generate", None, &options).is_ok());
        assert!(parse_args(&args(&["generate", "--parallelism", "x"])).is_err());
    }

    #[test]
    fn unknown_method_rejected() {
        let options = Options {
            triples: vec![(50.0, 50.0, 60.0), (60.0, 60.0, 70.0)],
            method: "zigzag".to_string(),
            ..Options::default()
        };
        assert!(run("generate", None, &options).is_err());
    }

    #[test]
    fn parse_args_gateway_flags() {
        let (command, _, options) = parse_args(&args(&[
            "run",
            "--ms",
            "50,5,90",
            "--invocations",
            "12",
            "--slot-size",
            "4",
            "--quorum",
            "2",
            "--trace",
        ]))
        .unwrap();
        assert_eq!(command, "run");
        assert_eq!(options.invocations, 12);
        assert_eq!(options.slot_size, 4);
        assert_eq!(options.quorum, Some(2));
        assert!(options.trace);
        assert!(parse_args(&args(&["run", "--invocations", "x"])).is_err());
        assert!(parse_args(&args(&["run", "--quorum"])).is_err());
    }

    #[test]
    fn parse_args_admission_flags() {
        let (_, _, options) = parse_args(&args(&[
            "run",
            "--ms",
            "50,5,90",
            "--max-in-flight",
            "2",
            "--deadline-ms",
            "25",
        ]))
        .unwrap();
        assert_eq!(options.max_in_flight, 2);
        assert_eq!(options.deadline_ms, Some(25));
        let (_, _, options) = parse_args(&args(&["run", "--ms", "50,5,90"])).unwrap();
        assert_eq!(options.max_in_flight, 0, "unlimited by default");
        assert_eq!(options.deadline_ms, None, "no deadline by default");
        assert!(parse_args(&args(&["run", "--max-in-flight", "x"])).is_err());
        assert!(parse_args(&args(&["run", "--max-in-flight"])).is_err());
        assert!(parse_args(&args(&["run", "--deadline-ms", "1.5"])).is_err());
        assert!(parse_args(&args(&["run", "--deadline-ms"])).is_err());
    }

    #[test]
    fn bounded_gateway_run_still_serves() {
        // With admission bounds and a generous deadline the sequential CLI
        // driver never queues or sheds: the run is identical to unbounded.
        let options = Options {
            triples: vec![(50.0, 5.0, 95.0), (50.0, 8.0, 95.0)],
            require: (200.0, 100.0, 50.0),
            invocations: 12,
            slot_size: 4,
            max_in_flight: 1,
            deadline_ms: Some(1_000),
            ..Options::default()
        };
        let (harness, successes) = drive_gateway(&options, false).unwrap();
        let unbounded = Options {
            max_in_flight: 0,
            deadline_ms: None,
            ..options
        };
        let (_, baseline) = drive_gateway(&unbounded, false).unwrap();
        assert_eq!(successes, baseline);
        let snapshot = harness.telemetry().snapshot();
        let service = snapshot.service("cli-service").unwrap();
        assert_eq!(service.requests_shed, 0);
        assert_eq!(service.deadline_exceeded, 0);
    }

    #[test]
    fn parse_args_planner_flags() {
        let (_, _, options) = parse_args(&args(&[
            "run",
            "--ms",
            "50,5,90",
            "--planner",
            "beam:2",
            "--replan-on-drift",
        ]))
        .unwrap();
        assert_eq!(options.planner.as_deref(), Some("beam:2"));
        assert!(options.replan_on_drift);
        let (_, _, options) = parse_args(&args(&["run", "--ms", "50,5,90"])).unwrap();
        assert_eq!(options.planner, None, "paper threshold rule by default");
        assert!(!options.replan_on_drift, "fixed cadence by default");
        assert!(parse_args(&args(&["run", "--planner"])).is_err());
    }

    #[test]
    fn generate_routes_through_the_planner_backends() {
        let base = Options {
            triples: vec![
                (50.0, 50.0, 60.0),
                (100.0, 100.0, 60.0),
                (150.0, 150.0, 70.0),
            ],
            ..Options::default()
        };
        for planner in ["exhaustive", "greedy", "beam:2", "auto", "threshold"] {
            let options = Options {
                planner: Some(planner.into()),
                ..base.clone()
            };
            assert!(
                run("generate", None, &options).is_ok(),
                "--planner {planner}"
            );
        }
        let bogus = Options {
            planner: Some("zigzag".into()),
            ..base.clone()
        };
        assert!(run("generate", None, &bogus).is_err(), "unknown backend");
        let zero_width = Options {
            planner: Some("beam:0".into()),
            ..base
        };
        assert!(run("generate", None, &zero_width).is_err(), "empty beam");
    }

    #[test]
    fn drift_run_replans_less_than_cadence() {
        let base = Options {
            triples: vec![(50.0, 5.0, 100.0), (50.0, 8.0, 100.0)],
            require: (200.0, 100.0, 50.0),
            invocations: 20,
            slot_size: 4,
            quantize: 0.25,
            ..Options::default()
        };
        let (cadence, cadence_ok) = drive_gateway(&base, false).unwrap();
        let drifted = Options {
            replan_on_drift: true,
            planner: Some("auto".into()),
            ..base.clone()
        };
        let (drift, drift_ok) = drive_gateway(&drifted, false).unwrap();
        assert_eq!(cadence_ok, drift_ok, "reliable devices either way");
        let cadence_snapshot = cadence.telemetry().snapshot();
        let cadence_svc = cadence_snapshot.service("cli-service").unwrap();
        let drift_snapshot = drift.telemetry().snapshot();
        let drift_svc = drift_snapshot.service("cli-service").unwrap();
        assert!(
            drift_svc.replans < cadence_svc.replans,
            "drift mode re-planned {} times, cadence {}",
            drift_svc.replans,
            cadence_svc.replans
        );
        assert!(drift_svc.drift_holds > 0, "stable boundaries were held");
        assert!(run("run", None, &drifted).is_ok(), "prints the run summary");
        let bad = Options {
            planner: Some("zigzag".into()),
            ..base
        };
        assert!(run("run", None, &bad).is_err(), "unknown backend rejected");
    }

    #[test]
    fn parse_args_shards_flag() {
        let (_, _, options) =
            parse_args(&args(&["run", "--ms", "50,5,90", "--shards", "3"])).unwrap();
        assert_eq!(options.shards, 3);
        let (_, _, options) = parse_args(&args(&["run", "--ms", "50,5,90"])).unwrap();
        assert_eq!(options.shards, 0, "single gateway by default");
        assert!(parse_args(&args(&["run", "--shards", "x"])).is_err());
        assert!(parse_args(&args(&["run", "--shards"])).is_err());
    }

    #[test]
    fn fleet_run_serves_and_prints_stats() {
        let options = Options {
            triples: vec![(50.0, 5.0, 95.0), (50.0, 8.0, 95.0)],
            require: (200.0, 100.0, 50.0),
            invocations: 12,
            slot_size: 4,
            shards: 3,
            plan_cache: true,
            ..Options::default()
        };
        assert!(run("run", None, &options).is_ok());
        let conflicted = Options {
            scenario: Some("pack/calm.json".into()),
            ..options.clone()
        };
        assert!(
            run("run", None, &conflicted).is_err(),
            "--shards and --scenario are mutually exclusive"
        );
        let traced = Options {
            trace: true,
            ..options.clone()
        };
        assert!(
            run("run", None, &traced).is_err(),
            "--trace needs one gateway"
        );
        let empty = Options {
            triples: Vec::new(),
            ..options
        };
        assert!(run("run", None, &empty).is_err(), "no microservices");
    }

    #[test]
    fn parse_args_plan_cache_flags() {
        let (_, _, options) = parse_args(&args(&[
            "run",
            "--ms",
            "50,5,90",
            "--plan-cache",
            "--quantize",
            "0.5",
        ]))
        .unwrap();
        assert!(options.plan_cache);
        assert_eq!(options.quantize, 0.5);
        let (_, _, options) = parse_args(&args(&["run", "--ms", "50,5,90"])).unwrap();
        assert!(!options.plan_cache, "caching is opt-in");
        assert_eq!(options.quantize, 0.0);
        assert!(parse_args(&args(&["run", "--quantize", "x"])).is_err());
        assert!(parse_args(&args(&["run", "--quantize"])).is_err());
    }

    #[test]
    fn cached_run_serves_like_a_cold_run() {
        let mut options = Options {
            triples: vec![(50.0, 5.0, 95.0), (50.0, 8.0, 95.0)],
            require: (200.0, 100.0, 50.0),
            invocations: 12,
            slot_size: 4,
            ..Options::default()
        };
        let (cold, cold_ok) = drive_gateway(&options, false).unwrap();
        options.plan_cache = true;
        let (warm, warm_ok) = drive_gateway(&options, false).unwrap();
        assert_eq!(cold_ok, warm_ok, "same virtual run, same outcomes");
        assert_eq!(
            cold.gateway()
                .current_strategy("cli-service")
                .map(|s| s.to_string()),
            warm.gateway()
                .current_strategy("cli-service")
                .map(|s| s.to_string()),
        );
        let snapshot = warm.telemetry().snapshot();
        let service = snapshot.service("cli-service").unwrap();
        assert_eq!(
            service.plan_cache_hits + service.plan_cache_misses,
            service.replans - 1,
            "every synthesized plan consults the cache when --plan-cache is \
             on (slot 0 takes the script default without searching)"
        );
        assert!(run("run", None, &options).is_ok(), "prints the cache line");
    }

    #[test]
    fn run_and_stats_drive_the_gateway() {
        let options = Options {
            triples: vec![(50.0, 5.0, 95.0), (50.0, 8.0, 95.0)],
            require: (200.0, 100.0, 50.0),
            invocations: 12,
            slot_size: 4,
            ..Options::default()
        };
        assert!(run("run", None, &options).is_ok());
        assert!(run("stats", None, &options).is_ok());
    }

    #[test]
    fn parse_args_ctl_positionals() {
        let (command, expr, options) =
            parse_args(&args(&["ctl", "set-class", "cli-service", "critical"])).unwrap();
        assert_eq!(command, "ctl");
        assert_eq!(expr.as_deref(), Some("set-class"));
        assert_eq!(options.ctl_args, vec!["cli-service", "critical"]);
        // Only `ctl` accepts extra positionals (see parse_args_rejects_garbage).
    }

    #[test]
    fn ctl_applies_overrides_and_rejects_bad_input() {
        let options = Options {
            triples: vec![(50.0, 5.0, 95.0), (50.0, 8.0, 95.0)],
            require: (200.0, 100.0, 50.0),
            invocations: 8,
            slot_size: 4,
            ctl_args: vec!["cli-service".into(), "bulk".into()],
            ..Options::default()
        };
        assert!(run("ctl", Some("set-class"), &options).is_ok());
        assert!(
            run("ctl", Some("set-class"), &Options::default()).is_err(),
            "missing SERVICE VALUE"
        );
        let bad = Options {
            ctl_args: vec!["cli-service".into(), "frantic".into()],
            ..options.clone()
        };
        assert!(
            run("ctl", Some("set-class"), &bad).is_err(),
            "unknown class"
        );
        let bad_deadline = Options {
            ctl_args: vec!["cli-service".into(), "soon".into()],
            ..options
        };
        assert!(run("ctl", Some("set-deadline"), &bad_deadline).is_err());
    }

    #[test]
    fn gateway_run_is_deterministic_and_counted() {
        let options = Options {
            triples: vec![(50.0, 5.0, 90.0), (50.0, 8.0, 90.0)],
            require: (200.0, 100.0, 50.0),
            invocations: 12,
            slot_size: 4,
            ..Options::default()
        };
        let snapshots: Vec<String> = (0..2)
            .map(|_| {
                let (harness, _) = drive_gateway(&options, false).unwrap();
                let mut snapshot = harness.telemetry().snapshot();
                let service = snapshot.service("cli-service").unwrap();
                assert_eq!(service.invocations, 12);
                assert_eq!(service.replans, 3);
                // The generator measures its search time on the wall clock,
                // so elapsed fields are the one nondeterministic part.
                for service in &mut snapshot.services {
                    service.synthesis_elapsed = Duration::ZERO;
                }
                for event in &mut snapshot.recent_events {
                    if let qce::runtime::EventKind::SlotReplanned { elapsed, .. } = &mut event.kind
                    {
                        *elapsed = Duration::ZERO;
                    }
                }
                serde_json::to_string(&snapshot).unwrap()
            })
            .collect();
        assert_eq!(
            snapshots[0], snapshots[1],
            "same seed, same virtual-time run, same snapshot"
        );
    }

    #[test]
    fn gateway_run_rejects_bad_scenarios() {
        let mut options = Options::default();
        assert!(build_harness(&options).is_err(), "no microservices");
        options.triples = vec![(50.0, 5.0, 90.0)];
        options.slot_size = 0;
        assert!(build_harness(&options).is_err(), "zero slot size");
        options.slot_size = 5;
        options.quorum = Some(0);
        assert!(build_harness(&options).is_err(), "zero quorum");
        options.quorum = None;
        options.quantize = -0.5;
        assert!(build_harness(&options).is_err(), "negative quantum");
        options.quantize = f64::NAN;
        assert!(build_harness(&options).is_err(), "non-finite quantum");
        options.quantize = 0.0;
        options.deadline_ms = Some(0);
        assert!(build_harness(&options).is_err(), "zero deadline");
    }

    #[test]
    fn scenario_flag_replays_a_file() {
        let (_, _, options) = parse_args(&args(&["run", "--scenario", "pack/calm.json"])).unwrap();
        assert_eq!(options.scenario.as_deref(), Some("pack/calm.json"));
        assert!(parse_args(&args(&["run", "--scenario"])).is_err());

        let dir = std::env::temp_dir().join(format!("qce-cli-scenario-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("calm.json");
        std::fs::write(
            &path,
            r#"{
                "name": "cli-smoke", "seed": 5,
                "slots": 2, "slot_ms": 100, "requests_per_slot": 4,
                "services": [{
                    "name": "svc",
                    "microservices": [
                        {"name": "a", "cost": 10.0, "latency_ms": 4.0, "reliability": 1.0}
                    ],
                    "require": {"cost": 100.0, "latency_ms": 50.0, "reliability": 0.9}
                }]
            }"#,
        )
        .unwrap();
        let options = Options {
            scenario: Some(path.to_string_lossy().into_owned()),
            ..Options::default()
        };
        assert!(run("run", None, &options).is_ok());
        assert!(run("stats", None, &options).is_ok());

        // Missing files and malformed scenarios are reported, not panicked.
        let missing = Options {
            scenario: Some(dir.join("nope.json").to_string_lossy().into_owned()),
            ..Options::default()
        };
        assert!(run("run", None, &missing).is_err());
        std::fs::write(&path, "{}").unwrap();
        assert!(run("run", None, &options).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ms_names_follow_the_algebra() {
        assert_eq!(ms_name(0), "a");
        assert_eq!(ms_name(25), "z");
        assert_eq!(ms_name(26), "m26");
    }
}

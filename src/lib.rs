//! # qce — QoS-consistent edge services with unreliable and dynamic resources
//!
//! Façade crate for the reproduction of *"Win with What You Have:
//! QoS-Consistent Edge Services with Unreliable and Dynamic Resources"*
//! (Song & Tilevich, ICDCS 2020). It re-exports the three library crates
//! of the workspace:
//!
//! * [`strategy`] (`qce-strategy`) — the paper's core contribution: the
//!   execution-strategy algebra over equivalent microservices, strategy
//!   enumeration, the Algorithm 1 QoS estimator, the utility index, and
//!   the Algorithm 2 generator;
//! * [`sim`] (`qce-sim`) — the stochastic edge-environment simulator and
//!   virtual-time executor behind the paper's simulation experiments;
//! * [`runtime`] (`qce-runtime`) — the MOLE-extended edge gateway: service
//!   scripts, cloud market, device registry, threaded strategy executor,
//!   QoS collector, and the per-time-slot feedback loop.
//!
//! Depend on the individual crates for finer-grained builds, or on this
//! crate for everything at once. The workspace also ships a `qce` binary
//! (this crate's `src/bin/qce.rs`) for command-line experimentation and a
//! `repro` binary (`qce-bench`) that regenerates every table and figure of
//! the paper's evaluation.
//!
//! ## End-to-end example
//!
//! ```
//! use qce::strategy::{EnvQos, Generator, Requirements};
//! use qce::sim::{simulate, Environment};
//! use rand::SeedableRng;
//!
//! // Synthesize the best strategy for three equivalent microservices…
//! let env = EnvQos::from_triples(&[
//!     (50.0, 50.0, 0.6),
//!     (100.0, 100.0, 0.6),
//!     (150.0, 150.0, 0.7),
//! ])?;
//! let req = Requirements::new(100.0, 100.0, 0.97)?;
//! let generated = Generator::default().generate(&env, &env.ids(), &req)?;
//!
//! // …and confirm its estimated QoS by simulation.
//! let sim_env = Environment::from_triples(&[
//!     (50.0, 50.0, 0.6),
//!     (100.0, 100.0, 0.6),
//!     (150.0, 150.0, 0.7),
//! ])?;
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let measured = simulate(&generated.strategy, &sim_env, 20_000, &mut rng)?;
//! assert!((measured.mean_cost - generated.qos.cost).abs() / generated.qos.cost < 0.05);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use qce_runtime as runtime;
pub use qce_sim as sim;
pub use qce_strategy as strategy;

/// Compiles the README's code blocks as doctests, so the examples shown
/// there (including the `Harness` walkthrough under "Testing") can never
/// drift from the actual API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

//! Vendored offline shim for the subset of `serde_json` this workspace
//! uses: [`to_string`], [`to_string_pretty`], [`from_str`], and the
//! [`Value`]/[`Map`] tree (re-exported from the `serde` shim).
//!
//! The build environment has no network access and no crates.io mirror, so
//! external dependencies are vendored as minimal API-compatible shims (see
//! `compat/README.md`). Numbers print with Rust's shortest round-trip
//! float formatting, so `value == from_str(&to_string(&value))` holds for
//! every finite number; non-finite floats serialize as `null` (matching
//! upstream).

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::{Map, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &serde::__to_value(value)?, None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON (2-space indentation).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &serde::__to_value(value)?, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::de::DeserializeOwned>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    serde::__from_value(&value).map_err(Error::from)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    serde::__to_value(value).map_err(Error::from)
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T> {
    serde::__from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(n) => {
            if n.is_finite() {
                // `{:?}` is Rust's shortest round-trip representation and
                // always keeps a `.0` on integral floats.
                out.push_str(&format!("{n:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // printer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for n in [0.1, 1.0 / 3.0, 1e300, -2.5e-8, 123456789.123456] {
            let v = Value::Float(n);
            let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a":[1,2.5,"x"],"b":{"c":null},"d":true}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Value = from_str(r#"{"a":[1],"b":{}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes() {
        let original = Value::Str("line\nquote\"slash\\tab\tunicode\u{1}".into());
        let text = to_string(&original).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}

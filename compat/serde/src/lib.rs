//! Vendored offline shim for the subset of `serde` this workspace uses.
//!
//! The build environment has no network access and no crates.io mirror, so
//! external dependencies are vendored as minimal API-compatible shims (see
//! `compat/README.md`). Unlike upstream serde's visitor architecture, this
//! shim (de)serializes through an owned JSON-like [`Value`] tree:
//! [`Serialize`] renders a value to a [`Value`], [`Deserialize`] rebuilds
//! one from it. `#[derive(Serialize, Deserialize)]` is provided by the
//! companion `serde_derive` shim and targets these traits; `serde_json`
//! handles the text round-trip. External enum tagging, `transparent`
//! newtype structs, and `#[serde(default)]` match upstream wire formats.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the interchange format between [`Serialize`],
/// [`Deserialize`], and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (insertion-ordered).
    Object(Map),
}

impl Value {
    /// Borrows the object map if this value is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Mutably borrows the object map if this value is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Borrows the string if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the array if this value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            Value::Float(n) => Some(n),
            _ => None,
        }
    }

    /// Returns the value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Looks up a key if this value is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|map| map.get(key))
    }

    /// One-word description of the value's kind, for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::UInt(_) | Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    /// Renders compact JSON (matching `serde_json::to_string`, including
    /// shortest-round-trip float formatting).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::UInt(n) => write!(f, "{n}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(n) if n.is_finite() => write!(f, "{n:?}"),
            Value::Float(_) => f.write_str("null"),
            Value::Str(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (key, item)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, key)?;
                    write!(f, ":{item}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes a JSON-escaped string literal.
fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_str(c.encode_utf8(&mut [0u8; 4]))?,
        }
    }
    f.write_str("\"")
}

/// An insertion-ordered string-keyed map of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Inserts a key, replacing (in place) any existing entry.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// (De)serialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any displayable message (upstream
    /// `de::Error::custom` / `ser::Error::custom`).
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Standard "missing field" error.
    pub fn missing_field(type_name: &str, field: &str) -> Self {
        Error::custom(format!("missing field `{field}` in {type_name}"))
    }

    /// Standard "wrong shape" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Upstream-compatible module path for `serde::de::Error`.
pub mod de {
    /// Deserialization error alias (`serde::de::Error`).
    pub use crate::Error;
}

/// Upstream-compatible module path for `serde::ser::Error`.
pub mod ser {
    /// Serialization error alias (`serde::ser::Error`).
    pub use crate::Error;
}

/// Renders `self` into the [`Value`] interchange tree.
pub trait Serialize {
    /// Converts to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from the [`Value`] interchange tree.
pub trait Deserialize: Sized {
    /// Converts from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("boolean", value))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", value))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n: i64 = match *value {
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range")))?,
                    Value::Int(i) => i,
                    _ => return Err(Error::expected("integer", value)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        i64::from_value(value).and_then(|n| {
            isize::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range")))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::expected("2-element array", value))?;
        if items.len() != 2 {
            return Err(Error::custom(format!(
                "expected 2-element array, found {} elements",
                items.len()
            )));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        // Upstream serde's wire format for Duration.
        let mut map = Map::new();
        map.insert("secs", Value::UInt(self.as_secs()));
        map.insert("nanos", Value::UInt(u64::from(self.subsec_nanos())));
        Value::Object(map)
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let map = value
            .as_object()
            .ok_or_else(|| Error::expected("duration object", value))?;
        let secs = u64::from_value(
            map.get("secs")
                .ok_or_else(|| Error::missing_field("Duration", "secs"))?,
        )?;
        let nanos = u32::from_value(
            map.get("nanos")
                .ok_or_else(|| Error::missing_field("Duration", "nanos"))?,
        )?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Some(3u32).to_value(), Value::UInt(3));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::UInt(3)).unwrap(), Some(3));
    }

    #[test]
    fn duration_round_trip() {
        let d = Duration::new(3, 500_000_000);
        let v = d.to_value();
        assert_eq!(Duration::from_value(&v).unwrap(), d);
    }

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut map = Map::new();
        map.insert("b", Value::UInt(1));
        map.insert("a", Value::UInt(2));
        map.insert("b", Value::UInt(3));
        let keys: Vec<&str> = map.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(map.get("b"), Some(&Value::UInt(3)));
        assert_eq!(map.remove("b"), Some(Value::UInt(3)));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn integer_range_checks() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert_eq!(i64::from_value(&Value::Int(-5)).unwrap(), -5);
        assert_eq!(f64::from_value(&Value::UInt(2)).unwrap(), 2.0);
    }

    #[test]
    fn tuple_pairs() {
        let pair = (1.5f64, 2.5f64);
        assert_eq!(<(f64, f64)>::from_value(&pair.to_value()).unwrap(), pair);
    }
}

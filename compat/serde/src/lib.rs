//! Vendored offline shim for the subset of `serde` this workspace uses.
//!
//! The build environment has no network access and no crates.io mirror, so
//! external dependencies are vendored as minimal API-compatible shims,
//! wired in through the workspace `[patch.crates-io]` section (see
//! `compat/README.md`). The public trait surface matches upstream serde's
//! signatures — [`Serialize::serialize`] is generic over a [`Serializer`],
//! [`Deserialize::deserialize`] over a [`Deserializer`], and errors go
//! through the [`ser::Error`]/[`de::Error`] traits — so workspace code
//! written against this shim compiles unchanged against real serde once
//! the patch section is removed.
//!
//! Internally there is exactly one serializer and one deserializer: both
//! plumb through an owned JSON-like [`Value`] tree (the shim has no
//! visitor machinery). Items prefixed `__` and the `Value`/`Map` tree are
//! shim-internal plumbing for the companion `serde_derive` and
//! `serde_json` shims; workspace library code must not use them, since
//! upstream serde exports no such items. External enum tagging,
//! `transparent`/newtype structs, and `#[serde(default)]` match upstream
//! wire formats.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Duration;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the interchange format between [`Serialize`],
/// [`Deserialize`], and `serde_json`.
///
/// Shim-internal: upstream serde exports no value tree (that lives in
/// `serde_json::Value`); workspace code reaches this type only through the
/// `serde_json` shim's re-export.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (insertion-ordered).
    Object(Map),
}

impl Value {
    /// Borrows the object map if this value is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Mutably borrows the object map if this value is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Borrows the string if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the array if this value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            Value::Float(n) => Some(n),
            _ => None,
        }
    }

    /// Returns the value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Looks up a key if this value is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|map| map.get(key))
    }

    /// One-word description of the value's kind, for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::UInt(_) | Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    /// Renders compact JSON (matching `serde_json::to_string`, including
    /// shortest-round-trip float formatting).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::UInt(n) => write!(f, "{n}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(n) if n.is_finite() => write!(f, "{n:?}"),
            Value::Float(_) => f.write_str("null"),
            Value::Str(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (key, item)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, key)?;
                    write!(f, ":{item}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes a JSON-escaped string literal.
fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_str(c.encode_utf8(&mut [0u8; 4]))?,
        }
    }
    f.write_str("\"")
}

/// An insertion-ordered string-keyed map of [`Value`]s (shim-internal; the
/// workspace reaches it as `serde_json::Map`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Inserts a key, replacing (in place) any existing entry.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// The shim's single concrete (de)serialization error: a human-readable
/// message. Implements both [`ser::Error`] and [`de::Error`].
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization half of the API: the [`Serializer`] trait lives here
/// upstream alongside the `Serialize*` sub-traits and the error trait.
pub mod ser {
    use std::fmt;

    pub use crate::{Serialize, Serializer};

    /// Trait for serialization errors (`serde::ser::Error`).
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from any displayable message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    impl Error for crate::Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            crate::Error::custom(msg)
        }
    }

    /// Returned by [`Serializer::serialize_seq`].
    pub trait SerializeSeq {
        /// Output type of the parent serializer.
        type Ok;
        /// Error type of the parent serializer.
        type Error: Error;
        /// Serializes one sequence element.
        fn serialize_element<T: ?Sized + Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the sequence.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Returned by [`Serializer::serialize_tuple`].
    pub trait SerializeTuple {
        /// Output type of the parent serializer.
        type Ok;
        /// Error type of the parent serializer.
        type Error: Error;
        /// Serializes one tuple element.
        fn serialize_element<T: ?Sized + Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the tuple.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Returned by [`Serializer::serialize_struct`].
    pub trait SerializeStruct {
        /// Output type of the parent serializer.
        type Ok;
        /// Error type of the parent serializer.
        type Error: Error;
        /// Serializes one named field.
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Returned by [`Serializer::serialize_struct_variant`].
    pub trait SerializeStructVariant {
        /// Output type of the parent serializer.
        type Ok;
        /// Error type of the parent serializer.
        type Error: Error;
        /// Serializes one named field of the variant.
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the variant.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

/// Deserialization half of the API: the [`Deserializer`] trait lives here
/// upstream alongside the error trait.
pub mod de {
    use std::fmt;

    pub use crate::{Deserialize, DeserializeOwned, Deserializer};

    /// Trait for deserialization errors (`serde::de::Error`).
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from any displayable message.
        fn custom<T: fmt::Display>(msg: T) -> Self;

        /// A required field was absent from the input.
        fn missing_field(field: &'static str) -> Self {
            Self::custom(format_args!("missing field `{field}`"))
        }

        /// An enum tag named no known variant.
        fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
            Self::custom(format_args!(
                "unknown variant `{variant}`, expected one of {expected:?}"
            ))
        }
    }

    impl Error for crate::Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            crate::Error::custom(msg)
        }
    }
}

/// A data structure that can be serialized (upstream `serde::Serialize`).
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serialization format (upstream `serde::Serializer`, the subset of
/// methods this workspace and its derives use). The shim's only
/// implementor is the internal value-tree serializer.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: ser::Error;
    /// State for sequence serialization.
    type SerializeSeq: ser::SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// State for tuple serialization.
    type SerializeTuple: ser::SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// State for struct serialization.
    type SerializeStruct: ser::SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// State for struct-variant serialization.
    type SerializeStructVariant: ser::SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a floating-point number.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct (forwards to the inner value).
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant (externally tagged: the name).
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant (externally tagged).
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins serializing a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins serializing a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins serializing a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins serializing a struct enum variant (externally tagged).
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
    /// Serializes a `Display` value as a string.
    fn collect_str<T: ?Sized + fmt::Display>(self, value: &T) -> Result<Self::Ok, Self::Error>;

    /// Shim-internal: absorbs a whole [`Value`] tree (the trait subset has
    /// no structural map API, which only `Value::Object` needs). Does not
    /// exist upstream; only the shim's own `Value` impl calls it.
    #[doc(hidden)]
    fn __shim_serialize_value(self, _value: &Value) -> Result<Self::Ok, Self::Error> {
        Err(ser::Error::custom(
            "this serializer cannot absorb a shim value tree",
        ))
    }
}

/// A data structure that can be deserialized (upstream
/// `serde::Deserialize<'de>`).
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable without borrowing from the input (upstream
/// `serde::de::DeserializeOwned`).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A deserialization format (upstream `serde::Deserializer<'de>`).
///
/// Upstream drives deserialization through visitors; this shim instead
/// exposes a single hidden accessor for the backing [`Value`] tree. The
/// only implementor is the internal value-tree deserializer — workspace
/// library code must treat this trait as opaque (use it only as a bound),
/// exactly as it would upstream's.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: de::Error;

    /// Shim-internal: borrows the backing value tree. Does not exist
    /// upstream; only shim-internal and derive-generated code may call it.
    #[doc(hidden)]
    fn __shim_value(&self) -> &Value;
}

// ---------------------------------------------------------------------------
// The value-tree serializer (the shim's only Serializer implementor)
// ---------------------------------------------------------------------------

/// Serializes into a [`Value`] tree. Shim-internal.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

/// Sequence/tuple builder for [`ValueSerializer`]. Shim-internal.
#[doc(hidden)]
#[derive(Debug, Default)]
pub struct ValueSeqBuilder {
    items: Vec<Value>,
}

/// Struct/object builder for [`ValueSerializer`]. Shim-internal.
#[doc(hidden)]
#[derive(Debug, Default)]
pub struct ValueStructBuilder {
    /// For struct variants, the external tag to wrap the object in.
    variant: Option<&'static str>,
    map: Map,
}

impl ser::SerializeSeq for ValueSeqBuilder {
    type Ok = Value;
    type Error = Error;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.items))
    }
}

impl ser::SerializeTuple for ValueSeqBuilder {
    type Ok = Value;
    type Error = Error;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<Value, Error> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeStruct for ValueStructBuilder {
    type Ok = Value;
    type Error = Error;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        let value = value.serialize(ValueSerializer)?;
        self.map.insert(key, value);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        let object = Value::Object(self.map);
        Ok(match self.variant {
            Some(tag) => {
                let mut outer = Map::new();
                outer.insert(tag, object);
                Value::Object(outer)
            }
            None => object,
        })
    }
}

impl ser::SerializeStructVariant for ValueStructBuilder {
    type Ok = Value;
    type Error = Error;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }

    fn end(self) -> Result<Value, Error> {
        ser::SerializeStruct::end(self)
    }
}

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = ValueSeqBuilder;
    type SerializeTuple = ValueSeqBuilder;
    type SerializeStruct = ValueStructBuilder;
    type SerializeStructVariant = ValueStructBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(if v >= 0 {
            Value::UInt(v as u64)
        } else {
            Value::Int(v)
        })
    }

    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::UInt(v))
    }

    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Value::Float(v))
    }

    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::Str(v.to_owned()))
    }

    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Value, Error> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Value, Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value, Error> {
        Ok(Value::Str(variant.to_owned()))
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Value, Error> {
        let mut map = Map::new();
        map.insert(variant, value.serialize(ValueSerializer)?);
        Ok(Value::Object(map))
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<ValueSeqBuilder, Error> {
        Ok(ValueSeqBuilder {
            items: Vec::with_capacity(len.unwrap_or(0)),
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<ValueSeqBuilder, Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<ValueStructBuilder, Error> {
        Ok(ValueStructBuilder {
            variant: None,
            map: Map::new(),
        })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<ValueStructBuilder, Error> {
        Ok(ValueStructBuilder {
            variant: Some(variant),
            map: Map::new(),
        })
    }

    fn collect_str<T: ?Sized + fmt::Display>(self, value: &T) -> Result<Value, Error> {
        Ok(Value::Str(value.to_string()))
    }

    fn __shim_serialize_value(self, value: &Value) -> Result<Value, Error> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------------
// The value-tree deserializer (the shim's only Deserializer implementor)
// ---------------------------------------------------------------------------

/// Deserializes from a borrowed [`Value`] tree. Shim-internal.
#[doc(hidden)]
#[derive(Debug, Clone, Copy)]
pub struct ValueDeserializer<'de> {
    value: &'de Value,
}

impl<'de> ValueDeserializer<'de> {
    /// Wraps a value for deserialization.
    pub fn new(value: &'de Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer<'de> {
    type Error = Error;

    fn __shim_value(&self) -> &Value {
        self.value
    }
}

// ---------------------------------------------------------------------------
// Shim-internal helpers shared with serde_derive/serde_json
// ---------------------------------------------------------------------------

/// Renders any serializable value into the [`Value`] tree. Shim-internal.
///
/// # Errors
///
/// Propagates errors raised by the value's `Serialize` impl (the built-in
/// impls never fail).
#[doc(hidden)]
pub fn __to_value<T: ?Sized + Serialize>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Rebuilds a typed value from the [`Value`] tree. Shim-internal.
///
/// # Errors
///
/// Returns an error when the tree's shape does not match `T`.
#[doc(hidden)]
pub fn __from_value<T: DeserializeOwned>(value: &Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer::new(value))
}

/// Builds a "wrong shape" error naming the found kind. Shim-internal.
#[doc(hidden)]
pub fn __expected<E: de::Error>(what: &str, got: &Value) -> E {
    E::custom(format_args!("expected {what}, found {}", got.kind()))
}

/// Extracts and deserializes a required struct field. Shim-internal.
///
/// # Errors
///
/// Returns `missing_field` when the key is absent, or the field's own
/// deserialization error.
#[doc(hidden)]
pub fn __field<T: DeserializeOwned, E: de::Error>(map: &Map, key: &'static str) -> Result<T, E> {
    match map.get(key) {
        Some(value) => __from_value(value).map_err(E::custom),
        None => Err(E::missing_field(key)),
    }
}

/// Extracts a `#[serde(default)]` struct field. Shim-internal.
///
/// # Errors
///
/// Returns the field's own deserialization error (absence is not one).
#[doc(hidden)]
pub fn __field_or_default<T: DeserializeOwned + Default, E: de::Error>(
    map: &Map,
    key: &'static str,
) -> Result<T, E> {
    match map.get(key) {
        Some(value) => __from_value(value).map_err(E::custom),
        None => Ok(T::default()),
    }
}

// ---------------------------------------------------------------------------
// Built-in impls (the subset the workspace uses)
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.__shim_serialize_value(self)
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(deserializer.__shim_value().clone())
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.__shim_value();
        value.as_bool().ok_or_else(|| __expected("boolean", value))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.__shim_value();
                let n = value
                    .as_u64()
                    .ok_or_else(|| __expected::<D::Error>("unsigned integer", value))?;
                <$t>::try_from(n).map_err(|_| {
                    de::Error::custom(format_args!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(i64::from(*self))
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.__shim_value();
                let n: i64 = match *value {
                    Value::UInt(u) => i64::try_from(u).map_err(|_| {
                        <D::Error as de::Error>::custom(format_args!("integer {u} out of range"))
                    })?,
                    Value::Int(i) => i,
                    _ => return Err(__expected("integer", value)),
                };
                <$t>::try_from(n).map_err(|_| {
                    de::Error::custom(format_args!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let n = i64::deserialize(deserializer)?;
        isize::try_from(n)
            .map_err(|_| de::Error::custom(format_args!("integer {n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.__shim_value();
        value.as_f64().ok_or_else(|| __expected("number", value))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|n| n as f32)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.__shim_value();
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| __expected("string", value))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(inner) => serializer.serialize_some(inner),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.__shim_value() {
            Value::Null => Ok(None),
            _ => T::deserialize(deserializer).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeSeq as _;
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.__shim_value();
        value
            .as_array()
            .ok_or_else(|| __expected::<D::Error>("array", value))?
            .iter()
            .map(|item| __from_value(item).map_err(de::Error::custom))
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeTuple as _;
        let mut tuple = serializer.serialize_tuple(2)?;
        tuple.serialize_element(&self.0)?;
        tuple.serialize_element(&self.1)?;
        tuple.end()
    }
}

impl<'de, A: DeserializeOwned, B: DeserializeOwned> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.__shim_value();
        let items = value
            .as_array()
            .ok_or_else(|| __expected::<D::Error>("2-element array", value))?;
        if items.len() != 2 {
            return Err(de::Error::custom(format_args!(
                "expected 2-element array, found {} elements",
                items.len()
            )));
        }
        Ok((
            __from_value(&items[0]).map_err(de::Error::custom)?,
            __from_value(&items[1]).map_err(de::Error::custom)?,
        ))
    }
}

impl Serialize for Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeStruct as _;
        // Upstream serde's wire format for Duration.
        let mut state = serializer.serialize_struct("Duration", 2)?;
        state.serialize_field("secs", &self.as_secs())?;
        state.serialize_field("nanos", &self.subsec_nanos())?;
        state.end()
    }
}

impl<'de> Deserialize<'de> for Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.__shim_value();
        let map = value
            .as_object()
            .ok_or_else(|| __expected::<D::Error>("duration object", value))?;
        let secs: u64 = __field(map, "secs")?;
        let nanos: u32 = __field(map, "nanos")?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_value<T: Serialize>(value: &T) -> Value {
        __to_value(value).unwrap()
    }

    #[test]
    fn option_round_trip() {
        assert_eq!(to_value(&Some(3u32)), Value::UInt(3));
        assert_eq!(to_value(&None::<u32>), Value::Null);
        assert_eq!(__from_value::<Option<u32>>(&Value::Null).unwrap(), None);
        assert_eq!(
            __from_value::<Option<u32>>(&Value::UInt(3)).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn duration_round_trip() {
        let d = Duration::new(3, 500_000_000);
        let v = to_value(&d);
        assert_eq!(v.get("secs"), Some(&Value::UInt(3)));
        assert_eq!(__from_value::<Duration>(&v).unwrap(), d);
    }

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut map = Map::new();
        map.insert("b", Value::UInt(1));
        map.insert("a", Value::UInt(2));
        map.insert("b", Value::UInt(3));
        let keys: Vec<&str> = map.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(map.get("b"), Some(&Value::UInt(3)));
        assert_eq!(map.remove("b"), Some(Value::UInt(3)));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn integer_range_checks() {
        assert!(__from_value::<u8>(&Value::UInt(300)).is_err());
        assert_eq!(__from_value::<i64>(&Value::Int(-5)).unwrap(), -5);
        assert_eq!(__from_value::<f64>(&Value::UInt(2)).unwrap(), 2.0);
    }

    #[test]
    fn tuple_pairs() {
        let pair = (1.5f64, 2.5f64);
        assert_eq!(__from_value::<(f64, f64)>(&to_value(&pair)).unwrap(), pair);
    }

    #[test]
    fn negative_i64_keeps_wire_shape() {
        assert_eq!(to_value(&-7i32), Value::Int(-7));
        assert_eq!(to_value(&7i32), Value::UInt(7));
    }

    #[test]
    fn collect_str_renders_display() {
        struct D;
        impl fmt::Display for D {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("shown")
            }
        }
        impl Serialize for D {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.collect_str(self)
            }
        }
        assert_eq!(to_value(&D), Value::Str("shown".into()));
    }

    #[test]
    fn missing_field_reports_key() {
        let err = __from_value::<Duration>(&Value::Object(Map::new())).unwrap_err();
        assert!(err.to_string().contains("secs"), "{err}");
    }
}

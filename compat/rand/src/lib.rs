//! Vendored offline shim for the subset of `rand` this workspace uses:
//! [`RngCore`], [`Rng`] (`gen_range`, `gen_bool`), and [`SeedableRng`]
//! (`from_seed`, `seed_from_u64`).
//!
//! The build environment has no network access and no crates.io mirror, so
//! external dependencies are vendored as minimal API-compatible shims (see
//! `compat/README.md`). The shim is deterministic by construction: all
//! randomness flows from explicitly seeded generators (there is no
//! `thread_rng`/OS entropy source), which is exactly what the repository's
//! reproducible simulations and tests require.

#![forbid(unsafe_code)]

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that `Rng::gen_range` can produce uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Samples uniformly from `[low, high)` (`[low, high]` when
    /// `inclusive`).
    fn sample_uniform(low: Self, high: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self;
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` via multiply-shift (span > 0).
fn below_u64(span: u64, rng: &mut dyn RngCore) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(low: Self, high: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self {
                let lo = low as u128;
                let hi = high as u128;
                let span = hi - lo + u128::from(inclusive);
                assert!(span > 0, "cannot sample from an empty range");
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u128-wide span of u64/u128
                    // inclusive ranges, which the workspace never uses.
                    return rng.next_u64() as $t;
                }
                (lo + u128::from(below_u64(span as u64, rng))) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

impl SampleUniform for u128 {
    fn sample_uniform(low: Self, high: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self {
        let span = high
            .checked_sub(low)
            .expect("cannot sample from an empty range")
            .checked_add(u128::from(inclusive))
            .expect("full-width u128 range is unsupported");
        assert!(span > 0, "cannot sample from an empty range");
        // Rejection sampling into the largest multiple of `span`, so the
        // modulo below is unbiased.
        let zone = (u128::MAX / span) * span;
        loop {
            let r = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
            if r < zone {
                return low + (r % span);
            }
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(low: Self, high: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample from an empty range");
                let offset = if span > u128::from(u64::MAX) {
                    u128::from(rng.next_u64())
                } else {
                    u128::from(below_u64(span as u64, rng))
                };
                (lo + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(low: Self, high: Self, _inclusive: bool, rng: &mut dyn RngCore) -> Self {
                assert!(low <= high, "cannot sample from an empty range");
                let unit = unit_f64(rng) as $t;
                low + (high - low) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing random value generation, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let mut erased = RngErased(self);
        range.sample_from(&mut erased)
    }

    /// Returns `true` with probability `p` (clamped into `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let mut erased = RngErased(self);
        unit_f64(&mut erased) < p
    }
}

/// Adapter so `?Sized` trait methods can hand a `&mut dyn RngCore` to the
/// sampling helpers.
struct RngErased<'a, R: RngCore + ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> RngCore for RngErased<'_, R> {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64 (the
    /// same construction upstream `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny xorshift generator for shim self-tests.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = XorShift(42);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f: f64 = rng.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&f));
            let u: usize = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = XorShift(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = XorShift(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = XorShift(3);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = XorShift(9);
        let dynamic: &mut dyn RngCore = &mut rng;
        let v = sample(dynamic);
        assert!((0.0..1.0).contains(&v));
    }
}

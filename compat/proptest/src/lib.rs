//! Vendored offline shim for the subset of `proptest` this workspace uses:
//! the `proptest!` macro with `fn name(arg in strategy, ...)` signatures,
//! `prop_assert!`/`prop_assert_eq!`, range and `any::<T>()` strategies, and
//! `ProptestConfig::with_cases`.
//!
//! The build environment has no network access and no crates.io mirror, so
//! external dependencies are vendored as minimal API-compatible shims (see
//! `compat/README.md`). Inputs are drawn from a ChaCha stream seeded from
//! the test name and case index, so every run of a given binary replays the
//! same cases (fully deterministic, no persistence files). There is no
//! shrinking: a failing case reports its inputs' seed and case number
//! instead.

#![forbid(unsafe_code)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy abstractions: how test inputs are drawn from the case RNG.
pub mod strategy {
    use rand::Rng;

    use crate::test_runner::TestRng;

    /// A source of random test inputs.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// Always produces a clone of the given value (upstream
    /// `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` support: unconstrained value generation.
pub mod arbitrary {
    use rand::{Rng, RngCore};

    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical unconstrained strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric values; property tests here use
            // arbitrary floats as seeds/knobs, not as edge-case probes.
            rng.gen_range(-1e12..1e12)
        }
    }

    /// Returns the unconstrained strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

/// Test-runner plumbing used by the expansion of [`proptest!`].
pub mod test_runner {
    use super::*;

    /// The RNG handed to strategies for one test case.
    pub type TestRng = ChaCha8Rng;

    /// Run configuration (upstream `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// FNV-1a, for deriving a stable per-test seed from its name.
    fn fnv1a(text: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in text.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Builds the deterministic RNG for one case of one property.
    pub fn rng_for_case(test_name: &str, case: u32) -> TestRng {
        let seed = fnv1a(test_name) ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        TestRng::seed_from_u64(seed)
    }

    /// Runs `body` for every case, panicking on the first failure with
    /// enough context to replay it.
    pub fn run_property<F>(config: &ProptestConfig, test_name: &str, body: F)
    where
        F: Fn(&mut TestRng) -> Result<(), String>,
    {
        for case in 0..config.cases {
            let mut rng = rng_for_case(test_name, case);
            if let Err(message) = body(&mut rng) {
                panic!(
                    "property `{test_name}` failed at case {case}/{}: {message}",
                    config.cases
                );
            }
        }
    }
}

pub use test_runner::ProptestConfig;

/// Everything a property-test file needs (upstream `proptest::prelude`).
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic property tests. Each `fn name(arg in strategy)`
/// expands to a `#[test]` that replays `cases` seeded inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run_property(&config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                __outcome
            });
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(m in 1usize..8, x in 0.5f64..2.0, k in 3u32..=5) {
            prop_assert!((1..8).contains(&m));
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((3..=5).contains(&k));
        }

        /// `any` produces varying values across cases.
        #[test]
        fn any_draws_values(seed in any::<u64>(), flag in any::<bool>()) {
            let _ = flag;
            prop_assert_eq!(seed, seed);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let draw = |case| {
            let mut rng = crate::test_runner::rng_for_case("fixed", case);
            (0u64..1000).sample(&mut rng)
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!((0..16).map(draw).collect::<Vec<_>>(), vec![draw(0); 16]);
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed at case 0")]
    fn failures_panic_with_case_context() {
        crate::test_runner::run_property(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err("boom".to_string())
        });
    }
}

//! Vendored offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` targeting the value-tree traits in the
//! companion `serde` shim.
//!
//! The build environment has no network access and no crates.io mirror, so
//! this derive is hand-rolled on bare `proc_macro` (no `syn`/`quote`): the
//! input item is parsed by walking its `TokenTree`s, and the impl is
//! emitted as a formatted string parsed back into a `TokenStream`.
//!
//! Supported shapes — exactly what the workspace uses:
//! - named-field structs (with `#[serde(default)]` on fields)
//! - single-field tuple structs (always treated as `transparent`)
//! - enums with unit, newtype, and struct variants (external tagging)
//!
//! Generics, multi-field tuple structs, and renaming attributes are
//! unsupported and fail with a compile-time panic naming the type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One field of a named-field struct or struct variant.
struct Field {
    name: String,
    /// `#[serde(default)]`: missing input falls back to `Default::default()`.
    default: bool,
}

/// One enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

/// The parsed item a derive was applied to.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    /// Single-field tuple struct, serialized transparently.
    NewtypeStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` for the annotated type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(match &item {
        Item::NamedStruct { name, fields } => serialize_named_struct(name, fields),
        Item::NewtypeStruct { name } => serialize_newtype_struct(name),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    })
}

/// Derives `serde::Deserialize` for the annotated type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(match &item {
        Item::NamedStruct { name, fields } => deserialize_named_struct(name, fields),
        Item::NewtypeStruct { name } => deserialize_newtype_struct(name),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    })
}

fn render(code: String) -> TokenStream {
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive shim generated invalid Rust: {e}\n{code}"))
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attrs_and_vis(&tokens, &mut pos);

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    pos += 1;

    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is unsupported");
    }

    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(group.stream(), &name);
                Item::NamedStruct { name, fields }
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(group.stream());
                if arity != 1 {
                    panic!(
                        "serde_derive shim: tuple struct `{name}` has {arity} fields; \
                         only single-field (transparent) tuple structs are supported"
                    );
                }
                Item::NewtypeStruct { name }
            }
            other => panic!("serde_derive shim: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(group.stream(), &name);
                Item::Enum { name, variants }
            }
            other => panic!("serde_derive shim: expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("serde_derive shim: expected `struct` or `enum`, got `{other}`"),
    }
}

/// Advances past attributes (`#[...]`, including doc comments) and a
/// `pub`/`pub(...)` visibility prefix; returns whether any skipped
/// attribute was `#[serde(default)]`.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut has_default = false;
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(group)) = tokens.get(*pos + 1) {
                    if attr_is_serde_default(group.stream()) {
                        has_default = true;
                    }
                    *pos += 2;
                } else {
                    panic!("serde_derive shim: stray `#` outside an attribute");
                }
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1;
                }
            }
            _ => return has_default,
        }
    }
}

/// True when an attribute body (the tokens inside `#[...]`) reads
/// `serde(default)`.
fn attr_is_serde_default(body: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

/// Counts top-level fields of a tuple-struct body (comma-split at angle
/// depth zero; bracketed groups are atomic tokens).
fn tuple_arity(body: TokenStream) -> usize {
    let mut arity = 0;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for token in body {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    arity + usize::from(saw_token)
}

fn parse_named_fields(body: TokenStream, type_name: &str) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let default = skip_attrs_and_vis(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => {
                panic!("serde_derive shim: expected field name in `{type_name}`, got {other:?}")
            }
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!(
                "serde_derive shim: expected `:` after field `{name}` in `{type_name}`, got {other:?}"
            ),
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field { name, default });
    }
    fields
}

/// Advances past a type expression up to (and over) the next top-level
/// comma. Commas inside `<...>` or bracketed groups don't terminate.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *pos += 1;
                return;
            }
            _ => {}
        }
        *pos += 1;
    }
}

fn parse_variants(body: TokenStream, type_name: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => {
                panic!("serde_derive shim: expected variant name in `{type_name}`, got {other:?}")
            }
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                let arity = tuple_arity(group.stream());
                if arity != 1 {
                    panic!(
                        "serde_derive shim: variant `{type_name}::{name}` has {arity} tuple \
                         fields; only newtype variants are supported"
                    );
                }
                VariantShape::Newtype
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Struct(parse_named_fields(group.stream(), type_name))
            }
            _ => VariantShape::Unit,
        };
        // Optional discriminant is unsupported; next token must be `,` or end.
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            None => {}
            other => panic!(
                "serde_derive shim: unexpected token after variant `{type_name}::{name}`: {other:?}"
            ),
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn serialize_named_struct(name: &str, fields: &[Field]) -> String {
    let mut inserts = String::new();
    for field in fields {
        inserts.push_str(&format!(
            "map.insert(\"{f}\", ::serde::Serialize::to_value(&self.{f}));\n",
            f = field.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{\n\
             let mut map = ::serde::Map::new();\n\
             {inserts}\
             ::serde::Value::Object(map)\n\
           }}\n\
         }}"
    )
}

fn serialize_newtype_struct(name: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{\n\
             ::serde::Serialize::to_value(&self.0)\n\
           }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for variant in variants {
        let v = &variant.name;
        match &variant.shape {
            VariantShape::Unit => arms.push_str(&format!(
                "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n"
            )),
            VariantShape::Newtype => arms.push_str(&format!(
                "{name}::{v}(inner) => {{\n\
                   let mut map = ::serde::Map::new();\n\
                   map.insert(\"{v}\", ::serde::Serialize::to_value(inner));\n\
                   ::serde::Value::Object(map)\n\
                 }}\n"
            )),
            VariantShape::Struct(fields) => {
                let bindings = fields
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ");
                let mut inserts = String::new();
                for field in fields {
                    inserts.push_str(&format!(
                        "inner.insert(\"{f}\", ::serde::Serialize::to_value({f}));\n",
                        f = field.name
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{v} {{ {bindings} }} => {{\n\
                       let mut inner = ::serde::Map::new();\n\
                       {inserts}\
                       let mut map = ::serde::Map::new();\n\
                       map.insert(\"{v}\", ::serde::Value::Object(inner));\n\
                       ::serde::Value::Object(map)\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{\n\
             match self {{\n\
               {arms}\
             }}\n\
           }}\n\
         }}"
    )
}

/// Field-extraction expression shared by struct and struct-variant
/// deserialization; `map` must be in scope as `&serde::Map`.
fn field_expr(type_name: &str, field: &Field) -> String {
    if field.default {
        format!(
            "match map.get(\"{f}\") {{\n\
               ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
               ::std::option::Option::None => ::std::default::Default::default(),\n\
             }}",
            f = field.name
        )
    } else {
        format!(
            "::serde::Deserialize::from_value(map.get(\"{f}\").ok_or_else(|| \
               ::serde::Error::missing_field(\"{type_name}\", \"{f}\"))?)?",
            f = field.name
        )
    }
}

fn deserialize_named_struct(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for field in fields {
        inits.push_str(&format!("{}: {},\n", field.name, field_expr(name, field)));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             let map = value.as_object().ok_or_else(|| \
               ::serde::Error::expected(\"object for {name}\", value))?;\n\
             ::std::result::Result::Ok({name} {{\n\
               {inits}\
             }})\n\
           }}\n\
         }}"
    )
}

fn deserialize_newtype_struct(name: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))\n\
           }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for variant in variants {
        let v = &variant.name;
        match &variant.shape {
            VariantShape::Unit => unit_arms.push_str(&format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
            )),
            VariantShape::Newtype => tagged_arms.push_str(&format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                   ::serde::Deserialize::from_value(content)?)),\n"
            )),
            VariantShape::Struct(fields) => {
                let mut inits = String::new();
                for field in fields {
                    inits.push_str(&format!("{}: {},\n", field.name, field_expr(name, field)));
                }
                tagged_arms.push_str(&format!(
                    "\"{v}\" => {{\n\
                       let map = content.as_object().ok_or_else(|| \
                         ::serde::Error::expected(\"object for {name}::{v}\", content))?;\n\
                       ::std::result::Result::Ok({name}::{v} {{\n\
                         {inits}\
                       }})\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             match value {{\n\
               ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                   ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
               }},\n\
               ::serde::Value::Object(outer) if outer.len() == 1 => {{\n\
                 let (tag, content) = outer.iter().next().expect(\"len checked\");\n\
                 match tag.as_str() {{\n\
                   {tagged_arms}\
                   other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
               }}\n\
               other => ::std::result::Result::Err(::serde::Error::expected(\
                 \"externally tagged {name}\", other)),\n\
             }}\n\
           }}\n\
         }}"
    )
}

//! Vendored offline shim for the subset of `criterion` this workspace's
//! benches use: `Criterion`, `benchmark_group`/`sample_size`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no network access and no crates.io mirror, so
//! external dependencies are vendored as minimal API-compatible shims (see
//! `compat/README.md`). This harness does real timing — median of
//! `sample_size` samples after a one-iteration warm-up, printed one line
//! per benchmark — but no statistics, plotting, or baseline storage.
//! Sampling is budgeted (~200 ms per benchmark) so the suite stays fast.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Per-benchmark time budget; sampling stops early once it is spent.
const SAMPLE_BUDGET: Duration = Duration::from_millis(200);

/// Entry point handed to every bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Registers a benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, body);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, body);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, |b| body(b, input));
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just the parameter, for groups benchmarked over one axis.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Conversion into a display label (accepts `&str`, `String`, and
/// [`BenchmarkId`], like upstream).
pub trait IntoBenchmarkId {
    /// Renders the label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timer handle passed to benchmark bodies.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting up to `sample_size` samples within the
    /// time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also seeds caches the first sample would otherwise pay).
        std::hint::black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
            if budget_start.elapsed() > SAMPLE_BUDGET {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut body: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    body(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("bench {label:<50} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "bench {label:<50} median {median:>12.3?} ({} samples)",
        samples.len()
    );
}

/// Declares a group of benchmark functions (`criterion_group!(name, fns…)`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_with_input(BenchmarkId::new("mul", 3), &3usize, |b, &n| {
            b.iter(|| n * n)
        });
        group.finish();
        assert!(runs >= 5, "warm-up plus samples ran the routine");
    }
}

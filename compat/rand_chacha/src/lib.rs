//! Vendored offline shim for `rand_chacha`: a real ChaCha8 block cipher
//! keystream exposed as [`ChaCha8Rng`], implementing the shimmed `rand`
//! traits.
//!
//! The build environment has no network access and no crates.io mirror, so
//! external dependencies are vendored as minimal API-compatible shims (see
//! `compat/README.md`). The keystream is a faithful ChaCha8 (RFC 8439 round
//! function, 4 double-rounds); its word-serialization order is not
//! guaranteed to match upstream `rand_chacha` bit-for-bit — the workspace
//! only requires determinism across runs, not upstream-identical streams.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Deterministic RNG backed by the ChaCha stream cipher with 8 rounds.
#[derive(Clone)]
pub struct ChaCha8Rng {
    /// Key + constant + counter/nonce words, the ChaCha input block.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "exhausted".
    cursor: usize,
}

impl std::fmt::Debug for ChaCha8Rng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaCha8Rng")
            .field("counter", &self.state[12])
            .finish_non_exhaustive()
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Runs the ChaCha8 block function, refilling `self.block`.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter across words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12..16 (counter + nonce) start at zero.
        let mut rng = ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn keystream_spans_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Draw well past one 16-word block to exercise the counter.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            seen.insert(rng.next_u32());
        }
        assert!(seen.len() > 250, "keystream repeats too often");
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let p: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&p));
        let n: usize = rng.gen_range(0..10usize);
        assert!(n < 10);
        let _ = rng.gen_bool(0.5);
    }
}

//! Vendored offline shim for the subset of `parking_lot` this workspace
//! uses: `Mutex` and `RwLock` with panic-free (non-poisoning) guards.
//!
//! The build environment has no network access and no crates.io mirror, so
//! external dependencies are vendored as minimal API-compatible shims (see
//! `compat/README.md`). Semantics match `parking_lot` where the workspace
//! relies on them: `lock()`/`read()`/`write()` never return a `Result`, and
//! a panic while holding a guard does not poison the lock.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, PoisonError};

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (the borrow checker guarantees
    /// exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

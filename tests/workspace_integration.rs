//! Cross-crate integration tests exercising the full pipeline through the
//! `qce` façade: strategy algebra → simulation → runtime.

use std::sync::Arc;
use std::time::Duration;

use qce::runtime::{
    Client, Gateway, GatewayConfig, InMemoryMarket, MsSpec, ServiceScript, SimulatedProvider,
};
use qce::sim::{simulate, Environment, VirtualExecutor};
use qce::strategy::estimate::estimate;
use qce::strategy::{EnvQos, Generator, MsId, Qos, Requirements, Strategy};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The complete analytical pipeline: parse → estimate → generate → verify
/// by simulation, on the paper's fire-detection example.
#[test]
fn analytic_pipeline_end_to_end() {
    let triples = [
        (50.0, 50.0, 0.6),
        (100.0, 100.0, 0.6),
        (150.0, 150.0, 0.7),
        (200.0, 200.0, 0.7),
        (250.0, 250.0, 0.8),
    ];
    let env = EnvQos::from_triples(&triples).unwrap();
    let sim_env = Environment::from_triples(&triples).unwrap();
    let requirements = Requirements::new(100.0, 100.0, 0.97).unwrap();

    let generated = Generator::default()
        .generate(&env, &env.ids(), &requirements)
        .unwrap();

    // The generated strategy's estimate is confirmed by simulation.
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let measured = simulate(&generated.strategy, &sim_env, 30_000, &mut rng).unwrap();
    assert!((measured.mean_cost - generated.qos.cost).abs() / generated.qos.cost < 0.03);
    assert!((measured.mean_latency - generated.qos.latency).abs() / generated.qos.latency < 0.03);

    // And it beats both predefined patterns on utility by construction.
    let generator = Generator::default();
    let fo = generator
        .failover_in_order(&env, &env.ids(), &requirements)
        .unwrap();
    let sp = generator
        .speculative_parallel(&env, &env.ids(), &requirements)
        .unwrap();
    assert!(generated.utility >= fo.utility);
    assert!(generated.utility >= sp.utility);
}

/// A strategy estimated by the analytic estimator, measured by the
/// virtual-time simulator, and measured again by the *threaded* runtime
/// executor all agree.
#[test]
fn three_executors_agree() {
    let triples = [(10.0, 4.0, 0.8), (20.0, 8.0, 0.9)];
    let env = EnvQos::from_triples(&triples).unwrap();
    let strategy = Strategy::parse("a-b").unwrap();
    let estimated = estimate(&strategy, &env).unwrap();

    // Virtual time.
    let sim_env = Environment::from_triples(&triples).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let virtual_measured = simulate(&strategy, &sim_env, 40_000, &mut rng).unwrap();
    assert!((virtual_measured.mean_cost - estimated.cost).abs() / estimated.cost < 0.03);

    // Real threads (latencies in ms).
    use qce::runtime::{execute_strategy, Invocation, Provider};
    let providers: Vec<Arc<dyn Provider>> = vec![
        SimulatedProvider::builder("d/a", "a")
            .cost(10.0)
            .latency(Duration::from_millis(4))
            .reliability(0.8)
            .seed(1)
            .build(),
        SimulatedProvider::builder("d/b", "b")
            .cost(20.0)
            .latency(Duration::from_millis(8))
            .reliability(0.9)
            .seed(2)
            .build(),
    ];
    let runs: u64 = 300;
    let mut cost_sum = 0.0;
    let mut ok = 0u32;
    for i in 0..runs {
        let outcome =
            execute_strategy(&strategy, &providers, &Invocation::new(i, "", vec![]), None).unwrap();
        cost_sum += outcome.cost;
        if outcome.success {
            ok += 1;
        }
    }
    let mean_cost = cost_sum / runs as f64;
    assert!(
        (mean_cost - estimated.cost).abs() / estimated.cost < 0.15,
        "threaded cost {mean_cost} vs estimate {}",
        estimated.cost
    );
    let reliability = f64::from(ok) / runs as f64;
    assert!((reliability - estimated.reliability.value()).abs() < 0.06);
}

/// Full system test: publish a script, register devices, drive slots, and
/// confirm the feedback loop finds a strategy whose measured QoS matches
/// what the virtual-time simulator predicts for the same configuration.
#[test]
fn runtime_converges_to_simulated_prediction() {
    let market = InMemoryMarket::new();
    let mut script = ServiceScript::new(
        "svc",
        vec![
            MsSpec {
                name: "fast".into(),
                capability: "fast".into(),
                prior: Qos::new(10.0, 3.0, 0.8).unwrap(),
            },
            MsSpec {
                name: "slow".into(),
                capability: "slow".into(),
                prior: Qos::new(30.0, 9.0, 0.95).unwrap(),
            },
        ],
        Requirements::new(50.0, 20.0, 0.97).unwrap(),
    );
    script.slot_size = 50;
    market.publish(script).unwrap();

    let gateway = Arc::new(Gateway::new(Box::new(market), GatewayConfig::default()));
    gateway.registry().register(
        SimulatedProvider::builder("d/fast", "fast")
            .cost(10.0)
            .latency(Duration::from_millis(3))
            .reliability(0.8)
            .seed(1)
            .build(),
    );
    gateway.registry().register(
        SimulatedProvider::builder("d/slow", "slow")
            .cost(30.0)
            .latency(Duration::from_millis(9))
            .reliability(0.95)
            .seed(2)
            .build(),
    );

    let client = Client::new(Arc::clone(&gateway));
    // Slot 0 (default parallel) then slot 1 (generated).
    for _ in 0..50 {
        client.invoke("svc").unwrap();
    }
    let mut cost_sum = 0.0;
    for _ in 0..50 {
        cost_sum += client.invoke("svc").unwrap().cost;
    }
    let measured_cost = cost_sum / 50.0;

    // Predict the generated slot's cost analytically: the generator, fed
    // the true QoS, picks the same strategy the gateway's collector-driven
    // plan converged to.
    let env = EnvQos::from_triples(&[(10.0, 3.0, 0.8), (30.0, 9.0, 0.95)]).unwrap();
    let requirements = Requirements::new(50.0, 20.0, 0.97).unwrap();
    let predicted = Generator::default()
        .generate(&env, &env.ids(), &requirements)
        .unwrap();
    let history = gateway.slot_history("svc");
    assert_eq!(history.len(), 2);
    assert!(
        (measured_cost - predicted.qos.cost).abs() / predicted.qos.cost < 0.35,
        "measured {measured_cost} vs predicted {}",
        predicted.qos.cost
    );
}

/// The virtual executor and the analytic estimator agree on *every*
/// strategy over a 4-microservice environment (exhaustive cross-check).
#[test]
fn exhaustive_agreement_m4() {
    let triples = [
        (50.0, 30.0, 0.4),
        (60.0, 70.0, 0.7),
        (20.0, 50.0, 0.55),
        (90.0, 20.0, 0.85),
    ];
    let env = EnvQos::from_triples(&triples).unwrap();
    let sim_env = Environment::from_triples(&triples).unwrap();
    let exec = VirtualExecutor::new();
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let ids: Vec<MsId> = (0..4).map(MsId).collect();
    for strategy in qce::strategy::enumerate::enumerate_full(&ids) {
        let estimated = estimate(&strategy, &env).unwrap();
        let mut cost = 0.0;
        let runs = 4_000;
        for _ in 0..runs {
            cost += exec.execute(&strategy, &sim_env, &mut rng).unwrap().cost;
        }
        let measured = cost / f64::from(runs);
        assert!(
            (measured - estimated.cost).abs() / estimated.cost < 0.08,
            "{strategy}: measured {measured} vs estimated {}",
            estimated.cost
        );
    }
}

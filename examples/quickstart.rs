//! Quickstart: express, estimate, and synthesize execution strategies for
//! equivalent microservices.
//!
//! Reproduces the paper's running example (Section III.D): five equivalent
//! fire-detection microservices `a`–`e` with environment-specific QoS, and
//! shows how customized strategies beat the two predefined patterns.
//!
//! Run with: `cargo run --example quickstart`

use qce_strategy::estimate::estimate;
use qce_strategy::{EnvQos, Generator, Requirements, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five equivalent microservices with [cost, latency, reliability]:
    //   a: camera smoke detection        [ 50,  50, 60%]
    //   b: smoke sensor                  [100, 100, 60%]
    //   c: flame sensor                  [150, 150, 70%]
    //   d: CO/CO2 gas sensor             [200, 200, 70%]
    //   e: temperature-change detection  [250, 250, 80%]
    let env = EnvQos::from_triples(&[
        (50.0, 50.0, 0.6),
        (100.0, 100.0, 0.6),
        (150.0, 150.0, 0.7),
        (200.0, 200.0, 0.7),
        (250.0, 250.0, 0.8),
    ])?;

    println!("== Estimating the QoS of hand-written strategies (Table II) ==");
    for text in ["a-b-c-d-e", "a*b*c*d*e", "a-b*c-d-e", "c*(a*b-d*e)"] {
        let strategy = Strategy::parse(text)?;
        let qos = estimate(&strategy, &env)?;
        println!("  {text:<14} -> {qos}");
    }

    // The service requires cost ≤ 100, latency ≤ 100 ms, reliability ≥ 97%.
    let requirements = Requirements::new(100.0, 100.0, 0.97)?;
    println!("\n== Generating the best strategy for {requirements} ==");

    let generator = Generator::default();
    let ids = env.ids();

    let best = generator.generate(&env, &ids, &requirements)?;
    let failover = generator.failover(&env, &ids, &requirements)?;
    let parallel = generator.speculative_parallel(&env, &ids, &requirements)?;
    let approx = generator.approximation(&env, &ids, &requirements)?;

    println!(
        "  generated (exhaustive over {} candidates):",
        best.evaluated
    );
    println!("      {best}");
    println!("  approximation heuristic:");
    println!("      {approx}");
    println!("  predefined fail-over:");
    println!("      {failover}");
    println!("  predefined speculative parallel:");
    println!("      {parallel}");

    assert!(best.utility >= failover.utility);
    assert!(best.utility >= parallel.utility);
    println!(
        "\nThe customized strategy improves utility by {:+.3} over fail-over \
         and {:+.3} over speculative parallel.",
        best.utility - failover.utility,
        best.utility - parallel.utility
    );
    Ok(())
}

//! Full deployment pipeline: a developer publishes self-describing service
//! scripts to a file-backed market; an edge gateway downloads, caches, and
//! provisions them; a client consumes the service under an advisory policy
//! (paper Section IV.A and IV.C).
//!
//! Run with: `cargo run --example market_deployment`

use std::sync::Arc;
use std::time::Duration;

use qce_runtime::{
    AdvisoryPolicy, CachingMarket, Client, ClientError, FileMarket, Gateway, GatewayConfig, Market,
    MsSpec, Request, ServiceScript, SimulatedProvider,
};
use qce_strategy::{Qos, Requirements};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Developer side: publish scripts to the market -------------------
    let market_dir = std::env::temp_dir().join("qce-example-market");
    let _ = std::fs::remove_dir_all(&market_dir);
    let publisher = FileMarket::new(&market_dir);

    let mut fire = ServiceScript::new(
        "detect-fire",
        vec![
            MsSpec {
                name: "cameraSmoke".into(),
                capability: "camera-smoke".into(),
                prior: Qos::new(50.0, 10.0, 0.8)?,
            },
            MsSpec {
                name: "smokeSensor".into(),
                capability: "smoke-sensor".into(),
                prior: Qos::new(20.0, 5.0, 0.7)?,
            },
            MsSpec {
                name: "flameSensor".into(),
                capability: "flame-sensor".into(),
                prior: Qos::new(30.0, 8.0, 0.75)?,
            },
        ],
        Requirements::new(100.0, 40.0, 0.95)?,
    );
    // The developer pins a MOLE-style default for the bootstrap slot.
    fire.default_strategy = Some("smokeSensor-cameraSmoke-flameSensor".to_string());
    fire.slot_size = 20;
    publisher.publish(&fire)?;

    let ambitious = ServiceScript::new(
        "impossible-service",
        vec![MsSpec {
            name: "flaky".into(),
            capability: "flaky".into(),
            prior: Qos::new(10.0, 5.0, 0.5)?,
        }],
        // Requirements no single 50%-reliable microservice can meet.
        Requirements::new(5.0, 2.0, 0.999)?,
    );
    publisher.publish(&ambitious)?;

    println!("Published scripts: {:?}", publisher.service_ids());
    println!(
        "Script JSON on disk:\n{}\n",
        std::fs::read_to_string(market_dir.join("detect-fire.json"))?
            .lines()
            .take(12)
            .collect::<Vec<_>>()
            .join("\n")
    );

    // --- Edge side: gateway + devices ------------------------------------
    let market = CachingMarket::new(FileMarket::new(&market_dir));
    let gateway = Arc::new(Gateway::new(Box::new(market), GatewayConfig::default()));

    for (device, capability, cost, ms, reliability) in [
        ("lobby-cam", "camera-smoke", 50.0, 10u64, 0.8),
        ("hall-detector", "smoke-sensor", 20.0, 5, 0.7),
        ("kitchen-unit", "flame-sensor", 30.0, 8, 0.75),
        ("battery-node", "flaky", 10.0, 5, 0.5),
    ] {
        gateway.registry().register(
            SimulatedProvider::builder(format!("{device}/{capability}"), capability)
                .cost(cost)
                .latency(Duration::from_millis(ms))
                .reliability(reliability)
                .seed(42)
                .build(),
        );
    }

    // --- Client side ------------------------------------------------------
    let client = Client::new(Arc::clone(&gateway));
    println!("== detect-fire over three time slots ==");
    for slot in 0..3 {
        let mut ok = 0;
        for _ in 0..20 {
            if client.invoke("detect-fire")?.success {
                ok += 1;
            }
        }
        println!(
            "  slot {slot}: strategy {:<42} {ok}/20 succeeded",
            gateway.current_strategy("detect-fire").unwrap_or_default()
        );
    }

    // The strict client aborts when the gateway advises that requirements
    // cannot be met (Section IV.C's client decision).
    let strict = Client::new(Arc::clone(&gateway)).with_policy(AdvisoryPolicy::Abort);
    // Warm through slot 0 so the generator produces an estimate+advisory.
    for _ in 0..101 {
        let _ = gateway.submit(Request::new("impossible-service"));
    }
    match strict.invoke("impossible-service") {
        Err(ClientError::Rejected(rejected)) => {
            println!("\nimpossible-service rejected as expected:\n  {rejected}");
        }
        other => println!("\nunexpected outcome for impossible-service: {other:?}"),
    }

    // Market caching: the gateway fetched each script exactly once.
    println!("\nGateway service cache kept cloud traffic to one fetch per script.");
    std::fs::remove_dir_all(&market_dir)?;
    Ok(())
}

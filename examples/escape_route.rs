//! A multi-stage edge service from the paper's motivating scenario
//! (Section I/II): a personal mobile assistant that detects fire, locates
//! its user, and plans an escape route — three stages, each fulfilled by
//! *equivalent microservices* on unreliable edge devices.
//!
//! The pipeline composes three gateway services ("the dataflow of
//! constituent microservices", Section IV.A):
//!
//! 1. `detect-fire` — camera smoke analysis / smoke sensor / flame sensor,
//!    executed under **quorum 2** so a single compromised sensor cannot
//!    fake an all-clear (§VII);
//! 2. `locate-user` — Wi-Fi fingerprinting / camera re-identification /
//!    motion-sensor dead reckoning (the indoor-localization equivalents
//!    cited in the paper's introduction);
//! 3. `plan-route` — edge-server path planner / pre-computed evacuation
//!    map lookup.
//!
//! Run with: `cargo run --example escape_route`

use std::sync::Arc;
use std::time::Duration;

use qce_runtime::{
    invoke_pipeline, FnProvider, Gateway, GatewayConfig, InMemoryMarket, MsSpec, ServiceScript,
    SimulatedProvider,
};
use qce_strategy::compose::pipeline_qos;
use qce_strategy::{Qos, Requirements};

fn publish(
    market: &InMemoryMarket,
    id: &str,
    ms: Vec<(&str, &str, f64, f64, f64)>, // name, capability, cost, latency, reliability
    quorum: Option<usize>,
) {
    let mut script = ServiceScript::new(
        id,
        ms.into_iter()
            .map(|(name, capability, c, l, r)| MsSpec {
                name: name.into(),
                capability: capability.into(),
                prior: Qos::new(c, l, r).expect("valid"),
            })
            .collect(),
        Requirements::new(200.0, 100.0, 0.95).expect("valid"),
    );
    script.slot_size = 25;
    script.quorum = quorum;
    market.publish(script).expect("valid script");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let market = InMemoryMarket::new();

    publish(
        &market,
        "detect-fire",
        vec![
            ("cameraSmoke", "camera-smoke", 50.0, 10.0, 0.85),
            ("smokeSensor", "smoke-sensor", 20.0, 4.0, 0.8),
            ("flameSensor", "flame-sensor", 30.0, 6.0, 0.8),
        ],
        Some(2), // outvote a compromised sensor
    );
    publish(
        &market,
        "locate-user",
        vec![
            ("wifiFingerprint", "wifi-locate", 30.0, 8.0, 0.75),
            ("cameraReId", "camera-locate", 60.0, 15.0, 0.85),
            ("motionDeadReckon", "imu-locate", 10.0, 3.0, 0.6),
        ],
        None,
    );
    publish(
        &market,
        "plan-route",
        vec![
            ("edgePlanner", "route-plan", 40.0, 12.0, 0.9),
            ("staticEvacMap", "route-lookup", 5.0, 2.0, 0.99),
        ],
        None,
    );

    let gateway = Arc::new(Gateway::new(Box::new(market), GatewayConfig::default()));

    // Register device-hosted microservices. The fire sensors return a
    // payload (1 = fire) so the quorum stage has something to vote on.
    for (device, capability, cost, ms, rel) in [
        ("lobby-cam", "camera-smoke", 50.0, 10u64, 0.85),
        ("hall-unit", "smoke-sensor", 20.0, 4, 0.8),
        ("kitchen-unit", "flame-sensor", 30.0, 6, 0.8),
        ("ap-3f", "wifi-locate", 30.0, 8, 0.75),
        ("lobby-cam2", "camera-locate", 60.0, 15, 0.85),
        ("phone-imu", "imu-locate", 10.0, 3, 0.6),
    ] {
        gateway.registry().register(
            SimulatedProvider::builder(format!("{device}/{capability}"), capability)
                .cost(cost)
                .latency(Duration::from_millis(ms))
                .reliability(rel)
                .response(vec![1])
                .seed(7)
                .build(),
        );
    }
    // The route planners do real (toy) work: payload in, route out.
    gateway.registry().register(FnProvider::new(
        "edge-server/route-plan",
        "route-plan",
        40.0,
        |req| Ok([req.payload.as_slice(), b" -> stairwell B"].concat()),
    ));
    gateway.registry().register(FnProvider::new(
        "kiosk/route-lookup",
        "route-lookup",
        5.0,
        |req| Ok([req.payload.as_slice(), b" -> nearest exit"].concat()),
    ));

    // Predicted end-to-end QoS from the stage priors (compose module).
    let stage_priors = [
        Qos::new(100.0, 10.0, 0.994)?, // detect-fire under quorum (approx.)
        Qos::new(40.0, 8.0, 0.985)?,   // locate-user fail-over
        Qos::new(10.0, 3.0, 0.9999)?,  // plan-route fail-over
    ];
    println!(
        "predicted end-to-end (from priors): {}\n",
        pipeline_qos(&stage_priors).expect("non-empty")
    );

    // Drive the pipeline across two time slots so stage strategies adapt.
    let stages = ["detect-fire", "locate-user", "plan-route"];
    let mut ok = 0u32;
    let mut cost = 0.0;
    let n = 60;
    for i in 0..n {
        let response = invoke_pipeline(&gateway, &stages, vec![])?;
        if response.success {
            ok += 1;
        }
        cost += response.cost;
        if i == 0 || i == n - 1 {
            println!(
                "run {i:>2}: success={} cost={:>5.1} latency={:>6.1?} stages={}",
                response.success,
                response.cost,
                response.latency,
                response.stages.len(),
            );
            if let Some(route) = &response.payload {
                println!("        route: {:?}", String::from_utf8_lossy(route));
            }
            if let Some((votes, cast)) = response.stages[0].votes {
                println!("        detect-fire quorum: {votes}/{cast} sensors agree");
            }
        }
    }
    println!(
        "\n{ok}/{n} pipeline runs succeeded, mean cost {:.1}",
        cost / f64::from(n)
    );

    println!("\nPer-stage strategies after adaptation:");
    for stage in stages {
        println!(
            "  {stage:<12} {}",
            gateway.current_strategy(stage).unwrap_or_default()
        );
    }
    Ok(())
}

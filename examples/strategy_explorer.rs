//! Interactive strategy-space explorer: enumerate every execution strategy
//! for a set of equivalent microservices, estimate their QoS, and print the
//! Pareto front and the utility ranking.
//!
//! Usage:
//!
//! ```text
//! cargo run --example strategy_explorer -- [cost,latency,reliability ...]
//! ```
//!
//! Each positional argument describes one microservice as a comma-separated
//! triple (reliability in percent). With no arguments, the paper's
//! Section III.D fire-detection environment is used. Example:
//!
//! ```text
//! cargo run --example strategy_explorer -- 50,50,60 100,100,60 150,150,70
//! ```

use qce_strategy::enumerate::{count_full, enumerate_full, paper};
use qce_strategy::estimate::estimate;
use qce_strategy::pareto::pareto_front;
use qce_strategy::{EnvQos, Requirements, UtilityIndex};

fn parse_args() -> Result<EnvQos, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Ok(EnvQos::from_triples(&[
            (50.0, 50.0, 0.6),
            (100.0, 100.0, 0.6),
            (150.0, 150.0, 0.7),
            (200.0, 200.0, 0.7),
            (250.0, 250.0, 0.8),
        ])?);
    }
    let mut triples = Vec::new();
    for arg in &args {
        let parts: Vec<&str> = arg.split(',').collect();
        if parts.len() != 3 {
            return Err(format!("expected cost,latency,reliability%, got {arg:?}").into());
        }
        let cost: f64 = parts[0].trim().parse()?;
        let latency: f64 = parts[1].trim().parse()?;
        let reliability_pct: f64 = parts[2].trim().parse()?;
        triples.push((cost, latency, reliability_pct / 100.0));
    }
    Ok(EnvQos::from_triples(&triples)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = parse_args()?;
    let m = env.len();
    if m > 6 {
        return Err("explorer enumerates exhaustively; use at most 6 microservices".into());
    }

    println!("Environment ({m} equivalent microservices):");
    for (id, qos) in env.iter() {
        println!("  {id}: {qos}");
    }

    println!(
        "\nStrategy space: {} semantically distinct strategies \
         (the paper's Table I counts {}).",
        count_full(m),
        paper::count_table1(m)
    );

    // Estimate everything.
    let ids = env.ids();
    let mut scored: Vec<(qce_strategy::Strategy, qce_strategy::Qos)> = enumerate_full(&ids)
        .into_iter()
        .map(|s| {
            let qos = estimate(&s, &env).expect("environment covers all ids");
            (s, qos)
        })
        .collect();

    // Pareto front.
    let front = pareto_front(scored.clone(), |(_, q)| *q);
    println!(
        "\nPareto-optimal strategies ({} of {}):",
        front.len(),
        scored.len()
    );
    let mut front_sorted = front;
    front_sorted.sort_by(|(_, a), (_, b)| a.cost.partial_cmp(&b.cost).expect("finite"));
    for (s, q) in front_sorted.iter().take(15) {
        println!("  {s:<20} {q}");
    }
    if front_sorted.len() > 15 {
        println!("  … and {} more", front_sorted.len() - 15);
    }

    // Utility ranking against the paper's simulation requirements.
    let requirements = Requirements::new(100.0, 100.0, 0.97)?;
    let utility = UtilityIndex::default();
    scored.sort_by(|(_, a), (_, b)| {
        utility
            .utility(b, &requirements)
            .partial_cmp(&utility.utility(a, &requirements))
            .expect("utilities are finite")
    });
    println!("\nTop 10 by utility against {requirements}:");
    for (rank, (s, q)) in scored.iter().take(10).enumerate() {
        println!(
            "  #{:<2} U={:+.3}  {s:<20} {q}",
            rank + 1,
            utility.utility(q, &requirements)
        );
    }

    let satisfied = scored
        .iter()
        .filter(|(_, q)| requirements.satisfied_by(q))
        .count();
    println!(
        "\n{satisfied} of {} strategies satisfy every requirement.",
        scored.len()
    );
    Ok(())
}

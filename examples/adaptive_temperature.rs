//! The paper's testbed scenario (Section V.B, Table IV and Fig. 8) on the
//! threaded runtime: three temperature microservices behind a gateway with
//! a feedback loop, adapting to a reliability drop and recovery.
//!
//! Latencies are scaled from the paper's seconds to milliseconds so the
//! example finishes quickly; the QoS *shape* (who wins, how the strategy
//! flips) is preserved.
//!
//! Run with: `cargo run --example adaptive_temperature`

use std::sync::Arc;
use std::time::Duration;

use qce_runtime::{
    Client, Gateway, GatewayConfig, InMemoryMarket, MsSpec, ServiceScript, SimulatedProvider,
};
use qce_strategy::{Qos, Requirements};

const SERVICE: &str = "detect-temperature";
const SLOT: u32 = 50;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Publish the service script to the (in-memory) cloud market.
    let market = InMemoryMarket::new();
    let mut script = ServiceScript::new(
        SERVICE,
        vec![
            MsSpec {
                name: "readTempSensor".into(),
                capability: "read-temp".into(),
                prior: Qos::new(30.0, 5.0, 0.7)?,
            },
            MsSpec {
                name: "estTemp".into(),
                capability: "est-temp".into(),
                prior: Qos::new(50.0, 15.0, 0.7)?,
            },
            MsSpec {
                name: "readLocTemp".into(),
                capability: "loc-temp".into(),
                prior: Qos::new(50.0, 25.0, 0.7)?,
            },
        ],
        Requirements::new(100.0, 50.0, 0.97)?,
    );
    script.slot_size = SLOT;
    market.publish(script)?;

    // 2. Stand up the gateway; devices register their microservices.
    let gateway = Arc::new(Gateway::new(
        Box::new(market),
        GatewayConfig::builder().collector_window(60).build(),
    ));
    let sensor = SimulatedProvider::builder("pi/read-temp", "read-temp")
        .cost(30.0)
        .latency(Duration::from_millis(2))
        .reliability(0.7)
        .seed(1)
        .build();
    gateway.registry().register(Arc::clone(&sensor) as _);
    gateway.registry().register(
        SimulatedProvider::builder("m92p-a/est-temp", "est-temp")
            .cost(50.0)
            .latency(Duration::from_millis(15))
            .reliability(0.7)
            .seed(2)
            .build(),
    );
    gateway.registry().register(
        SimulatedProvider::builder("m92p-b/loc-temp", "loc-temp")
            .cost(50.0)
            .latency(Duration::from_millis(25))
            .reliability(0.7)
            .seed(3)
            .build(),
    );

    let client = Client::new(Arc::clone(&gateway));

    // 3. Drive time slots; drop the sensor's reliability partway through
    //    and recover it later (the Fig. 8 schedule, scaled down).
    println!("slot | strategy                                | succ% | avg cost | avg latency");
    println!("-----+-----------------------------------------+-------+----------+------------");
    let mut executed = 0u32;
    for slot in 0..10 {
        let mut ok = 0u32;
        let mut cost = 0.0;
        let mut latency = Duration::ZERO;
        for _ in 0..SLOT {
            // Reliability drop after 230 executions, recovery after 430.
            if executed == 230 {
                sensor.set_reliability(0.2);
                println!("     | *** readTempSensor reliability drops to 20% ***");
            }
            if executed == 430 {
                sensor.set_reliability(0.7);
                println!("     | *** readTempSensor reliability recovers to 70% ***");
            }
            let response = client.invoke(SERVICE)?;
            executed += 1;
            if response.success {
                ok += 1;
            }
            cost += response.cost;
            latency += response.latency;
        }
        let strategy = gateway
            .current_strategy(SERVICE)
            .unwrap_or_else(|| "?".to_string());
        println!(
            "{slot:>4} | {strategy:<39} | {:>4.0}% | {:>8.1} | {:>7.1} ms",
            f64::from(ok) / f64::from(SLOT) * 100.0,
            cost / f64::from(SLOT),
            latency.as_secs_f64() * 1e3 / f64::from(SLOT),
        );
    }

    // 4. Show the planning history the gateway kept (per-slot decisions).
    println!("\nPlanning history:");
    for record in gateway.slot_history(SERVICE) {
        let estimate = record
            .estimated
            .map_or_else(|| "-".to_string(), |q| q.to_string());
        println!(
            "  slot {:>2} [{}] {} est {}",
            record.slot, record.origin, record.strategy_text, estimate
        );
    }
    Ok(())
}

//! The paper's motivating example (Section II.A): the `detectFire` service
//! queried in *dissimilar* edge environments.
//!
//! The same five equivalent microservices are deployed in two environments:
//!
//! * an **office building** — flame sensors and a small edge server;
//! * a **campground** — a solar-powered Raspberry Pi and bystanders'
//!   phones.
//!
//! A fixed MOLE-style strategy delivers wildly different QoS across the
//! two; the generator synthesizes an environment-specific strategy for
//! each and restores consistency. Executions are validated with the
//! virtual-time Monte-Carlo simulator.
//!
//! Run with: `cargo run --example detect_fire`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qce_sim::{
    environment_from_placements, simulate, Availability, Device, DeviceKind, LatencyDistribution,
    MsModel,
};
use qce_strategy::estimate::estimate;
use qce_strategy::{Generator, MsId, Requirements, UtilityIndex};

/// The five equivalent fire-detection microservices with their *intrinsic*
/// QoS (before device hosting effects).
fn base_microservices() -> Vec<MsModel> {
    let spec: [(f64, f64, f64); 5] = [
        // (cost, latency on a desktop-class device, reliability)
        (50.0, 50.0, 0.90),   // camera smoke analysis
        (100.0, 100.0, 0.85), // smoke sensor
        (150.0, 150.0, 0.90), // flame sensor
        (200.0, 200.0, 0.85), // CO/CO2 gas sensor
        (250.0, 250.0, 0.95), // temperature-change detection
    ];
    spec.iter()
        .enumerate()
        .map(|(i, &(c, l, r))| {
            MsModel::new(MsId(i), r, LatencyDistribution::Constant(l), c)
                .expect("valid model parameters")
        })
        .collect()
}

fn office_environment() -> qce_sim::Environment {
    let ms = base_microservices();
    let placements = vec![
        (
            Device::new(
                "office-edge-server",
                DeviceKind::EdgeServer,
                Availability::AlwaysOn,
            ),
            ms[0].clone(),
        ),
        (
            Device::new(
                "hallway-smoke-unit",
                DeviceKind::Desktop,
                Availability::AlwaysOn,
            ),
            ms[1].clone(),
        ),
        (
            Device::new(
                "ceiling-flame-unit",
                DeviceKind::Desktop,
                Availability::AlwaysOn,
            ),
            ms[2].clone(),
        ),
        (
            Device::new("hvac-gas-unit", DeviceKind::Desktop, Availability::AlwaysOn),
            ms[3].clone(),
        ),
        (
            Device::new("thermostat", DeviceKind::EdgeServer, Availability::AlwaysOn),
            ms[4].clone(),
        ),
    ];
    environment_from_placements(&placements).expect("valid placements")
}

fn campground_environment() -> qce_sim::Environment {
    let ms = base_microservices();
    let placements = vec![
        (
            // Camera analysis runs on a solar Raspberry Pi that duty-cycles.
            Device::new(
                "solar-pi",
                DeviceKind::RaspberryPi,
                Availability::DutyCycle { on: 3, off: 1 },
            ),
            ms[0].clone(),
        ),
        (
            // Smoke detection on a hiker's phone that may wander off.
            Device::new(
                "hiker-phone",
                DeviceKind::Mobile,
                Availability::Probabilistic { up: 0.7 },
            ),
            ms[1].clone(),
        ),
        (
            Device::new(
                "ranger-tablet",
                DeviceKind::Mobile,
                Availability::Probabilistic { up: 0.85 },
            ),
            ms[2].clone(),
        ),
        (
            Device::new(
                "kinetic-gas-node",
                DeviceKind::EnergyHarvesting,
                Availability::DutyCycle { on: 1, off: 1 },
            ),
            ms[3].clone(),
        ),
        (
            Device::new(
                "weather-station",
                DeviceKind::RaspberryPi,
                Availability::AlwaysOn,
            ),
            ms[4].clone(),
        ),
    ];
    environment_from_placements(&placements).expect("valid placements")
}

fn report(name: &str, env: &qce_sim::Environment) -> Result<(), Box<dyn std::error::Error>> {
    // The detectFire service wants: cost ≤ 300, latency ≤ 400 ms,
    // reliability ≥ 99%.
    let requirements = Requirements::new(300.0, 400.0, 0.99)?;
    let table = env.mean_qos_table();
    let ids = table.ids();
    let generator = Generator::default();

    println!("== {name} ==");
    for (id, qos) in table.iter() {
        println!("  microservice {id}: {qos}");
    }

    // The fixed baseline is what a MOLE script pins across ALL
    // environments: fail-over in the developer's priority order a-b-c-d-e.
    let fixed = qce_strategy::enumerate::failover(&ids)?;
    let fixed_qos = estimate(&fixed, &table)?;
    let fixed_utility = UtilityIndex::default().utility(&fixed_qos, &requirements);
    let generated = generator.generate(&table, &ids, &requirements)?;

    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let fixed_measured = simulate(&fixed, env, 5_000, &mut rng)?;
    let generated_measured = simulate(&generated.strategy, env, 5_000, &mut rng)?;

    println!("  fixed MOLE fail-over : {fixed} (U={fixed_utility:+.3}, {fixed_qos})");
    println!(
        "      measured: cost {:.1}, latency {:.1}, reliability {:.1}%",
        fixed_measured.mean_cost,
        fixed_measured.mean_latency,
        fixed_measured.success_rate * 100.0
    );
    println!("  generated            : {generated}");
    println!(
        "      measured: cost {:.1}, latency {:.1}, reliability {:.1}%",
        generated_measured.mean_cost,
        generated_measured.mean_latency,
        generated_measured.success_rate * 100.0
    );
    println!(
        "  utility: fixed {fixed_utility:+.3} vs generated {:+.3}\n",
        generated.utility
    );
    assert!(generated.utility >= fixed_utility);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("detectFire across dissimilar edge environments\n");
    report(
        "Office building (wall-powered, fast devices)",
        &office_environment(),
    )?;
    report(
        "Campground (solar Pi, drifting phones)",
        &campground_environment(),
    )?;
    println!(
        "A single predefined strategy cannot fit both environments; the\n\
         generator tailors one per environment from the same service script."
    );
    Ok(())
}

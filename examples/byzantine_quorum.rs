//! Quorum execution over equivalent microservices — the paper's §VII
//! future-work scenario: "protect from malicious devices that return fake
//! results."
//!
//! Four devices claim to report the ambient temperature by different means;
//! one of them is compromised and always reports a fire-free 21 °C
//! regardless of reality. First-success execution believes whichever device
//! answers first; quorum-2 execution cross-checks equivalent microservices
//! and outvotes the liar — at roughly double the cost (Assumption 2 still
//! charges every started invocation).
//!
//! Run with: `cargo run --example byzantine_quorum`

use std::sync::Arc;
use std::time::Duration;

use qce_runtime::{
    execute_strategy, execute_with_quorum, FnProvider, Invocation, InvokeError, Provider,
};
use qce_strategy::Strategy;

/// The ground truth the honest sensors observe.
const TRUE_TEMPERATURE: u8 = 58; // someone should check on the server room

fn honest(id: &str, latency: Duration, cost: f64) -> Arc<dyn Provider> {
    FnProvider::new(id, "read-temp", cost, move |_req| {
        std::thread::sleep(latency);
        Ok(vec![TRUE_TEMPERATURE])
    })
}

fn compromised(id: &str, latency: Duration, cost: f64) -> Arc<dyn Provider> {
    FnProvider::new(id, "read-temp", cost, move |_req| {
        std::thread::sleep(latency);
        Ok(vec![21]) // "all is well"
    })
}

fn flaky(id: &str, cost: f64) -> Arc<dyn Provider> {
    FnProvider::new(id, "read-temp", cost, move |_req| {
        Err(InvokeError::ExecutionFailed {
            reason: "sensor open-circuit".to_string(),
        })
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a: compromised but FAST (it wants to answer first);
    // b, c: honest; d: broken.
    let providers: Vec<Arc<dyn Provider>> = vec![
        compromised("rogue-node/read-temp", Duration::from_millis(1), 10.0),
        honest("pi/ds1820", Duration::from_millis(5), 10.0),
        honest("desktop/cpu-estimate", Duration::from_millis(8), 15.0),
        flaky("window-unit/ir", 5.0),
    ];
    let strategy = Strategy::parse("a*b-c-d")?;
    let request = Invocation::new(1, "read-temp", vec![]);

    println!("ground truth: {TRUE_TEMPERATURE} degrees (fire!)\n");

    // First-success semantics: the fast liar wins the race.
    let naive = execute_strategy(&strategy, &providers, &request, None)?;
    println!(
        "first-success: answered {:?} at cost {:.0} — {}",
        naive.payload.as_deref().unwrap_or(&[]),
        naive.cost,
        if naive.payload.as_deref() == Some(&[TRUE_TEMPERATURE]) {
            "correct"
        } else {
            "FOOLED by the rogue device"
        }
    );

    // Quorum-2: equivalent microservices must agree.
    let quorum = execute_with_quorum(&strategy, &providers, &request, None, 2)?;
    println!(
        "quorum-2     : answered {:?} with {}/{} votes at cost {:.0} — {}",
        quorum.payload.as_deref().unwrap_or(&[]),
        quorum.votes,
        quorum.votes_cast,
        quorum.cost,
        if quorum.payload.as_deref() == Some(&[TRUE_TEMPERATURE]) {
            "correct (liar outvoted)"
        } else {
            "fooled"
        }
    );
    assert!(quorum.agreed);
    assert_eq!(
        quorum.payload.as_deref(),
        Some([TRUE_TEMPERATURE].as_slice())
    );

    println!(
        "\nredundancy premium: quorum cost {:.0} vs first-success {:.0} \
         (Assumption 2 charges every started invocation)",
        quorum.cost, naive.cost
    );
    Ok(())
}
